"""Tests for the content-addressed result store (:mod:`repro.store`)."""

import hashlib
import json
import multiprocessing
import os

import pytest

import repro
from repro.harness.spec import PointResult, SweepPoint
from repro.harness.runner import SweepRunner, point_seed
from repro.store import (
    FileStore,
    KEY_SCHEMA,
    Provenance,
    StoreEntry,
    kwargs_digest,
    point_cache_key,
)


def square_point(value, seed=None):
    return PointResult(rows=[{"value": value, "square": value * value}],
                       stats={"points.computed": 1})


def _points(values, spec="test"):
    return [SweepPoint(spec=spec, point_id=f"value={v}", func=square_point,
                       kwargs={"value": v}) for v in values]


def _entry(point_id="p", rows=None, stats=None, **prov):
    provenance = Provenance.collect(
        spec=prov.pop("spec", "test"), point_id=point_id,
        func="tests:square_point", kwargs_digest="0" * 64, **prov)
    return StoreEntry(point_id=point_id,
                      rows=rows if rows is not None else [{"x": 1}],
                      stats=stats if stats is not None else {},
                      provenance=provenance)


class TestProvenance:
    def test_round_trip(self):
        record = Provenance.collect(
            spec="figure5", point_id="size=8", func="m:f",
            kwargs_digest="ab" * 32, seed=7, backend="distributed",
            worker="127.0.0.1:9/pid=12", duration_s=1.25,
            job_id="job-3", submitter="ci@host")
        assert Provenance.from_json(record.to_json()) == record

    def test_collect_fills_ambient_fields(self):
        record = Provenance.collect(spec="t", point_id="p", func="m:f",
                                    kwargs_digest="0" * 64)
        assert record.repro_version == repro.__version__
        assert record.host
        assert record.created_at
        assert record.age_days is not None and record.age_days < 1.0

    def test_none_optionals_omitted_from_json(self):
        record = Provenance.collect(spec="t", point_id="p", func="m:f",
                                    kwargs_digest="0" * 64)
        payload = record.to_json()
        for absent in ("seed", "worker", "duration_s", "job_id",
                       "submitter", "migrated"):
            assert absent not in payload

    @pytest.mark.parametrize("mangle", [
        lambda p: p.pop("spec"),
        lambda p: p.update(spec=5),
        lambda p: p.update(seed="seven"),
        lambda p: p.update(duration_s="fast"),
        lambda p: p.update(surprise=True),
        lambda p: None or [],  # replaced below: non-dict payload
    ])
    def test_from_json_rejects_bad_shapes(self, mangle):
        payload = Provenance.collect(spec="t", point_id="p", func="m:f",
                                     kwargs_digest="0" * 64).to_json()
        result = mangle(payload)
        bad = result if isinstance(result, list) else payload
        with pytest.raises(ValueError):
            Provenance.from_json(bad)

    def test_point_seed_extraction(self):
        with_seed = SweepPoint(spec="t", point_id="p", func=square_point,
                               kwargs={"value": 1, "seed": 42})
        without = SweepPoint(spec="t", point_id="p", func=square_point,
                             kwargs={"value": 1})
        boolean = SweepPoint(spec="t", point_id="p", func=square_point,
                             kwargs={"value": 1, "seed": True})
        assert point_seed(with_seed) == 42
        assert point_seed(without) is None
        assert point_seed(boolean) is None


class TestLayout:
    def test_object_named_by_content_hash(self, tmp_path):
        store = FileStore(str(tmp_path / "store"))
        object_hash = store.store("test", "a" * 64, _entry())
        path = store._object_path(object_hash)
        with open(path, "rb") as handle:
            assert hashlib.sha256(handle.read()).hexdigest() == object_hash
        assert path.endswith(
            os.path.join("objects", object_hash[:2], object_hash + ".json"))

    def test_identical_results_share_one_object(self, tmp_path):
        store = FileStore(str(tmp_path / "store"))
        entry = _entry()
        first = store.store("test", "a" * 64, entry)
        second = store.store("test", "b" * 64, entry)
        assert first == second
        assert len(list(store.object_hashes())) == 1
        assert store.info().entries == 2

    def test_load_round_trip(self, tmp_path):
        store = FileStore(str(tmp_path / "store"))
        entry = _entry(rows=[{"v": 3}], stats={"n": 1.5})
        store.store("test", "c" * 64, entry)
        loaded = store.load("test", "c" * 64)
        assert loaded.rows == [{"v": 3}]
        assert loaded.stats == {"n": 1.5}
        assert loaded.provenance == entry.provenance
        assert store.load("test", "d" * 64) is None

    def test_key_schema_is_frozen(self):
        # The key must NOT embed the live release: bumping __version__
        # would otherwise invalidate every cache on upgrade, including
        # freshly migrated legacy entries.  The producing release lives
        # in the provenance instead (prunable via `cache gc --version`).
        assert KEY_SCHEMA == "1.5.0"
        assert repro.__version__ != KEY_SCHEMA  # the point of freezing it

    def test_store_refuses_lossy_entries(self, tmp_path):
        store = FileStore(str(tmp_path / "store"))
        assert store.store("test", "e" * 64,
                           _entry(rows=[{"pair": (1, 2)}])) is None
        assert store.load("test", "e" * 64) is None


class TestQuarantine:
    def _stored(self, tmp_path):
        store = FileStore(str(tmp_path / "store"))
        object_hash = store.store("test", "a" * 64, _entry())
        return store, object_hash

    def test_truncated_object_quarantined(self, tmp_path):
        store, object_hash = self._stored(tmp_path)
        path = store._object_path(object_hash)
        with open(path, "rb") as handle:
            data = handle.read()
        with open(path, "wb") as handle:
            handle.write(data[:len(data) // 2])
        assert store.load("test", "a" * 64) is None
        info = store.info()
        assert info.quarantined == 1
        assert info.entries == 0  # the marker went with it

    def test_corrupt_marker_quarantined(self, tmp_path):
        store, _ = self._stored(tmp_path)
        marker = store._marker_path("test", "a" * 64)
        with open(marker, "w", encoding="utf-8") as handle:
            handle.write("{broken")
        assert store.load("test", "a" * 64) is None
        assert store.info().quarantined == 1

    def test_verify_reports_tampered_object(self, tmp_path):
        store, object_hash = self._stored(tmp_path)
        path = store._object_path(object_hash)
        with open(path, "ab") as handle:
            handle.write(b" ")
        report = store.verify()
        assert not report.ok
        assert report.mismatched == [object_hash]

    def test_verify_reports_dangling_marker(self, tmp_path):
        store, object_hash = self._stored(tmp_path)
        os.remove(store._object_path(object_hash))
        report = store.verify()
        assert not report.ok
        assert report.dangling == [f"test/{'a' * 64}"]

    def test_orphan_tmp_reported(self, tmp_path):
        store, _ = self._stored(tmp_path)
        orphan = os.path.join(store.root, "objects", "zz.json.1-2.tmp")
        with open(orphan, "w", encoding="utf-8") as handle:
            handle.write("half a write")
        assert store.info().orphan_tmp == 1
        store.gc()
        assert not os.path.exists(orphan)


class TestLegacyMigration:
    def _write_legacy(self, root, spec, key, payload):
        os.makedirs(os.path.join(root, spec), exist_ok=True)
        with open(os.path.join(root, spec, key + ".json"), "w",
                  encoding="utf-8") as handle:
            handle.write(payload if isinstance(payload, str)
                         else json.dumps(payload))

    def test_legacy_entries_keep_serving_warm_hits(self, tmp_path):
        cache = str(tmp_path / "cache")
        # Write a legacy flat entry under the *current* key (the schema is
        # frozen, so the key a 1.5.0 runner computed is the key this
        # release computes).
        point = _points([7])[0]
        key = point_cache_key(point)
        self._write_legacy(cache, "test", key,
                           {"point_id": point.point_id,
                            "rows": [{"value": 7, "square": 49}],
                            "stats": {"points.computed": 1}})
        outcome = SweepRunner(cache_dir=cache).run_points([point])
        assert outcome.points_from_cache == 1
        assert outcome.rows == [{"value": 7, "square": 49}]
        # The flat layout is gone; what remains is content-addressed.
        assert not os.path.isdir(os.path.join(cache, "test"))
        loaded = FileStore(cache).load("test", key)
        assert loaded.provenance.migrated
        assert loaded.provenance.repro_version == "legacy"

    def test_corrupt_legacy_entry_quarantined(self, tmp_path):
        cache = str(tmp_path / "cache")
        self._write_legacy(cache, "test", "f" * 64, "{not json")
        info = FileStore(cache).info()
        assert info.entries == 0
        assert info.quarantined == 1

    def test_legacy_tmp_files_dropped(self, tmp_path):
        cache = str(tmp_path / "cache")
        self._write_legacy(cache, "test", "a" * 64,
                           {"point_id": "p", "rows": [], "stats": {}})
        tmp = os.path.join(cache, "test", "b" * 64 + ".json.tmp")
        with open(tmp, "w", encoding="utf-8") as handle:
            handle.write("interrupted")
        info = FileStore(cache).info()
        assert info.entries == 1
        assert info.orphan_tmp == 0

    def test_foreign_files_left_alone(self, tmp_path):
        cache = str(tmp_path / "cache")
        self._write_legacy(cache, "test", "a" * 64,
                           {"point_id": "p", "rows": [], "stats": {}})
        notes = os.path.join(cache, "test", "NOTES.txt")
        with open(notes, "w", encoding="utf-8") as handle:
            handle.write("hands off")
        FileStore(cache).info()
        assert os.path.exists(notes)


def _concurrent_writer(cache, start, stop, out):
    runner = SweepRunner(cache_dir=cache)
    outcome = runner.run_points(_points(list(range(start, stop))))
    out.put(len(outcome.rows))


class TestConcurrency:
    def test_two_runners_share_one_store(self, tmp_path):
        # Two coordinator processes writing one store concurrently, with
        # overlapping point sets: no torn reads, no lost entries, and a
        # follow-up run is fully warm.
        cache = str(tmp_path / "store")
        out = multiprocessing.Queue()
        procs = [
            multiprocessing.Process(target=_concurrent_writer,
                                    args=(cache, 0, 30, out)),
            multiprocessing.Process(target=_concurrent_writer,
                                    args=(cache, 15, 45, out)),
        ]
        for proc in procs:
            proc.start()
        for proc in procs:
            proc.join(timeout=120)
            assert proc.exitcode == 0
        assert sorted([out.get(), out.get()]) == [30, 30]
        store = FileStore(cache)
        assert store.info().entries == 45
        assert store.verify().ok
        outcome = SweepRunner(cache_dir=cache).run_points(
            _points(list(range(45))))
        assert outcome.points_from_cache == 45

    def test_reader_never_sees_partial_files(self, tmp_path):
        # The tmp+rename discipline means a load either misses or returns
        # a full entry; simulate the torn state a crashed writer leaves.
        store = FileStore(str(tmp_path / "store"))
        store.store("test", "a" * 64, _entry())
        torn = store._object_path("b" * 64) + ".123-4.tmp"
        os.makedirs(os.path.dirname(torn), exist_ok=True)
        with open(torn, "w", encoding="utf-8") as handle:
            handle.write('{"point_id": "half')
        assert store.load("test", "b" * 64) is None
        assert store.load("test", "a" * 64) is not None
        assert store.info().orphan_tmp == 1


class TestSync:
    def test_push_pull_round_trip_idempotent(self, tmp_path):
        a = FileStore(str(tmp_path / "a"))
        b = FileStore(str(tmp_path / "b"))
        for index, value in enumerate([1, 2, 3]):
            a.store("test", f"{index}{'a' * 63}",
                    _entry(point_id=f"p{index}", rows=[{"v": value}]))
        first = a.push(b)
        assert first.entries_copied == 3 and first.objects_copied == 3
        again = a.push(b)
        assert again.entries_copied == 0 and again.objects_copied == 0
        assert again.entries_skipped == 3
        back = a.pull(b)  # b has nothing a lacks
        assert back.entries_copied == 0
        assert b.verify().ok
        assert [e.rows for _, k, h in b.markers()
                for e in [b.read_object(h)]] == [[{"v": 1}], [{"v": 2}],
                                                 [{"v": 3}]]

    def test_push_filters_by_spec(self, tmp_path):
        a = FileStore(str(tmp_path / "a"))
        b = FileStore(str(tmp_path / "b"))
        a.store("keep", "a" * 64, _entry(spec="keep"))
        a.store("skip", "b" * 64, _entry(spec="skip"))
        a.push(b, specs=["keep"])
        assert [info.spec for info in b.info().specs] == ["keep"]

    def test_push_quarantines_corrupt_source(self, tmp_path):
        a = FileStore(str(tmp_path / "a"))
        b = FileStore(str(tmp_path / "b"))
        object_hash = a.store("test", "a" * 64, _entry())
        with open(a._object_path(object_hash), "ab") as handle:
            handle.write(b"!")
        report = a.push(b)
        assert report.corrupt_skipped == 1
        assert b.info().entries == 0
        assert a.info().quarantined == 1

    def test_updated_entry_repoints_destination(self, tmp_path):
        a = FileStore(str(tmp_path / "a"))
        b = FileStore(str(tmp_path / "b"))
        a.store("test", "a" * 64, _entry(rows=[{"v": 1}]))
        a.push(b)
        a.store("test", "a" * 64, _entry(rows=[{"v": 2}]))
        report = a.push(b)
        assert report.entries_copied == 1
        assert b.load("test", "a" * 64).rows == [{"v": 2}]


class TestGc:
    def test_gc_by_version(self, tmp_path):
        store = FileStore(str(tmp_path / "store"))
        store.store("test", "a" * 64, _entry())
        old = _entry(point_id="old", rows=[{"v": 9}])
        object.__setattr__(old.provenance, "repro_version", "0.9.0")
        store.store("test", "b" * 64, old)
        report = store.gc(version="0.9.0")
        assert report.entries_removed == 1
        assert report.objects_removed == 1
        assert store.load("test", "a" * 64) is not None
        assert store.load("test", "b" * 64) is None

    def test_gc_by_age(self, tmp_path):
        store = FileStore(str(tmp_path / "store"))
        stale = _entry(point_id="stale")
        object.__setattr__(stale.provenance, "created_at",
                           "2020-01-01T00:00:00+00:00")
        store.store("test", "a" * 64, stale)
        store.store("test", "b" * 64, _entry(point_id="fresh"))
        report = store.gc(max_age_days=30)
        assert report.entries_removed == 1
        assert store.load("test", "b" * 64) is not None

    def test_gc_dry_run_removes_nothing(self, tmp_path):
        store = FileStore(str(tmp_path / "store"))
        store.store("test", "a" * 64, _entry())
        report = store.gc(specs=["test"], dry_run=True)
        assert report.dry_run
        assert report.entries_removed == 1
        assert report.objects_removed == 1
        assert store.load("test", "a" * 64) is not None

    def test_gc_without_filters_only_vacuums(self, tmp_path):
        store = FileStore(str(tmp_path / "store"))
        store.store("test", "a" * 64, _entry(rows=[{"v": 1}]))
        # Repoint the entry; the first object becomes unreferenced.
        store.store("test", "a" * 64, _entry(rows=[{"v": 2}]))
        report = store.gc()
        assert report.entries_removed == 0
        assert report.objects_removed == 1
        assert store.load("test", "a" * 64).rows == [{"v": 2}]


class TestRunnerIntegration:
    def test_provenance_recorded_by_serial_runner(self, tmp_path):
        cache = str(tmp_path / "store")
        point = SweepPoint(spec="test", point_id="value=3", func=square_point,
                           kwargs={"value": 3, "seed": 11})
        SweepRunner(cache_dir=cache).run_points([point])
        entry = FileStore(cache).load("test", point_cache_key(point))
        record = entry.provenance
        assert record.spec == "test"
        assert record.point_id == "value=3"
        assert record.backend == "serial"
        assert record.seed == 11
        assert record.repro_version == repro.__version__
        assert record.kwargs_digest == kwargs_digest(point.kwargs)
        assert record.duration_s is not None and record.duration_s >= 0.0

    def test_uncacheable_points_counted(self, tmp_path):
        def tuple_row_point(value):
            return PointResult(rows=[{"pair": (value, value + 1)}])

        cache = str(tmp_path / "store")
        point = SweepPoint(spec="test", point_id="p", func=tuple_row_point,
                           kwargs={"value": 4})
        outcome = SweepRunner(cache_dir=cache).run_points([point])
        assert outcome.points_uncacheable == 1
        assert outcome.stats.get("harness.points_uncacheable") == 1
        cacheable = SweepRunner(cache_dir=cache).run_points(_points([5]))
        assert cacheable.points_uncacheable == 0
        assert cacheable.stats.get("harness.points_uncacheable") == 0
        assert "harness.points_uncacheable" not in cacheable.stats
