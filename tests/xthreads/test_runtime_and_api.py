"""Tests for the xthreads API operations and runtime behaviour on a chip."""

import pytest

from repro.config import small_ccsvm_system
from repro.core.chip import CCSVMChip
from repro.core.xthreads.api import (
    READY,
    WAITING_ON_CPU,
    CpuMttopBarrier,
    CreateMThread,
    SignalCond,
    WaitCond,
    cond_entry,
    mttop_barrier,
    mttop_signal,
    mttop_wait,
)
from repro.cores.isa import Load, Malloc, Store, WaitValue, word_addr
from repro.errors import ReproError


class TestAPIHelpers:
    def test_cond_entry_addressing(self):
        assert cond_entry(0x1000, 0) == 0x1000
        assert cond_entry(0x1000, 3) == 0x1018

    def test_mttop_signal_emits_single_store(self):
        ops = list(mttop_signal(0x1000, 2))
        assert ops == [Store(cond_entry(0x1000, 2), READY)]

    def test_mttop_wait_announces_then_spins(self):
        ops = list(mttop_wait(0x1000, 1))
        assert ops[0] == Store(cond_entry(0x1000, 1), WAITING_ON_CPU)
        assert ops[1] == WaitValue(cond_entry(0x1000, 1), READY)

    def test_mttop_barrier_writes_slot_then_waits_for_sense(self):
        ops = list(mttop_barrier(0x2000, 0x3000, 4, release_sense=1))
        assert isinstance(ops[0], Store) and ops[0].vaddr == cond_entry(0x2000, 4)
        assert ops[1] == WaitValue(0x3000, 1)


class TestRuntimeOnChip:
    def test_cpu_signal_then_mttop_wait(self):
        """CPU signals MTTOP threads that are blocked in mttop_wait."""
        chip = CCSVMChip(small_ccsvm_system(), check_sc=True)
        chip.create_process("signal_test")
        threads = 8
        observed = chip.malloc(threads * 8)

        def kernel(tid, args):
            cond, out = args
            yield from mttop_wait(cond, tid)
            yield Store(word_addr(out, tid), tid + 100)

        def host():
            cond = yield Malloc(threads * 8)
            for t in range(threads):
                yield Store(word_addr(cond, t), 0)
            yield CreateMThread(kernel, (cond, observed), 0, threads - 1)
            # Wait for every thread to announce it is waiting, then release.
            yield WaitCond(cond, 0, threads - 1, value=WAITING_ON_CPU)
            yield SignalCond(cond, 0, threads - 1)
            # Wait for results to be produced.
            for t in range(threads):
                yield WaitValue(word_addr(observed, t), t + 100)

        chip.run(host())
        assert chip.read_array(observed, threads) == [t + 100 for t in range(threads)]

    def test_cpu_mttop_barrier_synchronises_iterations(self):
        """Values written before the barrier are visible after it."""
        chip = CCSVMChip(small_ccsvm_system(), check_sc=True)
        chip.create_process("barrier_test")
        threads = 4
        totals = chip.malloc(8)
        chip.write_word(totals, 0)

        def kernel(tid, args):
            barrier, sense, data, done = args
            yield Store(word_addr(data, tid), tid + 1)
            yield from mttop_barrier(barrier, sense, tid, release_sense=1)
            # After the barrier every thread reads the full array.
            total = 0
            for index in range(threads):
                value = yield Load(word_addr(data, index))
                total += value
            yield Store(word_addr(done, tid), total)

        def host():
            barrier = yield Malloc(threads * 8)
            sense = yield Malloc(8)
            data = yield Malloc(threads * 8)
            done = yield Malloc(threads * 8)
            for t in range(threads):
                yield Store(word_addr(barrier, t), 0)
                yield Store(word_addr(data, t), 0)
                yield Store(word_addr(done, t), 0)
            yield Store(sense, 0)
            yield CreateMThread(kernel, (barrier, sense, data, done), 0, threads - 1)
            yield CpuMttopBarrier(barrier, sense, 0, threads - 1)
            for t in range(threads):
                yield WaitValue(word_addr(done, t), 10)

        chip.run(host())
        assert chip.stats["xthreads.barriers_completed"] == 1

    def test_mttop_malloc_serialises_at_the_cpu(self):
        chip = CCSVMChip(small_ccsvm_system())
        chip.create_process("malloc_test")
        threads = 8
        out = chip.malloc(threads * 8)

        def kernel(tid, args):
            node = yield Malloc(24)
            yield Store(node, tid)
            yield Store(word_addr(args, tid), node)

        def host():
            done = yield Malloc(threads * 8)
            for t in range(threads):
                yield Store(word_addr(done, t), 0)
            yield CreateMThread(kernel, out, 0, threads - 1)
            for t in range(threads):
                yield WaitValue(word_addr(out, t), 0, negate=True)

        chip.run(host())
        pointers = chip.read_array(out, threads)
        assert len(set(pointers)) == threads
        assert all(pointer != 0 for pointer in pointers)
        assert chip.stats["xthreads.mttop_mallocs"] == threads
        # Requests queued behind each other at the CPU servicer.
        assert chip.stats["xthreads.mttop_malloc_wait_ps"] > 0

    def test_create_mthread_from_mttop_rejected(self):
        chip = CCSVMChip(small_ccsvm_system())
        chip.create_process("nested_launch")

        def kernel(tid, args):
            yield CreateMThread(kernel, None, 0, 0)

        def host():
            done = yield Malloc(8)
            yield Store(done, 0)
            yield CreateMThread(kernel, None, 0, 0)
            yield WaitValue(done, 1)

        with pytest.raises(ReproError):
            chip.run(host())

    def test_wait_polls_are_counted(self):
        chip = CCSVMChip(small_ccsvm_system())
        chip.create_process("poll_test")

        def kernel(tid, args):
            yield from mttop_signal(args, tid)

        def host():
            done = yield Malloc(8)
            yield Store(done, 0)
            yield CreateMThread(kernel, done, 0, 0)
            yield WaitCond(done, 0, 0)

        chip.run(host())
        assert chip.stats["xthreads.waits_completed"] == 1
        assert chip.stats["xthreads.create_mthread"] == 1
