"""Tests for the xthreads toolchain (compilation model)."""

import pytest

from repro.core.xthreads.toolchain import (
    KERNEL_SLOT_BYTES,
    MTTOP_TEXT_BASE,
    XThreadsToolchain,
)
from repro.cores.isa import Compute
from repro.errors import KernelProgramError


def good_kernel(tid, args):
    yield Compute(1)


def other_kernel(tid, args):
    yield Compute(2)


def good_host():
    yield Compute(1)


class TestCompilation:
    def test_compile_process_with_kernels(self):
        toolchain = XThreadsToolchain()
        process = toolchain.compile_process("app", host_entry=good_host,
                                            kernels=[good_kernel, other_kernel])
        assert len(process.kernels) == 2
        assert process.kernel_for(good_kernel).program_counter == MTTOP_TEXT_BASE
        assert process.kernel_for(other_kernel).program_counter == \
            MTTOP_TEXT_BASE + KERNEL_SLOT_BYTES

    def test_kernel_lookup_by_pc(self):
        toolchain = XThreadsToolchain()
        process = toolchain.compile_process("app", kernels=[good_kernel])
        pc = process.kernel_for(good_kernel).program_counter
        assert process.kernel_at(pc).function is good_kernel

    def test_unknown_pc_rejected(self):
        toolchain = XThreadsToolchain()
        process = toolchain.compile_process("app", kernels=[good_kernel])
        with pytest.raises(KernelProgramError):
            process.kernel_at(0xDEAD)

    def test_unknown_kernel_rejected(self):
        toolchain = XThreadsToolchain()
        process = toolchain.compile_process("app")
        with pytest.raises(KernelProgramError):
            process.kernel_for(good_kernel)

    def test_add_kernel_is_idempotent(self):
        toolchain = XThreadsToolchain()
        process = toolchain.compile_process("app", kernels=[good_kernel])
        again = toolchain.add_kernel(process, good_kernel)
        assert again is process.kernel_for(good_kernel)
        assert len(process.kernels) == 1

    def test_non_generator_kernel_rejected(self):
        toolchain = XThreadsToolchain()
        process = toolchain.compile_process("app")

        def not_a_generator(tid, args):
            return 42

        with pytest.raises(KernelProgramError):
            toolchain.add_kernel(process, not_a_generator)

    def test_wrong_signature_rejected(self):
        toolchain = XThreadsToolchain()
        process = toolchain.compile_process("app")

        def bad_kernel(tid):
            yield Compute(1)

        with pytest.raises(KernelProgramError):
            toolchain.add_kernel(process, bad_kernel)

    def test_non_generator_host_rejected(self):
        toolchain = XThreadsToolchain()
        with pytest.raises(KernelProgramError):
            toolchain.compile_process("app", host_entry=lambda: 42)

    def test_text_segment_lists_pcs_in_order(self):
        toolchain = XThreadsToolchain()
        process = toolchain.compile_process("app", kernels=[good_kernel, other_kernel])
        assert process.text_segment() == [MTTOP_TEXT_BASE,
                                          MTTOP_TEXT_BASE + KERNEL_SLOT_BYTES]

    def test_compiled_processes_tracked(self):
        toolchain = XThreadsToolchain()
        toolchain.compile_process("a")
        toolchain.compile_process("b")
        assert [process.name for process in toolchain.compiled_processes] == ["a", "b"]
