"""Tests for the in-order CPU core model."""

import pytest

from repro.cores.cpu import CPUCore
from repro.cores.interpreter import OpOutcome
from repro.cores.isa import Compute, Load, Malloc, Store
from repro.errors import KernelProgramError
from repro.sim.clock import ClockDomain
from repro.sim.engine import Engine
from tests.cores.test_interpreter import FakePort


def make_core(handler=None):
    clock = ClockDomain.from_ghz("cpu", 1.0)  # 1000 ps / cycle
    return CPUCore("cpu0", clock, cycles_per_instruction=2.0,
                   memory_port=FakePort(), runtime_handler=handler)


class TestExecution:
    def test_runs_program_to_completion(self):
        core = make_core()

        def program():
            yield Store(0, 5)
            value = yield Load(0)
            assert value == 5
            yield Compute(3)

        core.run_program(program())
        engine = Engine()
        engine.add_agent(core)
        engine.run()
        assert core.finished
        assert core.memory_port.words[0] == 5

    def test_issue_cost_is_half_ipc(self):
        core = make_core()

        def program():
            yield Compute(1)

        core.run_program(program())
        Engine().add_agent(core)
        core.step()
        # One instruction at 2 cycles/instr and 1000 ps/cycle.
        assert core.local_time_ps == 2000

    def test_compute_amount_scales_time(self):
        core = make_core()

        def program():
            yield Compute(5)

        core.run_program(program())
        core.step()
        assert core.local_time_ps == 5 * 2000

    def test_memory_latency_added(self):
        core = make_core()

        def program():
            yield Store(0, 1)

        core.run_program(program())
        core.step()
        assert core.local_time_ps == 2000 + 20

    def test_runtime_handler_invoked_for_unknown_ops(self):
        calls = []

        def handler(core, lane, op):
            calls.append(op)
            return OpOutcome(latency_ps=100, value=0x1234)

        core = make_core(handler)

        def program():
            address = yield Malloc(64)
            assert address == 0x1234

        core.run_program(program())
        engine = Engine()
        engine.add_agent(core)
        engine.run()
        assert len(calls) == 1

    def test_missing_handler_raises(self):
        core = make_core(handler=None)

        def program():
            yield Malloc(64)

        core.run_program(program())
        with pytest.raises(KernelProgramError):
            core.step()

    def test_completion_callback(self):
        completed = []
        core = make_core()

        def program():
            yield Compute(1)

        core.run_program(program(), on_complete=lambda c, ctx: completed.append(ctx.tid))
        engine = Engine()
        engine.add_agent(core)
        engine.run()
        assert completed == [0]

    def test_queued_programs_run_in_order(self):
        order = []
        core = make_core()

        def program(tag):
            order.append(tag)
            yield Compute(1)

        core.run_program(program("first"))
        core.run_program(program("second"))
        engine = Engine()
        engine.add_agent(core)
        engine.run()
        assert order == ["first", "second"]

    def test_interrupt_latency_charged(self):
        core = make_core()

        def program():
            yield Compute(1)

        core.run_program(program())
        core.add_interrupt_latency(7777)
        core.step()
        assert core.local_time_ps == 7777

    def test_core_without_work_finishes(self):
        core = make_core()
        engine = Engine()
        engine.add_agent(core)
        engine.run()
        assert core.finished
