"""Tests for thread contexts and the shared operation interpreter."""

import pytest

from repro.cores.interpreter import OpOutcome, ThreadContext, execute_memory_operation
from repro.cores.isa import (
    AtomicAdd,
    AtomicCAS,
    AtomicDec,
    AtomicInc,
    Compute,
    Load,
    Store,
    WaitValue,
)
from repro.errors import KernelProgramError


class FakePort:
    """Memory port over a plain dict, with unit latencies."""

    def __init__(self):
        self.words = {}

    def load(self, vaddr):
        return self.words.get(vaddr, 0), 10

    def store(self, vaddr, value):
        self.words[vaddr] = value
        return 20

    def atomic_add(self, vaddr, delta):
        old = self.words.get(vaddr, 0)
        self.words[vaddr] = old + delta
        return old, 30

    def atomic_cas(self, vaddr, expected, new):
        old = self.words.get(vaddr, 0)
        if old == expected:
            self.words[vaddr] = new
        return old, 30


class TestThreadContext:
    def test_values_flow_back_into_generator(self):
        seen = []

        def program():
            value = yield Load(0)
            seen.append(value)

        context = ThreadContext(tid=0, program=program())
        op = context.next_operation()
        context.complete(op, OpOutcome(value=99))
        assert context.next_operation() is None
        assert context.finished
        assert seen == [99]

    def test_retry_replays_same_operation(self):
        def program():
            yield WaitValue(0, 1)

        context = ThreadContext(tid=0, program=program())
        op = context.next_operation()
        context.complete(op, OpOutcome(retry=True))
        assert context.next_operation() is op

    def test_non_operation_yield_rejected(self):
        def program():
            yield "not an op"

        context = ThreadContext(tid=0, program=program())
        with pytest.raises(KernelProgramError):
            context.next_operation()

    def test_operations_executed_counter(self):
        def program():
            yield Compute(1)
            yield Compute(1)

        context = ThreadContext(tid=0, program=program())
        for _ in range(2):
            op = context.next_operation()
            context.complete(op, OpOutcome())
        assert context.operations_executed == 2


class TestExecuteMemoryOperation:
    def test_load(self):
        port = FakePort()
        port.words[8] = 5
        outcome = execute_memory_operation(Load(8), port, 0)
        assert outcome.value == 5 and outcome.latency_ps == 10

    def test_store(self):
        port = FakePort()
        outcome = execute_memory_operation(Store(8, 7), port, 0)
        assert port.words[8] == 7 and outcome.latency_ps == 20

    def test_atomic_add_inc_dec(self):
        port = FakePort()
        assert execute_memory_operation(AtomicAdd(0, 5), port, 0).value == 0
        assert execute_memory_operation(AtomicInc(0), port, 0).value == 5
        assert execute_memory_operation(AtomicDec(0), port, 0).value == 6
        assert port.words[0] == 5

    def test_atomic_cas(self):
        port = FakePort()
        port.words[0] = 3
        execute_memory_operation(AtomicCAS(0, 3, 9), port, 0)
        assert port.words[0] == 9
        execute_memory_operation(AtomicCAS(0, 3, 1), port, 0)
        assert port.words[0] == 9

    def test_waitvalue_satisfied(self):
        port = FakePort()
        port.words[0] = 1
        outcome = execute_memory_operation(WaitValue(0, 1), port, 500)
        assert not outcome.retry

    def test_waitvalue_unsatisfied_retries_and_charges_poll(self):
        port = FakePort()
        outcome = execute_memory_operation(WaitValue(0, 1), port, 500)
        assert outcome.retry and outcome.latency_ps == 510

    def test_waitvalue_negated(self):
        port = FakePort()
        port.words[0] = 0
        assert execute_memory_operation(WaitValue(0, 5, negate=True), port, 0).retry is False

    def test_non_memory_operation_returns_none(self):
        assert execute_memory_operation(Compute(3), FakePort(), 0) is None
