"""LoadVector/StoreVector are timing-identical to scalar sequences,
and every memory port satisfies the ``current_time_ps`` protocol field."""

from repro.baseline.apu import AMDAPU
from repro.config import small_ccsvm_system
from repro.core.chip import CCSVMChip
from repro.cores.isa import Load, LoadVector, Store, StoreVector, word_addr


def _addresses(base, count):
    return [word_addr(base, i) for i in range(count)]


class TestCPUCoreEquivalence:
    def _run(self, vectorised):
        chip = CCSVMChip(small_ccsvm_system())
        chip.create_process("vector_ops")
        base = chip.malloc(512 * 8)
        addrs = _addresses(base, 512)
        values = [(i * 37) % 1001 - 500 for i in range(512)]

        def program():
            if vectorised:
                yield StoreVector(tuple(addrs), tuple(values))
                got = yield LoadVector(tuple(addrs))
                got = list(got)
            else:
                for addr, value in zip(addrs, values):
                    yield Store(addr, value)
                got = []
                for addr in addrs:
                    got.append((yield Load(addr)))
            assert got == values

        result = chip.run(program())
        return result.time_ps, chip.stats.to_dict()

    def test_vector_matches_scalar_sequence(self):
        assert self._run(True) == self._run(False)


class TestMTTOPEquivalence:
    def _run(self, vectorised):
        chip = CCSVMChip(small_ccsvm_system())
        chip.create_process("vector_ops")
        port = chip.mttop_cores[0].memory_port
        port.set_address_space(chip.process_space)
        base = chip.malloc(256 * 8)
        addrs = _addresses(base, 256)

        def kernel(tid, args):
            if vectorised:
                yield StoreVector(tuple(addrs), tuple(range(256)))
                got = yield LoadVector(tuple(addrs))
                assert list(got) == list(range(256))
            else:
                for index, addr in enumerate(addrs):
                    yield Store(addr, index)
                for index, addr in enumerate(addrs):
                    value = yield Load(addr)
                    assert value == index

        from repro.cores.interpreter import ThreadContext
        core = chip.mttop_cores[0]
        core.assign_warp([ThreadContext(tid=0, program=kernel(0, ()))],
                         at_time_ps=0)
        for mttop in chip.mttop_cores:
            mttop.request_halt(0)
        result = chip.engine.run()
        return result, chip.stats.to_dict()

    def test_vector_matches_scalar_sequence(self):
        assert self._run(True) == self._run(False)


class TestBaselineCoreEquivalence:
    def _run(self, vectorised):
        apu = AMDAPU()
        base = apu.allocate(512 * 8)
        addrs = _addresses(base, 512)

        def program():
            if vectorised:
                yield StoreVector(tuple(addrs), tuple(range(512)))
                got = yield LoadVector(tuple(addrs))
                got = list(got)
            else:
                for index, addr in enumerate(addrs):
                    yield Store(addr, index)
                got = []
                for addr in addrs:
                    got.append((yield Load(addr)))
            assert got == list(range(512))

        run = apu.run_on_cpu(program())
        return run.time_ps, run.instructions, apu.stats.to_dict()

    def test_vector_matches_scalar_sequence(self):
        assert self._run(True) == self._run(False)


class TestCurrentTimeProtocol:
    def test_ccsvm_ports_default_and_update(self):
        chip = CCSVMChip(small_ccsvm_system())
        chip.create_process("clock")
        port = chip.cpu_cores[0].memory_port
        assert port.current_time_ps == 0
        base = chip.malloc(64)

        def program():
            yield Store(base, 1)
            yield Load(base)

        chip.run(program())
        # The core assigned its local time unconditionally (no hasattr).
        assert port.current_time_ps > 0

    def test_baseline_port_has_field(self):
        apu = AMDAPU()
        assert apu.cpu_cores[0].port.current_time_ps == 0
