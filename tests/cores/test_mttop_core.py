"""Tests for the SIMT MTTOP core model."""

import pytest

from repro.cores.interpreter import ThreadContext
from repro.cores.isa import Compute, Load, Store
from repro.cores.mttop import MTTOPCore
from repro.errors import MIFDError
from repro.sim.clock import ClockDomain
from repro.sim.engine import Engine
from tests.cores.test_interpreter import FakePort


def make_core(simd_width=4, contexts=16):
    clock = ClockDomain.from_mhz("mttop", 1000)  # 1000 ps / cycle
    return MTTOPCore("mttop0", clock, simd_width=simd_width,
                     thread_contexts=contexts, memory_port=FakePort())


def make_lanes(kernel, tids, args=None):
    return [ThreadContext(tid=tid, program=kernel(tid, args)) for tid in tids]


def store_kernel(tid, args):
    yield Store(tid * 8, tid)
    yield Compute(1)


class TestAssignment:
    def test_new_core_is_blocked(self):
        assert make_core().blocked

    def test_assign_warp_wakes_core_and_uses_contexts(self):
        core = make_core()
        core.assign_warp(make_lanes(store_kernel, [0, 1, 2]), at_time_ps=100)
        assert not core.blocked
        assert core.busy_contexts == 3
        assert core.free_contexts == 13

    def test_warp_larger_than_simd_width_rejected(self):
        core = make_core(simd_width=2)
        with pytest.raises(MIFDError):
            core.assign_warp(make_lanes(store_kernel, [0, 1, 2]), 0)

    def test_empty_warp_rejected(self):
        with pytest.raises(MIFDError):
            make_core().assign_warp([], 0)

    def test_context_exhaustion_rejected(self):
        core = make_core(simd_width=4, contexts=4)
        core.assign_warp(make_lanes(store_kernel, [0, 1, 2, 3]), 0)
        with pytest.raises(MIFDError):
            core.assign_warp(make_lanes(store_kernel, [4]), 0)


class TestExecution:
    def test_lockstep_warp_executes_all_lanes(self):
        core = make_core()
        core.assign_warp(make_lanes(store_kernel, [0, 1, 2, 3]), 0)
        core.request_halt(0)
        engine = Engine()
        engine.add_agent(core)
        engine.run()
        assert core.finished
        assert core.memory_port.words == {0: 0, 8: 1, 16: 2, 24: 3}

    def test_contexts_released_when_warp_retires(self):
        core = make_core()
        core.assign_warp(make_lanes(store_kernel, [0, 1]), 0)
        core.request_halt(0)
        engine = Engine()
        engine.add_agent(core)
        engine.run()
        assert core.free_contexts == core.thread_contexts

    def test_warp_latency_is_max_of_lanes_plus_issue(self):
        core = make_core()

        def kernel(tid, args):
            yield Store(tid * 8, tid)

        core.assign_warp(make_lanes(kernel, [0, 1]), 0)
        core.step()
        # store latency 20 ps (FakePort) + one issue cycle of 1000 ps
        assert core.local_time_ps == 1020

    def test_idle_core_blocks_until_halt_requested(self):
        core = make_core()
        core.blocked = False
        outcome = core.step()
        assert core.blocked
        core.request_halt(0)
        core.step()
        assert core.finished

    def test_round_robin_between_warps(self):
        core = make_core(simd_width=1, contexts=4)
        order = []

        def kernel(tid, args):
            order.append(tid)
            yield Compute(1)
            order.append(tid)

        core.assign_warp(make_lanes(kernel, [0]), 0)
        core.assign_warp(make_lanes(kernel, [1]), 0)
        core.request_halt(0)
        engine = Engine()
        engine.add_agent(core)
        engine.run()
        # Both warps interleave rather than one running to completion first.
        assert order[0:2] == [0, 1]

    def test_multiple_tasks_over_time(self):
        core = make_core()
        core.assign_warp(make_lanes(store_kernel, [0, 1]), 0)
        engine = Engine()
        engine.add_agent(core)
        # Run the first warp until the core goes idle (blocked).
        while not core.blocked and not core.finished:
            engine.run_step()
        core.assign_warp(make_lanes(store_kernel, [2, 3]), engine.now_ps)
        core.request_halt(engine.now_ps)
        engine.run()
        assert core.memory_port.words[24] == 3
