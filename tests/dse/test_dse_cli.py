"""End-to-end tests for ``repro dse`` and ``repro bench history``."""

import json
import textwrap

from repro.api import ResultSet
from repro.harness.cli import main as cli_main

#: Two shapes whose measurements tie by construction (replacement policy
#: cannot matter on a working set that never evicts), so halving's cut is
#: decided by shape index and the cancel fires deterministically even on
#: the serial backend.
TIE_SPACE = """\
    name = "cli-tie"
    workload = "matmul"
    system = "ccsvm-small"

    [fidelity]
    param = "size"
    values = [4, 8]

    [[axes]]
    path = "cpu.l1_replacement"
    kind = "categorical"
    values = ["lru", "plru"]
"""

#: Four shapes with genuinely different SRAM totals, for budget pruning.
SIZED_SPACE = """\
    name = "cli-sized"
    workload = "matmul"
    system = "ccsvm-small"

    [fidelity]
    param = "size"
    values = [4, 8]

    [[axes]]
    path = "mttop.l1_size_bytes"
    kind = "categorical"
    values = ["4KiB", "8KiB"]

    [[axes]]
    path = "l2.total_size_bytes"
    kind = "categorical"
    values = ["64KiB", "128KiB"]
"""


def _write_space(tmp_path, text, name="space.toml"):
    path = tmp_path / name
    path.write_text(textwrap.dedent(text))
    return str(path)


class TestDseCommand:
    def test_halving_is_deterministic_and_store_warm_on_rerun(self, tmp_path,
                                                              capsys):
        space = _write_space(tmp_path, TIE_SPACE)
        cache = str(tmp_path / "cache")
        argv = ["dse", "--space", space, "--strategy", "halving",
                "--seed", "0", "--cache-dir", cache]
        assert cli_main(argv) == 0
        first = capsys.readouterr()
        assert "cancelled" in first.err
        assert cli_main(argv) == 0
        second = capsys.readouterr()
        # Byte-identical frontier; the rerun served everything from the
        # store and dispatched nothing.
        assert second.out == first.out
        assert "0 simulated" in second.err
        assert "Pareto frontier" in first.out
        assert "lru" in first.out

    def test_random_is_deterministic_under_a_seed(self, tmp_path, capsys):
        space = _write_space(tmp_path, SIZED_SPACE)
        outputs = []
        for _ in range(2):
            assert cli_main(["dse", "--space", space, "--strategy", "random",
                             "--samples", "2", "--seed", "9",
                             "--cache-dir", str(tmp_path / "cache")]) == 0
            outputs.append(capsys.readouterr().out)
        assert outputs[0] == outputs[1]

    def test_budget_prunes_inadmissible_shapes(self, tmp_path, capsys):
        space = _write_space(tmp_path, SIZED_SPACE)
        assert cli_main(["dse", "--space", space, "--budget", "sram=85KiB",
                         "--cache-dir", str(tmp_path / "cache"),
                         "--stats"]) == 0
        captured = capsys.readouterr()
        assert "explored 1 of 4 shapes (3 pruned)" in captured.err
        assert "exceeds the budget" in captured.out  # --stats prints reasons

    def test_csv_and_out_file(self, tmp_path, capsys):
        space = _write_space(tmp_path, TIE_SPACE)
        out = tmp_path / "frontier.csv"
        assert cli_main(["dse", "--space", space, "--csv",
                         "--out", str(out),
                         "--cache-dir", str(tmp_path / "cache")]) == 0
        capsys.readouterr()
        parsed = ResultSet.from_csv(out.read_text())
        assert "frontier" in parsed.groups

    def test_replay_swaps_the_workload_for_cache_replay(self, tmp_path,
                                                        capsys):
        """``--replay TRACE`` explores the same axes by cache-only replay
        of a captured trace; the fidelity ladder is dropped."""
        from repro.workloads.trace_replay import capture_trace

        trace = tmp_path / "ms.trace.json"
        capture_trace("mem_stream", seed=2, path=str(trace),
                      ops=150, words=128)
        space = _write_space(tmp_path, TIE_SPACE)
        assert cli_main(["dse", "--space", space, "--replay", str(trace),
                         "--cache-dir", str(tmp_path / "cache")]) == 0
        captured = capsys.readouterr()
        assert "cache_replay Pareto frontier" in captured.out
        assert "cli-tie-replay" in captured.err
        assert "explored 2 of 2 shapes" in captured.err

    def test_clean_errors(self, tmp_path, capsys):
        space = _write_space(tmp_path, SIZED_SPACE)
        # unknown budget key
        assert cli_main(["dse", "--space", space,
                         "--budget", "power=3"]) == 2
        assert "KEY one of" in capsys.readouterr().err
        # random without --samples
        assert cli_main(["dse", "--space", space,
                         "--strategy", "random"]) == 2
        assert "--samples" in capsys.readouterr().err
        # missing space file
        assert cli_main(["dse", "--space", str(tmp_path / "nope.toml")]) == 2
        capsys.readouterr()


class TestBenchHistory:
    def _trajectory(self, tmp_path):
        lines = [
            json.dumps({"benchmark": "access_path", "created_at": "a",
                        "git_sha": "aaa", "accesses_per_s": 1000.0,
                        "speedup": 2.0}),
            "{torn json",
            json.dumps({"benchmark": "access_path", "created_at": "b",
                        "git_sha": "bbb", "accesses_per_s": 1200.0,
                        "speedup": 2.5}),
            json.dumps({"benchmark": "batch_engine", "created_at": "c",
                        "git_sha": "ccc", "batches_per_s": 50.0}),
        ]
        path = tmp_path / "trajectory.jsonl"
        path.write_text("\n".join(lines) + "\n")
        return str(path)

    def test_text_report_compares_latest_to_previous(self, tmp_path, capsys):
        path = self._trajectory(tmp_path)
        assert cli_main(["bench", "history", "--path", path]) == 0
        out = capsys.readouterr().out
        assert "access_path: 2 run(s), latest b" in out
        assert "+20.0%" in out           # 1000 -> 1200 accesses/s
        assert "(no previous run)" in out  # batch_engine has one record

    def test_json_report(self, tmp_path, capsys):
        path = self._trajectory(tmp_path)
        assert cli_main(["bench", "history", "--path", path, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        benchmarks = {entry["benchmark"]: entry
                      for entry in payload["benchmarks"]}
        assert set(benchmarks) == {"access_path", "batch_engine"}
        rate = next(metric
                    for metric in benchmarks["access_path"]["metrics"]
                    if metric["name"] == "accesses_per_s")
        assert rate == {"name": "accesses_per_s", "latest": 1200.0,
                        "previous": 1000.0, "delta_pct": 20.0}
        assert benchmarks["access_path"]["git_sha"] == "bbb"
        assert "previous" not in benchmarks["batch_engine"]["metrics"][0]

    def test_missing_or_empty_history_reports_cleanly(self, tmp_path,
                                                      capsys):
        """No trajectory yet is a clean "no prior record" report (rc 0):
        CI runs this before the first benchmark record exists."""
        assert cli_main(["bench", "history",
                         "--path", str(tmp_path / "nope.jsonl")]) == 0
        assert "no prior record" in capsys.readouterr().out
        empty = tmp_path / "empty.jsonl"
        empty.write_text("\n")
        assert cli_main(["bench", "history", "--path", str(empty)]) == 0
        assert "no prior record" in capsys.readouterr().out
        assert cli_main(["bench", "history", "--path", str(empty),
                         "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["benchmarks"] == []
