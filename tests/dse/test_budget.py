"""Tests for the DSE budget model: SRAM enumeration, costs, admissibility."""

import pytest

from repro.config import (
    KB,
    MB,
    amd_apu_system,
    apply_overrides,
    ccsvm_system,
    small_ccsvm_system,
)
from repro.dse.budget import (
    TLB_ENTRY_BYTES,
    Budget,
    BudgetError,
    LevelCost,
    area_mm2,
    latency_ns,
    sram_bytes,
    sram_levels,
)


class TestSramLevels:
    def test_ccsvm_levels_cover_every_structure(self):
        config = ccsvm_system()
        levels = {level.name: level for level in sram_levels(config)}
        assert set(levels) == {"cpu.l1", "mttop.l1", "l2",
                               "cpu.tlb", "mttop.tlb"}
        assert levels["cpu.l1"].instances == config.cpu.count
        assert levels["mttop.l1"].instances == config.mttop.count
        assert levels["l2"].total_bytes == config.l2.total_size_bytes
        assert levels["cpu.tlb"].size_bytes == \
            config.cpu.tlb_entries * TLB_ENTRY_BYTES

    def test_l3_and_tlb_toggles_change_the_enumeration(self):
        with_l3 = apply_overrides(ccsvm_system(), {"l3.enabled": True})
        names = {level.name for level in sram_levels(with_l3)}
        assert "l3" in names
        no_tlb = apply_overrides(ccsvm_system(), {"tlb_enabled": False})
        names = {level.name for level in sram_levels(no_tlb)}
        assert "cpu.tlb" not in names and "mttop.tlb" not in names

    def test_apu_levels_respect_l2_sharing(self):
        private = amd_apu_system()
        levels = {level.name: level for level in sram_levels(private)}
        assert levels["cpu.l2"].instances == private.cpu.count
        shared = apply_overrides(private, {"cpu.l2_shared": True})
        levels = {level.name: level for level in sram_levels(shared)}
        assert levels["cpu.l2"].instances == 1
        assert levels["gpu.local"].instances == shared.gpu.simd_units

    def test_unknown_config_type_is_an_error(self):
        with pytest.raises(BudgetError, match="cannot price"):
            sram_levels(object())


class TestCosts:
    def test_sram_bytes_sums_every_instance(self):
        config = small_ccsvm_system()
        expected = (config.cpu.count * config.cpu.l1_size_bytes
                    + config.mttop.count * config.mttop.l1_size_bytes
                    + config.l2.total_size_bytes
                    + config.cpu.count * config.cpu.tlb_entries
                    * TLB_ENTRY_BYTES
                    + config.mttop.count * config.mttop.tlb_entries
                    * TLB_ENTRY_BYTES)
        assert sram_bytes(config) == expected

    def test_area_grows_with_capacity_and_associativity(self):
        small = small_ccsvm_system()
        bigger = apply_overrides(small, {"l2.total_size_bytes": "4MiB"})
        assert area_mm2(bigger) > area_mm2(small)
        wider = apply_overrides(small, {"l2.associativity": 32})
        assert area_mm2(wider) > area_mm2(small)

    def test_latency_grows_logarithmically_with_capacity(self):
        cost = LevelCost()
        small = small_ccsvm_system()
        bigger = apply_overrides(small, {"l2.total_size_bytes": "1MiB"})
        assert latency_ns(bigger, cost) > latency_ns(small, cost)


class TestBudget:
    def test_parse_accepts_sizes_and_commas(self):
        budget = Budget.parse(["sram=4MiB", "area=50"])
        assert budget.sram_bytes == 4 * MB
        assert budget.area_mm2 == 50.0
        inline = Budget.parse(["sram=4MiB,area=50"])
        assert (inline.sram_bytes, inline.area_mm2) == (4 * MB, 50.0)
        assert Budget.parse([]).sram_bytes is None

    def test_parse_rejects_unknown_keys_and_bad_values(self):
        with pytest.raises(BudgetError, match="KEY one of"):
            Budget.parse(["power=3"])
        with pytest.raises(BudgetError, match="cannot parse"):
            Budget.parse(["sram=lots"])
        with pytest.raises(BudgetError, match="cannot parse"):
            Budget.parse(["area=wide"])

    def test_check_admits_and_refuses_with_reasons(self):
        config = small_ccsvm_system()
        total = sram_bytes(config)
        roomy = Budget(sram_bytes=total + KB).check(config)
        assert roomy.admissible and roomy.reason is None
        assert roomy.sram_bytes == total
        tight = Budget(sram_bytes=total - 1).check(config)
        assert not tight.admissible
        assert "exceeds the budget" in tight.reason
        small_area = Budget(area_mm2=1e-6).check(config)
        assert not small_area.admissible
        assert "area" in small_area.reason

    def test_describe_renders_ceilings(self):
        assert Budget().describe() == "unconstrained"
        assert "sram<=" in Budget(sram_bytes=4 * MB).describe()
