"""Tests for Pareto-frontier extraction."""

import pytest

from repro.dse.frontier import FrontierError, frontier_result, pareto


def _rows(pairs):
    return [{"name": index, "time_ms": time, "sram_bytes": cost}
            for index, (time, cost) in enumerate(pairs)]


class TestPareto:
    def test_partitions_into_frontier_and_dominated(self):
        rows = _rows([(1.0, 100), (2.0, 50), (2.0, 150), (3.0, 40)])
        front, rest = pareto(rows, "time_ms", "sram_bytes")
        assert [row["name"] for row in front] == [3, 1, 0]  # by cost
        assert [row["name"] for row in rest] == [2]

    def test_strict_domination_keeps_exact_ties_together(self):
        rows = _rows([(1.0, 100), (1.0, 100)])
        front, rest = pareto(rows, "time_ms", "sram_bytes")
        assert len(front) == 2 and rest == []

    def test_single_row_is_its_own_frontier(self):
        rows = _rows([(5.0, 5)])
        front, rest = pareto(rows, "time_ms", "sram_bytes")
        assert front == rows and rest == []

    def test_dominated_on_one_axis_survives_if_better_on_the_other(self):
        rows = _rows([(1.0, 200), (2.0, 100)])
        front, rest = pareto(rows, "time_ms", "sram_bytes")
        assert len(front) == 2 and rest == []

    def test_missing_or_non_numeric_metric_is_an_error(self):
        with pytest.raises(FrontierError, match="no 'watts' column"):
            pareto(_rows([(1.0, 1)]), "time_ms", "watts")
        with pytest.raises(FrontierError, match="must be numeric"):
            pareto([{"time_ms": "fast", "sram_bytes": 1}],
                   "time_ms", "sram_bytes")


class TestFrontierResult:
    def test_groups_and_optional_dominated(self):
        rows = _rows([(1.0, 100), (2.0, 150)])
        result = frontier_result(rows, "time_ms", "sram_bytes")
        assert set(result.groups) == {"frontier"}
        assert [row["name"] for row in result.groups["frontier"]] == [0]
        both = frontier_result(rows, "time_ms", "sram_bytes",
                               include_dominated=True)
        assert [row["name"] for row in both.groups["dominated"]] == [1]

    def test_round_trips_through_csv(self):
        rows = _rows([(1.0, 100), (2.0, 150)])
        result = frontier_result(rows, "time_ms", "sram_bytes",
                                 include_dominated=True)
        from repro.api import ResultSet

        parsed = ResultSet.from_csv(result.to_csv())
        assert parsed.groups == result.groups
