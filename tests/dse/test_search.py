"""Tests for the DSE engine: pruning, strategies, halving's cancel contract.

The guaranteed-cancel construction: a space whose axis
(``cpu.l1_replacement``) cannot affect timing on a working set that
never evicts, so every shape's rung score ties, the cut is decided by
shape index, and — on the serial backend — the moment the kept shape's
speculative point resolves the remaining speculative points are
provably cancelled (asserted through the explorer's stats).
"""

import pytest

from repro.config import KB
from repro.dse.budget import Budget, sram_bytes
from repro.dse.search import (
    DseError,
    Explorer,
    GridSearch,
    RandomSearch,
    SuccessiveHalving,
    create_strategy,
)
from repro.dse.space import CategoricalAxis, Fidelity, ShapeSpace
from repro.harness.backends import ProcessPoolBackend


def _space(axes=None, fidelity=True, name="dse-test", **kwargs):
    return ShapeSpace(
        workload="matmul", system="ccsvm-small",
        axes=axes if axes is not None else (
            CategoricalAxis("mttop.l1_size_bytes", (4 * KB, 8 * KB)),
            CategoricalAxis("l2.total_size_bytes", (64 * KB, 128 * KB))),
        fidelity=Fidelity("size", (4, 8)) if fidelity else None,
        name=name, **kwargs)


def _tie_space(name="dse-tie"):
    """Two shapes whose measurements are identical by construction."""
    return ShapeSpace(
        workload="matmul", system="ccsvm-small",
        axes=(CategoricalAxis("cpu.l1_replacement", ("lru", "plru")),),
        fidelity=Fidelity("size", (4, 8)), name=name)


class TestAdmissibility:
    def test_budget_prunes_without_simulation(self, tmp_path):
        space = _space(name="dse-prune")
        ceiling = sram_bytes(space.config(space.shapes()[0]))
        explorer = Explorer(space, budget=Budget(sram_bytes=ceiling),
                            cache_dir=str(tmp_path / "cache"))
        states, pruned = explorer.admissible()
        assert len(states) + len(pruned) == 4
        assert pruned and all("exceeds the budget" in p.reason
                              for p in pruned)
        assert explorer.stats.points_simulated == 0

    def test_unbuildable_shapes_are_pruned_with_reasons(self):
        # An axis over a path that resolves on no configuration section
        # can never build; the explorer prunes it with the override error.
        space = _space(axes=(CategoricalAxis("no.such_path", (1, 2)),),
                       name="dse-bad")
        explorer = Explorer(space)
        states, pruned = explorer.admissible()
        assert states == []
        assert all("unbuildable" in p.reason for p in pruned)

    def test_all_pruned_is_an_error(self):
        explorer = Explorer(_space(name="dse-none"),
                            budget=Budget(sram_bytes=1))
        with pytest.raises(DseError, match="no admissible shape"):
            explorer.explore(GridSearch())

    def test_unknown_cost_metric_is_an_error(self):
        with pytest.raises(DseError, match="unknown cost metric"):
            Explorer(_space(), cost="watts")


class TestGridAndRandom:
    def test_grid_measures_every_admissible_shape(self, tmp_path):
        explorer = Explorer(_space(name="dse-grid"),
                            cache_dir=str(tmp_path / "cache"))
        exploration = explorer.explore(GridSearch(), include_dominated=True)
        assert len(exploration.rows) == 4
        assert explorer.stats.points_simulated == 4
        # Every row measured at full fidelity, with both metrics present.
        assert all(row["size"] == 8 for row in exploration.rows)
        assert all("time_ms" in row and "sram_bytes" in row
                   for row in exploration.rows)
        assert len(exploration.result.groups["frontier"]) >= 1

    def test_grid_rerun_is_store_warm_and_byte_identical(self, tmp_path):
        cache = str(tmp_path / "cache")
        space = _space(name="dse-warm")
        first = Explorer(space, cache_dir=cache).explore(GridSearch())
        second_explorer = Explorer(space, cache_dir=cache)
        second = second_explorer.explore(GridSearch())
        assert second_explorer.stats.points_simulated == 0
        assert second_explorer.stats.points_cached == 4
        assert second.result.to_csv() == first.result.to_csv()

    def test_random_is_deterministic_under_a_seed(self, tmp_path):
        cache = str(tmp_path / "cache")
        space = _space(name="dse-rand")
        runs = [Explorer(space, cache_dir=cache).explore(
                    RandomSearch(samples=2, seed=9)) for _ in range(2)]
        assert runs[0].result.to_csv() == runs[1].result.to_csv()
        assert len(runs[0].rows) == 2

    def test_random_needs_samples(self):
        with pytest.raises(DseError, match="samples"):
            RandomSearch(samples=0)
        with pytest.raises(DseError, match="--samples"):
            create_strategy("random")

    def test_create_strategy_names(self):
        assert create_strategy("grid").name == "grid"
        assert create_strategy("random", samples=3).name == "random"
        assert create_strategy("halving").name == "halving"
        with pytest.raises(DseError, match="unknown search strategy"):
            create_strategy("anneal")


class TestSuccessiveHalving:
    def test_needs_a_fidelity_ladder_and_sane_eta(self):
        with pytest.raises(DseError, match="eta >= 2"):
            SuccessiveHalving(eta=1)
        explorer = Explorer(_space(fidelity=False, name="dse-nofid"))
        with pytest.raises(DseError, match="fidelity ladder"):
            explorer.explore(SuccessiveHalving())

    def test_halving_provably_cancels_inflight_points(self, tmp_path):
        explorer = Explorer(_tie_space(name="dse-cancel"),
                            cache_dir=str(tmp_path / "cache"))
        exploration = explorer.explore(SuccessiveHalving(eta=2))
        stats = explorer.stats
        # Serial backend, 2 shapes: rung 0 dispatches [s0@4, s1@4,
        # s0@8, s1@8]; scores tie, shape 0 is kept by index, and once
        # s0@8 resolves the batch is cancelled with s1@8 in flight.
        assert stats.cancels == 1
        assert stats.points_cancelled == 1
        assert stats.points_simulated == 3
        # The survivor's full-fidelity point was speculative and is
        # served from the store on the final rung.
        assert stats.points_cached == 1
        assert len(exploration.rows) == 1
        assert exploration.rows[0]["cpu.l1_replacement"] == "lru"

    def test_halving_is_deterministic_and_warm_on_rerun(self, tmp_path):
        cache = str(tmp_path / "cache")
        space = _tie_space(name="dse-warmhalf")
        first = Explorer(space, cache_dir=cache).explore(SuccessiveHalving())
        second_explorer = Explorer(space, cache_dir=cache)
        second = second_explorer.explore(SuccessiveHalving())
        assert second.result.to_csv() == first.result.to_csv()
        assert second_explorer.stats.points_simulated == 0
        assert second_explorer.stats.cancels == 0

    def test_halving_matches_across_backends(self, tmp_path):
        space = _space(name="dse-backends")
        serial = Explorer(space, cache_dir=str(tmp_path / "a")).explore(
            SuccessiveHalving())
        with ProcessPoolBackend(jobs=2) as backend:
            pooled = Explorer(space, backend=backend,
                              cache_dir=str(tmp_path / "b")).explore(
                SuccessiveHalving())
        assert pooled.result.to_csv() == serial.result.to_csv()

    def test_halving_narrows_to_the_best_shapes(self, tmp_path):
        # Four shapes, eta=2: rung 0 keeps 2, the final rung measures 2.
        explorer = Explorer(_space(name="dse-narrow"),
                            cache_dir=str(tmp_path / "cache"))
        exploration = explorer.explore(SuccessiveHalving(eta=2))
        assert len(exploration.rows) == 2
        assert all(row["size"] == 8 for row in exploration.rows)


class TestRowShape:
    def test_rows_carry_axes_system_fidelity_objective_and_cost(self,
                                                                tmp_path):
        explorer = Explorer(_space(name="dse-rows"),
                            cache_dir=str(tmp_path / "cache"),
                            objective="dram_accesses", cost="area_mm2")
        exploration = explorer.explore(GridSearch())
        row = exploration.rows[0]
        assert row["system"] == "ccsvm-small"
        assert set(row) == {"system", "mttop.l1_size_bytes",
                            "l2.total_size_bytes", "size",
                            "dram_accesses", "area_mm2"}

    def test_missing_objective_column_is_an_error(self, tmp_path):
        explorer = Explorer(_space(name="dse-noobj"), objective="watts")
        with pytest.raises(DseError, match="no objective column 'watts'"):
            explorer.explore(GridSearch())
