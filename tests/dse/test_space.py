"""Tests for DSE shape spaces: axes, shape enumeration, file loading."""

import textwrap

import pytest

from repro.config import KB, OverrideError
from repro.dse.space import (
    BoolAxis,
    CategoricalAxis,
    Fidelity,
    ShapeSpace,
    SizeAxis,
    SpaceError,
    space_from_file,
)


class TestAxes:
    def test_size_axis_steps_additively(self):
        axis = SizeAxis("l2.total_size_bytes", minimum=64 * KB,
                        maximum=256 * KB, step=64 * KB)
        assert axis.values() == (64 * KB, 128 * KB, 192 * KB, 256 * KB)

    def test_size_axis_steps_geometrically(self):
        axis = SizeAxis("l2.total_size_bytes", minimum=64 * KB,
                        maximum=256 * KB, factor=2)
        assert axis.values() == (64 * KB, 128 * KB, 256 * KB)

    def test_size_axis_needs_exactly_one_stepping(self):
        with pytest.raises(SpaceError, match="exactly one"):
            SizeAxis("x", minimum=1, maximum=2)
        with pytest.raises(SpaceError, match="exactly one"):
            SizeAxis("x", minimum=1, maximum=2, step=1, factor=2)

    def test_size_axis_validates_bounds(self):
        with pytest.raises(SpaceError, match="min <= max"):
            SizeAxis("x", minimum=8, maximum=4, step=1)
        with pytest.raises(SpaceError, match="factor >= 2"):
            SizeAxis("x", minimum=1, maximum=4, factor=1)

    def test_bool_axis_and_empty_categorical(self):
        assert BoolAxis("l3.enabled").values() == (False, True)
        with pytest.raises(SpaceError, match="no choices"):
            CategoricalAxis("x", ())

    def test_fidelity_validates_values(self):
        assert Fidelity("size", (4, 8)).full == 8
        with pytest.raises(SpaceError, match="distinct"):
            Fidelity("size", (4, 4))


def _space(**kwargs):
    defaults = dict(
        workload="matmul", system="ccsvm-small",
        axes=(CategoricalAxis("mttop.l1_size_bytes", (4 * KB, 8 * KB)),
              CategoricalAxis("l2.total_size_bytes", (64 * KB, 128 * KB))),
        fidelity=Fidelity("size", (4, 8)), name="space-test")
    defaults.update(kwargs)
    return ShapeSpace(**defaults)


class TestShapeSpace:
    def test_shapes_enumerate_the_cartesian_product_in_order(self):
        shapes = _space().shapes()
        assert [shape.index for shape in shapes] == [0, 1, 2, 3]
        # Rightmost axis varies fastest.
        assert [shape.overrides["l2.total_size_bytes"] for shape in shapes] \
            == [64 * KB, 128 * KB, 64 * KB, 128 * KB]
        assert shapes[0].shape_id == \
            f"mttop.l1_size_bytes={4 * KB},l2.total_size_bytes={64 * KB}"
        assert all(shape.system == "ccsvm-small" for shape in shapes)

    def test_system_axis_makes_the_preset_a_dimension(self):
        space = ShapeSpace(
            workload="matmul",
            axes=(CategoricalAxis("system", ("cpu", "ccsvm-small")),),
            name="sys-axis")
        shapes = space.shapes()
        assert [shape.system for shape in shapes] == ["cpu", "ccsvm-small"]
        assert shapes[0].overrides == {}

    def test_unknown_system_fails_at_declaration(self):
        with pytest.raises(Exception, match="no system preset"):
            _space(system="nope")
        with pytest.raises(Exception, match="no system preset"):
            ShapeSpace(workload="matmul",
                       axes=(CategoricalAxis("system", ("nope",)),))

    def test_needs_a_system_and_axes(self):
        with pytest.raises(SpaceError, match="needs a 'system'"):
            ShapeSpace(workload="matmul",
                       axes=(BoolAxis("l3.enabled"),))
        with pytest.raises(SpaceError, match="no axes"):
            ShapeSpace(workload="matmul", system="cpu").shapes()

    def test_duplicate_axis_paths_are_rejected(self):
        with pytest.raises(SpaceError, match="duplicate axis paths"):
            _space(axes=(BoolAxis("l3.enabled"), BoolAxis("l3.enabled")))

    def test_config_applies_shape_overrides_strictly(self):
        space = _space(axes=(CategoricalAxis("no.such_path", (1,)),))
        (shape,) = space.shapes()
        with pytest.raises(OverrideError):
            space.config(shape)

    def test_config_skips_inapplicable_base_overrides(self):
        space = _space(overrides={"mttop.count": 1,
                                  "cpu.l2_shared": True})  # APU-only path
        shape = space.shapes()[0]
        config = space.config(shape)
        assert config.mttop.count == 1
        assert space.effective_overrides(shape) == {
            "mttop.count": 1,
            "mttop.l1_size_bytes": 4 * KB,
            "l2.total_size_bytes": 64 * KB,
        }

    def test_scenario_yields_one_point_at_the_given_fidelity(self):
        space = _space(seed=7)
        shape = space.shapes()[0]
        points = space.scenario(shape, 8).points()
        assert len(points) == 1
        (point,) = points
        assert point.spec == "space-test"
        assert point.kwargs["params"]["size"] == 8
        assert point.kwargs["seed"] == 7
        assert point.kwargs["overrides"]["mttop.l1_size_bytes"] == 4 * KB

    def test_scenario_without_ladder_rejects_fidelity_values(self):
        space = _space(fidelity=None)
        with pytest.raises(SpaceError, match="no fidelity ladder"):
            space.scenario(space.shapes()[0], 8)


class TestSpaceFiles:
    def _write(self, tmp_path, text, name="space.toml"):
        path = tmp_path / name
        path.write_text(textwrap.dedent(text))
        return str(path)

    def test_toml_round_trip(self, tmp_path):
        path = self._write(tmp_path, """\
            name = "l1-study"
            workload = "matmul"
            system = "ccsvm-small"
            seed = 3

            [params]
            size = 8

            [fidelity]
            param = "size"
            values = [4, 8]

            [[axes]]
            path = "mttop.l1_size_bytes"
            kind = "size"
            min = "4KiB"
            max = "16KiB"
            factor = 2

            [[axes]]
            path = "l3.enabled"
            kind = "bool"
        """)
        space = space_from_file(path)
        assert space.name == "l1-study"
        assert space.seed == 3
        assert space.fidelity.values == (4, 8)
        shapes = space.shapes()
        assert len(shapes) == 6  # three L1 sizes x two L3 toggles
        assert shapes[0].overrides == {"mttop.l1_size_bytes": 4 * KB,
                                       "l3.enabled": False}

    def test_unknown_keys_fail_loudly(self, tmp_path):
        path = self._write(tmp_path, """\
            workload = "matmul"
            system = "cpu"
            typo = 1

            [[axes]]
            path = "l3.enabled"
            kind = "bool"
        """)
        with pytest.raises(SpaceError, match="unknown space keys typo"):
            space_from_file(path)

    def test_unknown_axis_keys_and_kinds_fail(self, tmp_path):
        path = self._write(tmp_path, """\
            workload = "matmul"
            system = "cpu"

            [[axes]]
            path = "l3.enabled"
            kind = "toggle"
        """)
        with pytest.raises(SpaceError, match="unknown axis kind"):
            space_from_file(path)
        path = self._write(tmp_path, """\
            workload = "matmul"
            system = "cpu"

            [[axes]]
            path = "l3.enabled"
            kind = "bool"
            wat = true
        """, name="space2.toml")
        with pytest.raises(SpaceError, match="unknown axis keys wat"):
            space_from_file(path)

    def test_missing_workload_or_axes_fail(self, tmp_path):
        path = self._write(tmp_path, 'system = "cpu"\n')
        with pytest.raises(SpaceError, match="needs a 'workload'"):
            space_from_file(path)
        path = self._write(tmp_path, 'workload = "matmul"\nsystem = "cpu"\n',
                           name="noaxes.toml")
        with pytest.raises(SpaceError, match="axes"):
            space_from_file(path)

    def test_fidelity_section_is_validated(self, tmp_path):
        path = self._write(tmp_path, """\
            workload = "matmul"
            system = "cpu"

            [fidelity]
            param = "size"

            [[axes]]
            path = "l3.enabled"
            kind = "bool"
        """)
        with pytest.raises(SpaceError, match="'values' list"):
            space_from_file(path)

    def test_json_form_works(self, tmp_path):
        path = tmp_path / "space.json"
        path.write_text('{"workload": "matmul", "system": "cpu", '
                        '"axes": [{"path": "l3.enabled", "kind": "bool"}]}')
        space = space_from_file(str(path))
        assert space.name == "dse-space"
        assert len(space.shapes()) == 2
