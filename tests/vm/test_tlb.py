"""Tests for the TLB."""

import pytest

from repro.errors import TLBError
from repro.memory.address import PAGE_SIZE
from repro.sim.stats import StatsRegistry
from repro.vm.tlb import TLB


class TestLookupInsert:
    def test_miss_on_empty(self):
        assert TLB().lookup(0x1000) is None

    def test_hit_after_insert(self):
        tlb = TLB()
        tlb.insert(vpn=3, frame_address=7 * PAGE_SIZE, writable=True)
        entry = tlb.lookup(3 * PAGE_SIZE + 0x123)
        assert entry is not None
        assert entry.physical_address(3 * PAGE_SIZE + 0x123) == 7 * PAGE_SIZE + 0x123

    def test_insert_rejects_unaligned_frame(self):
        with pytest.raises(TLBError):
            TLB().insert(vpn=1, frame_address=123, writable=True)

    def test_capacity_must_be_positive(self):
        with pytest.raises(TLBError):
            TLB(entries=0)

    def test_contains(self):
        tlb = TLB()
        tlb.insert(5, 5 * PAGE_SIZE, True)
        assert (5 * PAGE_SIZE) in tlb
        assert (6 * PAGE_SIZE) not in tlb

    def test_stats_counted(self):
        stats = StatsRegistry()
        tlb = TLB(stats=stats, name="t")
        tlb.lookup(0)
        tlb.insert(0, 0, True)
        tlb.lookup(0)
        assert stats["t.misses"] == 1 and stats["t.hits"] == 1
        assert tlb.hit_rate == 0.5


class TestReplacement:
    def test_lru_eviction(self):
        tlb = TLB(entries=2)
        tlb.insert(1, PAGE_SIZE, True)
        tlb.insert(2, 2 * PAGE_SIZE, True)
        tlb.lookup(1 * PAGE_SIZE)          # touch vpn 1 so vpn 2 is LRU
        tlb.insert(3, 3 * PAGE_SIZE, True)
        assert (1 * PAGE_SIZE) in tlb
        assert (2 * PAGE_SIZE) not in tlb
        assert (3 * PAGE_SIZE) in tlb

    def test_capacity_never_exceeded(self):
        tlb = TLB(entries=4)
        for vpn in range(32):
            tlb.insert(vpn, vpn * PAGE_SIZE, True)
        assert len(tlb) == 4

    def test_reinsert_updates_not_duplicates(self):
        tlb = TLB(entries=4)
        tlb.insert(1, PAGE_SIZE, True)
        tlb.insert(1, 2 * PAGE_SIZE, True)
        assert len(tlb) == 1
        assert tlb.lookup(PAGE_SIZE).frame_address == 2 * PAGE_SIZE


class TestCoherenceOperations:
    def test_invalidate_present(self):
        stats = StatsRegistry()
        tlb = TLB(stats=stats, name="t")
        tlb.insert(1, PAGE_SIZE, True)
        assert tlb.invalidate(PAGE_SIZE) is True
        assert (PAGE_SIZE) not in tlb
        assert stats["t.invalidations"] == 1
        assert stats["t.invalidation_misses"] == 0

    def test_invalidate_absent_not_counted_as_drop(self):
        stats = StatsRegistry()
        tlb = TLB(stats=stats, name="t")
        assert tlb.invalidate(PAGE_SIZE) is False
        # A page that was never cached must not inflate the shootdown
        # accounting; it lands in the dedicated miss counter instead.
        assert stats["t.invalidations"] == 0
        assert stats["t.invalidation_misses"] == 1

    def test_flush_drops_everything(self):
        stats = StatsRegistry()
        tlb = TLB(stats=stats, name="t")
        for vpn in range(10):
            tlb.insert(vpn, vpn * PAGE_SIZE, True)
        assert tlb.flush() == 10
        assert len(tlb) == 0
        assert stats["t.flushes"] == 1
        assert stats["t.flushed_entries"] == 10
