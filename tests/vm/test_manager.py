"""Tests for the virtual-memory manager (the OS model)."""

import pytest

from repro.errors import PageFaultError, VirtualMemoryError
from repro.memory.address import PAGE_SIZE
from repro.vm.manager import VirtualMemoryManager


class TestAddressSpaces:
    def test_create_assigns_unique_pids_and_cr3(self, vm_manager):
        a = vm_manager.create_address_space()
        b = vm_manager.create_address_space()
        assert a.pid != b.pid
        assert a.cr3 != b.cr3

    def test_lookup_by_pid(self, vm_manager):
        space = vm_manager.create_address_space()
        assert vm_manager.address_space(space.pid) is space
        with pytest.raises(VirtualMemoryError):
            vm_manager.address_space(999)

    def test_lookup_by_cr3(self, vm_manager):
        space = vm_manager.create_address_space()
        assert vm_manager.space_for_cr3(space.cr3) is space
        with pytest.raises(VirtualMemoryError):
            vm_manager.space_for_cr3(0xDEAD000)


class TestMalloc:
    def test_returns_word_aligned_growing_addresses(self, vm_manager):
        space = vm_manager.create_address_space()
        a = vm_manager.malloc(space, 100)
        b = vm_manager.malloc(space, 100)
        assert a % 8 == 0 and b % 8 == 0
        assert b >= a + 100

    def test_rejects_non_positive_size(self, vm_manager):
        space = vm_manager.create_address_space()
        with pytest.raises(VirtualMemoryError):
            vm_manager.malloc(space, 0)

    def test_lazy_mapping_by_default(self, vm_manager):
        space = vm_manager.create_address_space()
        vaddr = vm_manager.malloc(space, PAGE_SIZE)
        assert space.page_table.translate(vaddr) is None

    def test_eager_mapping_option(self, physical_memory, frame_allocator):
        manager = VirtualMemoryManager(physical_memory, frame_allocator,
                                       eager_mapping=True)
        space = manager.create_address_space()
        vaddr = manager.malloc(space, PAGE_SIZE)
        assert space.page_table.translate(vaddr) is not None

    def test_free_marks_allocation(self, vm_manager):
        space = vm_manager.create_address_space()
        vaddr = vm_manager.malloc(space, 64)
        vm_manager.free(space, vaddr)
        with pytest.raises(VirtualMemoryError):
            vm_manager.free(space, vaddr)

    def test_bytes_allocated_tracking(self, vm_manager):
        space = vm_manager.create_address_space()
        a = vm_manager.malloc(space, 64)
        vm_manager.malloc(space, 100)
        vm_manager.free(space, a)
        assert space.bytes_allocated() == 100


class TestPageFaults:
    def test_fault_maps_page(self, vm_manager):
        space = vm_manager.create_address_space()
        vaddr = vm_manager.malloc(space, 64)
        latency = vm_manager.handle_page_fault(space, vaddr)
        assert latency > 0
        assert space.page_table.translate(vaddr) is not None

    def test_fault_outside_heap_is_segfault(self, vm_manager):
        space = vm_manager.create_address_space()
        with pytest.raises(PageFaultError):
            vm_manager.handle_page_fault(space, 0x10)

    def test_spurious_fault_tolerated(self, vm_manager, stats):
        space = vm_manager.create_address_space()
        vaddr = vm_manager.malloc(space, 64)
        vm_manager.handle_page_fault(space, vaddr)
        vm_manager.handle_page_fault(space, vaddr)
        assert stats["os.spurious_faults"] == 1

    def test_mttop_faults_counted_separately(self, vm_manager, stats):
        space = vm_manager.create_address_space()
        vaddr = vm_manager.malloc(space, 64)
        vm_manager.handle_page_fault(space, vaddr, from_mttop=True)
        assert stats["os.page_faults_from_mttop"] == 1

    def test_translate_or_fault(self, vm_manager):
        space = vm_manager.create_address_space()
        vaddr = vm_manager.malloc(space, 64)
        translation = vm_manager.translate_or_fault(space, vaddr)
        assert translation.physical_address(vaddr) % 8 == 0

    def test_touch_maps_whole_range(self, vm_manager):
        space = vm_manager.create_address_space()
        vaddr = vm_manager.malloc(space, 3 * PAGE_SIZE)
        vm_manager.touch(space, vaddr, 3 * PAGE_SIZE)
        for offset in range(0, 3 * PAGE_SIZE, PAGE_SIZE):
            assert space.page_table.translate(vaddr + offset) is not None


class TestUnmap:
    def test_unmap_range_frees_frames(self, vm_manager, frame_allocator):
        space = vm_manager.create_address_space()
        vaddr = vm_manager.malloc(space, 2 * PAGE_SIZE)
        vm_manager.touch(space, vaddr, 2 * PAGE_SIZE)
        allocated_before = frame_allocator.allocated_frames
        unmapped = vm_manager.unmap_range(space, vaddr, 2 * PAGE_SIZE)
        assert len(unmapped) >= 2
        assert frame_allocator.allocated_frames < allocated_before

    def test_unmap_range_skips_unmapped_pages(self, vm_manager):
        space = vm_manager.create_address_space()
        vaddr = vm_manager.malloc(space, 4 * PAGE_SIZE)
        assert vm_manager.unmap_range(space, vaddr, 4 * PAGE_SIZE) == []
