"""Tests for TLB shootdown."""

from repro.memory.address import PAGE_SIZE
from repro.sim.stats import StatsRegistry
from repro.vm.shootdown import ShootdownPolicy, TLBShootdownController
from repro.vm.tlb import TLB


def _warm(tlb, pages=8):
    for vpn in range(pages):
        tlb.insert(vpn, vpn * PAGE_SIZE, True)


class TestShootdown:
    def _build(self, policy=ShootdownPolicy.FLUSH_ALL):
        stats = StatsRegistry()
        controller = TLBShootdownController(stats=stats, policy=policy)
        cpu = [TLB(name=f"cpu{i}") for i in range(2)]
        mttop = [TLB(name=f"mttop{i}") for i in range(3)]
        for tlb in cpu:
            controller.register_cpu_tlb(tlb)
            _warm(tlb)
        for tlb in mttop:
            controller.register_mttop_tlb(tlb)
            _warm(tlb)
        return controller, cpu, mttop, stats

    def test_registration_counts(self):
        controller, cpu, mttop, _ = self._build()
        assert controller.cpu_tlb_count == 2
        assert controller.mttop_tlb_count == 3

    def test_flush_all_policy_empties_mttop_tlbs(self):
        controller, cpu, mttop, _ = self._build()
        controller.shootdown([3 * PAGE_SIZE], initiator_tlb=cpu[0])
        for tlb in mttop:
            assert len(tlb) == 0

    def test_flush_all_only_invalidates_page_on_cpus(self):
        controller, cpu, mttop, _ = self._build()
        controller.shootdown([3 * PAGE_SIZE], initiator_tlb=cpu[0])
        for tlb in cpu:
            assert (3 * PAGE_SIZE) not in tlb
            assert (2 * PAGE_SIZE) in tlb

    def test_selective_policy_preserves_other_mttop_entries(self):
        controller, cpu, mttop, _ = self._build(ShootdownPolicy.SELECTIVE)
        controller.shootdown([3 * PAGE_SIZE], initiator_tlb=cpu[0])
        for tlb in mttop:
            assert (3 * PAGE_SIZE) not in tlb
            assert (2 * PAGE_SIZE) in tlb

    def test_latency_scales_with_targets(self):
        controller, cpu, mttop, _ = self._build()
        result = controller.shootdown([PAGE_SIZE], initiator_tlb=cpu[0])
        # one other CPU + three MTTOPs receive an IPI
        assert result.cpu_tlbs_signalled == 1
        assert result.mttop_tlbs_signalled == 3
        assert result.latency_ps == 4 * controller.ipi_ps

    def test_entries_dropped_counted(self):
        controller, cpu, mttop, stats = self._build()
        result = controller.shootdown([PAGE_SIZE], initiator_tlb=cpu[0])
        # 1 entry in each CPU TLB (2 total, initiator + other) + full flush
        # of 8 entries in each of the 3 MTTOP TLBs.
        assert result.entries_dropped == 2 + 3 * 8
        assert stats["shootdown.entries_dropped"] == result.entries_dropped

    def test_invalidation_stats_count_only_actual_drops(self):
        controller, cpu, mttop, _ = self._build(ShootdownPolicy.SELECTIVE)
        # Page 3 is warm in every TLB; the first shootdown drops it
        # everywhere, the second finds it nowhere.
        controller.shootdown([3 * PAGE_SIZE], initiator_tlb=cpu[0])
        controller.shootdown([3 * PAGE_SIZE], initiator_tlb=cpu[0])
        for i, tlb in enumerate(cpu):
            assert tlb.stats[f"cpu{i}.invalidations"] == 1
            assert tlb.stats[f"cpu{i}.invalidation_misses"] == 1
        for i, tlb in enumerate(mttop):
            assert tlb.stats[f"mttop{i}.invalidations"] == 1
            assert tlb.stats[f"mttop{i}.invalidation_misses"] == 1

    def test_cold_page_shootdown_drops_nothing(self):
        controller, cpu, mttop, stats = self._build(ShootdownPolicy.SELECTIVE)
        result = controller.shootdown([99 * PAGE_SIZE], initiator_tlb=cpu[0])
        assert result.entries_dropped == 0
        assert stats["shootdown.entries_dropped"] == 0
        for i, tlb in enumerate(cpu):
            assert tlb.stats[f"cpu{i}.invalidations"] == 0
            assert tlb.stats[f"cpu{i}.invalidation_misses"] == 1

    def test_multiple_pages(self):
        controller, cpu, mttop, _ = self._build(ShootdownPolicy.SELECTIVE)
        result = controller.shootdown([PAGE_SIZE, 2 * PAGE_SIZE],
                                      initiator_tlb=cpu[0])
        assert result.pages == 2
        for tlb in cpu + mttop:
            assert (PAGE_SIZE) not in tlb and (2 * PAGE_SIZE) not in tlb
