"""Tests for the hardware page-table walker."""

import pytest

from repro.sim.stats import StatsRegistry
from repro.vm.page_table import LEVELS, PageTable
from repro.vm.walker import PageTableWalker


@pytest.fixture
def table(physical_memory, frame_allocator):
    return PageTable(physical_memory, frame_allocator)


class TestWalker:
    def test_walk_hits_mapped_page(self, physical_memory, frame_allocator, table):
        frame = frame_allocator.allocate()
        table.map(0x1000_0000, frame)
        walker = PageTableWalker(physical_memory, default_entry_latency_ps=10)
        result = walker.walk(table, 0x1000_0040)
        assert not result.page_fault
        assert result.translation.frame_address == frame
        assert result.levels_visited == LEVELS
        assert result.latency_ps == 10 * LEVELS

    def test_walk_faults_on_unmapped(self, physical_memory, table):
        walker = PageTableWalker(physical_memory, default_entry_latency_ps=10)
        result = walker.walk(table, 0x5555_0000)
        assert result.page_fault
        assert result.translation is None
        assert result.levels_visited >= 1

    def test_timing_callback_used(self, physical_memory, frame_allocator, table):
        frame = frame_allocator.allocate()
        table.map(0x2000_0000, frame)
        charged = []
        walker = PageTableWalker(physical_memory,
                                 entry_read_timing=lambda paddr: charged.append(paddr) or 500)
        result = walker.walk(table, 0x2000_0000)
        assert result.latency_ps == 500 * LEVELS
        assert len(charged) == LEVELS

    def test_stats_recorded(self, physical_memory, frame_allocator, table):
        stats = StatsRegistry()
        frame = frame_allocator.allocate()
        table.map(0x3000_0000, frame)
        walker = PageTableWalker(physical_memory, stats=stats, name="w")
        walker.walk(table, 0x3000_0000)
        walker.walk(table, 0x9999_0000)
        assert stats["w.walks"] == 2
        assert stats["w.faults"] == 1

    def test_set_entry_read_timing_after_construction(self, physical_memory,
                                                      frame_allocator, table):
        frame = frame_allocator.allocate()
        table.map(0x4000_0000, frame)
        walker = PageTableWalker(physical_memory, default_entry_latency_ps=1)
        walker.set_entry_read_timing(lambda paddr: 1000)
        assert walker.walk(table, 0x4000_0000).latency_ps == 1000 * LEVELS
