"""Tests for the 4-level page table."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import PageFaultError
from repro.memory.address import PAGE_SIZE
from repro.memory.physical import FrameAllocator, PhysicalMemory
from repro.vm.page_table import (
    LEVELS,
    PageTable,
    PageTableEntry,
    level_index,
)


@pytest.fixture
def table(physical_memory, frame_allocator):
    return PageTable(physical_memory, frame_allocator)


class TestEntryEncoding:
    def test_encode_decode(self):
        raw = PageTableEntry.encode(0x5000, writable=True)
        entry = PageTableEntry(raw)
        assert entry.present and entry.writable and entry.frame_address == 0x5000

    def test_read_only(self):
        entry = PageTableEntry(PageTableEntry.encode(0x5000, writable=False))
        assert entry.present and not entry.writable

    def test_not_present(self):
        assert not PageTableEntry(0).present

    def test_rejects_unaligned_frame(self):
        with pytest.raises(Exception):
            PageTableEntry.encode(0x5001)


class TestLevelIndex:
    def test_low_address_indexes_zero(self):
        assert [level_index(0, level) for level in range(LEVELS)] == [0, 0, 0, 0]

    def test_leaf_index_increments_per_page(self):
        assert level_index(PAGE_SIZE, LEVELS - 1) == 1

    def test_higher_levels_change_more_slowly(self):
        vaddr = PAGE_SIZE * 512  # one full leaf table
        assert level_index(vaddr, LEVELS - 1) == 0
        assert level_index(vaddr, LEVELS - 2) == 1


class TestMapping:
    def test_translate_unmapped_returns_none(self, table):
        assert table.translate(0x1000_0000) is None

    def test_map_then_translate(self, table, frame_allocator):
        frame = frame_allocator.allocate()
        table.map(0x1000_0000, frame)
        result = table.translate(0x1000_0123)
        assert result is not None
        assert result.frame_address == frame
        assert result.physical_address(0x1000_0123) == frame + 0x123

    def test_map_read_only(self, table, frame_allocator):
        frame = frame_allocator.allocate()
        table.map(0x2000_0000, frame, writable=False)
        assert not table.translate(0x2000_0000).writable

    def test_set_writable(self, table, frame_allocator):
        frame = frame_allocator.allocate()
        table.map(0x2000_0000, frame, writable=False)
        table.set_writable(0x2000_0000, True)
        assert table.translate(0x2000_0000).writable

    def test_unmap(self, table, frame_allocator):
        frame = frame_allocator.allocate()
        table.map(0x3000_0000, frame)
        assert table.unmap(0x3000_0000) == frame
        assert table.translate(0x3000_0000) is None

    def test_unmap_unmapped_raises(self, table):
        with pytest.raises(PageFaultError):
            table.unmap(0x4000_0000)

    def test_remap_same_page_does_not_double_count(self, table, frame_allocator):
        table.map(0x5000_0000, frame_allocator.allocate())
        table.map(0x5000_0000, frame_allocator.allocate())
        assert table.mapped_pages == 1

    def test_adjacent_pages_get_distinct_translations(self, table, frame_allocator):
        f1, f2 = frame_allocator.allocate(), frame_allocator.allocate()
        table.map(0x6000_0000, f1)
        table.map(0x6000_1000, f2)
        assert table.translate(0x6000_0000).frame_address == f1
        assert table.translate(0x6000_1000).frame_address == f2

    def test_node_count_grows_with_distant_mappings(self, table, frame_allocator):
        before = table.node_count
        table.map(0x0000_1000_0000, frame_allocator.allocate())
        table.map(0x7000_0000_0000, frame_allocator.allocate())
        assert table.node_count > before

    def test_walk_entry_addresses_depth(self, table, frame_allocator):
        # Unmapped: the walk stops at the first non-present entry (the root).
        assert len(table.walk_entry_addresses(0x1234_5000)) == 1
        table.map(0x1234_5000, frame_allocator.allocate())
        assert len(table.walk_entry_addresses(0x1234_5000)) == LEVELS

    def test_mappings_iterator(self, table, frame_allocator):
        table.map(0x1000_0000, frame_allocator.allocate())
        table.map(0x1000_1000, frame_allocator.allocate())
        mappings = dict(table.mappings())
        assert set(mappings) == {0x1000_0000 // PAGE_SIZE, 0x1000_1000 // PAGE_SIZE}


class TestPageTableProperties:
    @settings(max_examples=25, deadline=None)
    @given(st.sets(st.integers(0, 1 << 20), min_size=1, max_size=20))
    def test_many_mappings_all_translate(self, vpns):
        memory = PhysicalMemory(64 * 1024 * 1024)
        frames = FrameAllocator(memory.size_bytes)
        table = PageTable(memory, frames)
        expected = {}
        for vpn in vpns:
            frame = frames.allocate()
            table.map(vpn * PAGE_SIZE, frame)
            expected[vpn] = frame
        for vpn, frame in expected.items():
            result = table.translate(vpn * PAGE_SIZE + 7)
            assert result is not None and result.frame_address == frame
        assert table.mapped_pages == len(expected)
