"""Cancel-mid-``run_iter`` determinism, per backend.

Successive halving (``repro.dse``) relies on a precise contract from
every execution backend:

1. results yielded *before* a ``cancel()`` are real, correct, and
   attributed to the right point index — never torn or duplicated;
2. after ``cancel()`` the stream terminates without yielding the
   abandoned tail (no failure placeholders for cancelled points);
3. ``reset()`` re-arms a deliberately cancelled backend, and the next
   run on the same backend produces exactly the same results a fresh
   backend would.

The serial backend additionally guarantees *exactly* deterministic
cancellation (the stream stops at the next point boundary); the
concurrent backends guarantee the weaker — but sufficient — property
that whatever did arrive is correct and the replay after ``reset()`` is
complete and byte-identical.  The service-backend version of this
contract lives with the service fixtures in
``tests/service/test_service.py``.
"""

import threading

from repro.harness import (
    DistributedBackend,
    PointFailure,
    PointResult,
    ProcessPoolBackend,
    SerialBackend,
    SweepPoint,
    run_worker,
)


def square_point(value):
    return PointResult(rows=[{"value": value, "square": value * value}])


def _points(values):
    return [SweepPoint(spec="cancel-det", point_id=f"value={v}",
                       func=square_point, kwargs={"value": v})
            for v in values]


def _start_worker_thread(host, port, jobs=1):
    thread = threading.Thread(target=run_worker, args=(f"{host}:{port}",),
                              kwargs={"retry_seconds": 10.0, "jobs": jobs},
                              daemon=True)
    thread.start()
    return thread


def _assert_correct(pairs, values):
    """Every yielded pair is a real result for the right point, once."""
    seen = set()
    for index, result in pairs:
        assert 0 <= index < len(values)
        assert index not in seen
        seen.add(index)
        assert isinstance(result, PointResult)
        assert result.rows == [{"value": values[index],
                                "square": values[index] ** 2}]
    return seen


class TestSerialCancelDeterminism:
    def test_cancel_after_n_is_exactly_deterministic(self):
        values = [3, 1, 4, 1, 5]
        for cutoff in range(1, len(values)):
            backend = SerialBackend()
            iterator = backend.run_iter(_points(values))
            pairs = []
            for _ in range(cutoff):
                pairs.append(next(iterator))
            backend.cancel()
            assert list(iterator) == []
            # exactly the first `cutoff` points, in declaration order
            assert _assert_correct(pairs, values) == set(range(cutoff))

    def test_reset_rearms_for_an_identical_full_run(self):
        values = [2, 7, 1]
        backend = SerialBackend()
        iterator = backend.run_iter(_points(values))
        next(iterator)
        backend.cancel()
        assert list(iterator) == []
        assert backend.cancelled
        backend.reset()
        assert not backend.cancelled
        replay = list(backend.run_iter(_points(values)))
        fresh = list(SerialBackend().run_iter(_points(values)))
        assert replay == fresh
        assert _assert_correct(replay, values) == set(range(len(values)))

    def test_cancel_without_reset_poisons_the_next_run(self):
        backend = SerialBackend()
        backend.cancel()
        assert list(backend.run_iter(_points([1, 2]))) == []


class TestProcessCancelDeterminism:
    def test_pre_cancel_results_are_correct_and_unique(self):
        values = list(range(8))
        backend = ProcessPoolBackend(jobs=2)
        iterator = backend.run_iter(_points(values))
        pairs = [next(iterator)]
        backend.cancel()
        pairs.extend(iterator)
        assert len(pairs) < len(values)  # the tail was abandoned...
        _assert_correct(pairs, values)   # ...and the head is untorn

    def test_reset_rearms_for_an_identical_full_run(self):
        values = [5, 6, 7, 8]
        backend = ProcessPoolBackend(jobs=2)
        iterator = backend.run_iter(_points(values))
        next(iterator)
        backend.cancel()
        list(iterator)
        backend.reset()
        # run() reassembles in declaration order: byte-identical to serial
        replay = backend.run(_points(values))
        assert [r.rows for r in replay] == \
            [r.rows for r in SerialBackend().run(_points(values))]


class TestDistributedCancelDeterminism:
    def test_pre_cancel_results_are_correct_and_reset_replays(self):
        values = list(range(6))
        backend = DistributedBackend(bind="127.0.0.1:0", min_workers=1,
                                     start_timeout=20.0)
        host, port = backend.listen()
        _start_worker_thread(host, port, jobs=1)
        with backend:
            iterator = backend.run_iter(_points(values))
            pairs = [next(iterator)]
            backend.cancel()
            pairs.extend(iterator)
            # whatever arrived before the cancel is real and untorn; the
            # abandoned tail is absent, not reported as failures
            assert len(pairs) < len(values)
            _assert_correct(pairs, values)
            assert not any(isinstance(result, PointFailure)
                           for _, result in pairs)
            backend.reset()
            replay = backend.run(_points(values))
            assert [r.rows for r in replay] == \
                [r.rows for r in SerialBackend().run(_points(values))]
