"""Tests for the pluggable execution backends (serial / process / distributed).

The distributed tests run real TCP traffic, but keep everything on
localhost: the coordinator binds an ephemeral port and the workers are
threads running the same ``run_worker`` loop the ``repro worker``
subcommand runs.
"""

import socket
import threading
import time

import pytest

from repro.harness import (
    DistributedBackend,
    HarnessError,
    PointFailure,
    PointResult,
    ProcessPoolBackend,
    SerialBackend,
    SweepPoint,
    SweepRunner,
    create_backend,
    get_spec,
    run_worker,
)
from repro.harness.backends import ExecutionBackend, _RunState
from repro.harness.wire import (
    PROTOCOL_VERSION,
    decode_point,
    encode_point,
    hello_slots,
    parse_address,
    recv_frame,
    send_frame,
)
from repro.harness.worker import default_worker_jobs, execute_task


# --------------------------------------------------------------------------- #
# Module-level point functions (picklable across process boundaries)
# --------------------------------------------------------------------------- #
def square_point(value):
    return PointResult(rows=[{"value": value, "square": value * value}],
                       stats={"points.computed": 1})


def failing_point(value):
    raise RuntimeError(f"boom at {value}")


def tuple_row_point(value):
    # Tuples don't survive a JSON round trip (they come back as lists), so
    # this guards the pickle transport of results on the distributed backend.
    return PointResult(rows=[{"value": value, "pair": (value, value + 1)}])


def hard_exit_point(value):
    import os
    os._exit(17)  # simulates a pool child killed outright (OOM, segfault)


def _points(values, func=square_point):
    return [SweepPoint(spec="test", point_id=f"value={v}", func=func,
                       kwargs={"value": v}) for v in values]


def _start_worker_thread(host, port, jobs=1):
    thread = threading.Thread(target=run_worker, args=(f"{host}:{port}",),
                              kwargs={"retry_seconds": 10.0, "jobs": jobs},
                              daemon=True)
    thread.start()
    return thread


def _flaky_worker(host, port):
    """A worker that dies after receiving (and dropping) one point."""
    sock = socket.create_connection((host, port), timeout=10.0)
    send_frame(sock, {"type": "hello", "pid": 0})
    recv_frame(sock)  # accept one point frame ...
    sock.close()      # ... and vanish without replying


# --------------------------------------------------------------------------- #
# Wire protocol
# --------------------------------------------------------------------------- #
class TestWire:
    def test_frame_round_trip(self):
        left, right = socket.socketpair()
        try:
            send_frame(left, {"type": "hello", "pid": 1})
            send_frame(left, {"type": "shutdown"})
            assert recv_frame(right) == {"type": "hello", "pid": 1}
            assert recv_frame(right) == {"type": "shutdown"}
            left.close()
            assert recv_frame(right) is None  # clean EOF between frames
        finally:
            right.close()

    def test_point_survives_encoding(self):
        (point,) = _points([3])
        decoded = decode_point(encode_point(point))
        assert decoded == point
        assert decoded.func is square_point

    def test_decode_rejects_non_points(self):
        import base64
        import pickle
        blob = base64.b64encode(pickle.dumps("not a point")).decode("ascii")
        with pytest.raises(ConnectionError):
            decode_point(blob)

    def test_parse_address(self):
        assert parse_address("127.0.0.1:7421") == ("127.0.0.1", 7421)
        with pytest.raises(ValueError):
            parse_address("7421")

    def test_hello_slots_parsing(self):
        assert hello_slots({"type": "hello", "slots": 4}) == 4
        # A v1 hello (no slots) and malformed adverts degrade to one slot.
        assert hello_slots({"type": "hello"}) == 1
        assert hello_slots({"slots": 0}) == 1
        assert hello_slots({"slots": -3}) == 1
        assert hello_slots({"slots": "8"}) == 1
        assert hello_slots({"slots": True}) == 1


# --------------------------------------------------------------------------- #
# Serial and process backends
# --------------------------------------------------------------------------- #
class TestLocalBackends:
    def test_serial_preserves_order(self):
        results = SerialBackend().run(_points([4, 2, 3]))
        assert [r.rows[0]["value"] for r in results] == [4, 2, 3]

    def test_process_matches_serial(self):
        points = _points(list(range(8)))
        serial = SerialBackend().run(points)
        pooled = ProcessPoolBackend(jobs=4).run(points)
        assert [r.rows for r in pooled] == [r.rows for r in serial]

    def test_process_single_point_runs_inline(self):
        results = ProcessPoolBackend(jobs=4).run(_points([5]))
        assert results[0].rows == [{"value": 5, "square": 25}]

    def test_failures_become_point_failures(self):
        for backend in (SerialBackend(), ProcessPoolBackend(jobs=2)):
            results = backend.run(_points([1, 2], func=failing_point))
            assert all(isinstance(r, PointFailure) for r in results)
            assert "boom at 1" in results[0].error

    def test_runner_raises_harness_error_naming_failed_point(self):
        with pytest.raises(HarnessError, match=r"test:value=1 failed"):
            SweepRunner().run_points(_points([1], func=failing_point))

    def test_runner_rejects_malformed_backend_results(self):
        class ShortBackend(ExecutionBackend):
            name = "short"

            def run(self, points):
                return []

        class NoneBackend(ExecutionBackend):
            name = "none"

            def run(self, points):
                return [None] * len(points)

        with pytest.raises(HarnessError, match="0 results for 1 points"):
            SweepRunner(backend=ShortBackend()).run_points(_points([1]))
        with pytest.raises(HarnessError, match="expected PointResult"):
            SweepRunner(backend=NoneBackend()).run_points(_points([1]))

    def test_partial_failure_still_caches_completed_points(self, tmp_path):
        class HalfBackend(ExecutionBackend):
            name = "half"

            def run(self, points):
                done = SerialBackend().run(points)
                done[0] = PointFailure(spec=points[0].spec,
                                       point_id=points[0].point_id,
                                       error="synthetic loss")
                return done

        cache = str(tmp_path / "cache")
        with pytest.raises(HarnessError, match="synthetic loss"):
            SweepRunner(cache_dir=cache,
                        backend=HalfBackend()).run_points(_points([1, 2, 3]))
        # The two completed points were cached before the raise, so the
        # retry on a healthy backend only recomputes the failed one.
        outcome = SweepRunner(cache_dir=cache).run_points(_points([1, 2, 3]))
        assert outcome.points_from_cache == 2

    def test_create_backend(self):
        assert isinstance(create_backend("serial"), SerialBackend)
        assert isinstance(create_backend("process", jobs=3), ProcessPoolBackend)
        assert isinstance(create_backend("distributed", bind="127.0.0.1:0"),
                          DistributedBackend)
        with pytest.raises(HarnessError, match="unknown backend"):
            create_backend("carrier-pigeon")

    def test_create_backend_rejects_bad_jobs_like_constructors_do(self):
        # The factory must not silently clamp what ProcessPoolBackend's
        # constructor rejects: both entry points raise the same ValueError.
        for name in ("serial", "process", "distributed"):
            with pytest.raises(ValueError, match="jobs must be >= 1"):
                create_backend(name, jobs=0)
        with pytest.raises(ValueError, match="jobs must be >= 1"):
            ProcessPoolBackend(jobs=0)


# --------------------------------------------------------------------------- #
# The streaming backend API: run_iter + cancel
# --------------------------------------------------------------------------- #
class TestRunIterAndCancel:
    def test_serial_run_iter_streams_in_order(self):
        pairs = list(SerialBackend().run_iter(_points([4, 2, 3])))
        assert [index for index, _ in pairs] == [0, 1, 2]
        assert [r.rows[0]["value"] for _, r in pairs] == [4, 2, 3]

    def test_process_run_iter_yields_every_index_once(self):
        points = _points(list(range(8)))
        pairs = list(ProcessPoolBackend(jobs=4).run_iter(points))
        assert sorted(index for index, _ in pairs) == list(range(8))
        for index, result in pairs:
            assert result.rows[0]["square"] == index * index

    def test_legacy_run_only_backend_still_streams(self):
        class LegacyBackend(ExecutionBackend):
            name = "legacy"

            def run(self, points):
                return SerialBackend().run(points)

        pairs = list(LegacyBackend().run_iter(_points([1, 2])))
        assert [index for index, _ in pairs] == [0, 1]
        # ... and the runner consumes it through the same streaming path
        outcome = SweepRunner(backend=LegacyBackend()).run_points(_points([3]))
        assert outcome.rows == [{"value": 3, "square": 9}]

    def test_iter_only_backend_gets_run_shim_in_declaration_order(self):
        class IterBackend(ExecutionBackend):
            name = "iter-only"

            def run_iter(self, points):
                # completion order reversed on purpose
                for index in reversed(range(len(points))):
                    yield index, square_point(points[index].kwargs["value"])

        results = IterBackend().run(_points([5, 6]))
        assert [r.rows[0]["value"] for r in results] == [5, 6]

    def test_run_shim_marks_unyielded_points_as_cancelled(self):
        class PartialBackend(ExecutionBackend):
            name = "partial"

            def run_iter(self, points):
                yield 0, square_point(points[0].kwargs["value"])

        results = PartialBackend().run(_points([1, 2]))
        assert isinstance(results[0], PointResult)
        assert isinstance(results[1], PointFailure)
        assert "cancelled" in results[1].error

    def test_neither_hook_implemented_is_an_error(self):
        class EmptyBackend(ExecutionBackend):
            name = "empty"

        with pytest.raises(NotImplementedError, match="neither"):
            list(EmptyBackend().run_iter(_points([1])))

    def test_serial_cancel_stops_at_the_next_point_boundary(self):
        backend = SerialBackend()
        iterator = backend.run_iter(_points([1, 2, 3]))
        assert next(iterator)[0] == 0
        backend.cancel()
        assert backend.cancelled
        assert list(iterator) == []

    def test_process_cancel_stops_the_stream(self):
        backend = ProcessPoolBackend(jobs=2)
        iterator = backend.run_iter(_points(list(range(6))))
        next(iterator)
        backend.cancel()
        assert len(list(iterator)) < 5  # the tail was abandoned

    def test_runner_reports_cancelled_sweeps_and_keeps_cache(self, tmp_path):
        class CancelAfterOne(ExecutionBackend):
            name = "cancel-after-one"

            def run_iter(self, points):
                yield 0, square_point(points[0].kwargs["value"])
                self.cancel()

        cache = str(tmp_path / "cache")
        backend = CancelAfterOne()
        with pytest.raises(HarnessError, match="cancelled after 1 of 3"):
            SweepRunner(cache_dir=cache,
                        backend=backend).run_points(_points([1, 2, 3]))
        # the completed point was cached before the cancel surfaced
        outcome = SweepRunner(cache_dir=cache).run_points(_points([1]))
        assert outcome.points_from_cache == 1

    def test_distributed_cancel_abandons_in_flight_points(self):
        backend = DistributedBackend(bind="127.0.0.1:0", min_workers=1,
                                     start_timeout=10.0)
        host, port = backend.listen()
        _start_worker_thread(host, port)
        with backend:
            iterator = backend.run_iter(_points(list(range(4))))
            assert next(iterator) is not None
            backend.cancel()
            leftovers = list(iterator)
        # nothing after the cancel is a real result: the distributed
        # stream only reports already-received completions, never blocks
        # on the abandoned tail
        assert all(isinstance(result, (PointResult, PointFailure))
                   for _, result in leftovers)
        assert len(leftovers) < 4


# --------------------------------------------------------------------------- #
# Distributed backend
# --------------------------------------------------------------------------- #
class TestDistributedBackend:
    def test_two_workers_match_serial(self):
        points = _points(list(range(6)))
        backend = DistributedBackend(bind="127.0.0.1:0", min_workers=2,
                                     start_timeout=20.0)
        host, port = backend.listen()
        threads = [_start_worker_thread(host, port) for _ in range(2)]
        with backend:
            results = backend.run(points)
        for thread in threads:
            thread.join(timeout=10)
        assert [r.rows for r in results] == \
            [r.rows for r in SerialBackend().run(points)]

    def test_worker_loss_retries_on_survivor(self):
        points = _points(list(range(6)))
        backend = DistributedBackend(bind="127.0.0.1:0", min_workers=2,
                                     start_timeout=20.0)
        host, port = backend.listen()
        flaky = threading.Thread(target=_flaky_worker, args=(host, port),
                                 daemon=True)
        flaky.start()
        survivor = _start_worker_thread(host, port)
        with backend:
            results = backend.run(points)
        flaky.join(timeout=10)
        survivor.join(timeout=10)
        assert [r.rows[0]["square"] for r in results] == \
            [v * v for v in range(6)]

    def test_all_workers_lost_raises_with_point_name(self):
        backend = DistributedBackend(bind="127.0.0.1:0", min_workers=1,
                                     start_timeout=20.0, max_retries=2)
        host, port = backend.listen()
        flaky = threading.Thread(target=_flaky_worker, args=(host, port),
                                 daemon=True)
        flaky.start()
        with backend, pytest.raises(HarnessError, match=r"test:value="):
            SweepRunner(backend=backend).run_points(_points([1, 2]))
        flaky.join(timeout=10)

    def test_point_exception_reported_not_retried(self):
        backend = DistributedBackend(bind="127.0.0.1:0", min_workers=1,
                                     start_timeout=20.0)
        host, port = backend.listen()
        thread = _start_worker_thread(host, port)
        with backend:
            results = backend.run(_points([7], func=failing_point))
        thread.join(timeout=10)
        assert isinstance(results[0], PointFailure)
        assert "boom at 7" in results[0].error

    def test_no_workers_times_out(self):
        backend = DistributedBackend(bind="127.0.0.1:0", min_workers=1,
                                     start_timeout=0.2)
        with backend, pytest.raises(HarnessError, match="workers connected"):
            backend.run(_points([1]))

    def test_tuple_rows_survive_transport(self):
        points = _points([1, 2], func=tuple_row_point)
        backend = DistributedBackend(bind="127.0.0.1:0", min_workers=1,
                                     start_timeout=20.0)
        host, port = backend.listen()
        thread = _start_worker_thread(host, port)
        with backend:
            results = backend.run(points)
        thread.join(timeout=10)
        assert [r.rows for r in results] == \
            [r.rows for r in SerialBackend().run(points)]
        assert results[0].rows[0]["pair"] == (1, 2)

    def test_unpicklable_point_fails_without_hanging(self):
        bad = SweepPoint(spec="test", point_id="bad", func=square_point,
                         kwargs={"value": lambda: 1})  # lambdas don't pickle
        backend = DistributedBackend(bind="127.0.0.1:0", min_workers=1,
                                     start_timeout=20.0)
        host, port = backend.listen()
        thread = _start_worker_thread(host, port)
        with backend:
            results = backend.run([bad] + _points([5]))
        thread.join(timeout=10)
        assert isinstance(results[0], PointFailure)
        assert results[1].rows == [{"value": 5, "square": 25}]

    def test_replacement_worker_admitted_mid_run(self):
        """A worker that connects while a run is in flight gets dispatched,
        and can absorb the points of a worker that later dies."""
        got_point = threading.Event()
        release = threading.Event()

        def holding_flaky(host, port):
            sock = socket.create_connection((host, port), timeout=10.0)
            send_frame(sock, {"type": "hello", "pid": 0})
            recv_frame(sock)            # take one point and sit on it
            got_point.set()
            release.wait(timeout=30)
            sock.close()                # die without ever replying

        backend = DistributedBackend(bind="127.0.0.1:0", min_workers=1,
                                     start_timeout=20.0)
        host, port = backend.listen()
        flaky = threading.Thread(target=holding_flaky, args=(host, port),
                                 daemon=True)
        flaky.start()

        points = _points(list(range(4)))
        box = {}
        coordinator = threading.Thread(
            target=lambda: box.update(results=backend.run(points)),
            daemon=True)
        coordinator.start()
        assert got_point.wait(timeout=20)

        replacement = _start_worker_thread(host, port)
        # Wait until the replacement, admitted mid-run, has drained every
        # point except the one the flaky worker is sitting on.
        deadline = time.monotonic() + 20
        while time.monotonic() < deadline:
            state = backend._run_state
            if state is not None and state.outstanding == 1:
                break
            time.sleep(0.01)
        else:
            pytest.fail("replacement worker was never dispatched mid-run")

        release.set()  # flaky dies; its point is requeued to the replacement
        coordinator.join(timeout=30)
        backend.close()
        flaky.join(timeout=10)
        replacement.join(timeout=10)
        assert [r.rows[0]["square"] for r in box["results"]] == \
            [v * v for v in range(4)]

    def test_close_reaps_the_accept_thread(self):
        """Regression: close() must wake and join the accept thread, not
        just close the listener — a close()d fd does not interrupt a
        blocked accept(), and a thread left parked on the stale fd number
        steals connections from whichever backend the OS hands that fd to
        next (the root cause of cross-test connection theft)."""
        backend = DistributedBackend(bind="127.0.0.1:0")
        backend.listen()
        thread = backend._accept_thread
        assert thread is not None and thread.is_alive()
        backend.close()
        thread.join(timeout=5)
        assert not thread.is_alive()

    def test_workers_survive_across_runs(self):
        backend = DistributedBackend(bind="127.0.0.1:0", min_workers=2,
                                     start_timeout=20.0)
        host, port = backend.listen()
        threads = [_start_worker_thread(host, port) for _ in range(2)]
        with backend:
            first = backend.run(_points([1, 2, 3]))
            second = backend.run(_points([4, 5, 6]))
        for thread in threads:
            thread.join(timeout=10)
        assert [r.rows[0]["value"] for r in first] == [1, 2, 3]
        assert [r.rows[0]["value"] for r in second] == [4, 5, 6]


# --------------------------------------------------------------------------- #
# Multi-slot workers and credit-based pipelining (protocol v2)
# --------------------------------------------------------------------------- #
def _connect_fake_worker(host, port, slots=None):
    """Open a coordinator connection the test drives by hand."""
    sock = socket.create_connection((host, port), timeout=10.0)
    hello = {"type": "hello", "pid": 0}
    if slots is not None:
        hello["proto"] = PROTOCOL_VERSION
        hello["slots"] = slots
    send_frame(sock, hello)
    sock.settimeout(10.0)
    return sock


def _reply(sock, frame):
    """Execute a received ``point`` frame and send back its result."""
    send_frame(sock, execute_task(frame["task_id"], str(frame["point"])))


def _run_in_thread(backend, points):
    """Drive ``backend.run`` from a thread; returns (thread, result box)."""
    box = {}
    thread = threading.Thread(
        target=lambda: box.update(results=backend.run(points)), daemon=True)
    thread.start()
    return thread, box


class TestMultiSlotProtocol:
    def test_worker_hello_advertises_slots(self):
        listener = socket.create_server(("127.0.0.1", 0))
        host, port = listener.getsockname()
        thread = threading.Thread(target=run_worker, args=(f"{host}:{port}",),
                                  kwargs={"retry_seconds": 10.0, "jobs": 2},
                                  daemon=True)
        thread.start()
        try:
            conn, _ = listener.accept()
            conn.settimeout(10.0)
            hello = recv_frame(conn)
            assert hello["type"] == "hello"
            assert hello["proto"] == PROTOCOL_VERSION
            assert hello["slots"] == 2
            send_frame(conn, {"type": "shutdown"})
            thread.join(timeout=15)
            assert not thread.is_alive()
            conn.close()
        finally:
            listener.close()

    def test_payload_less_point_frame_gets_error_reply_worker_stays_up(self):
        # A point frame missing its payload must come back ok:false like
        # any other per-point failure; only shutdown or a closed
        # connection ends a worker.
        listener = socket.create_server(("127.0.0.1", 0))
        host, port = listener.getsockname()
        thread = threading.Thread(target=run_worker, args=(f"{host}:{port}",),
                                  kwargs={"retry_seconds": 10.0, "jobs": 1},
                                  daemon=True)
        thread.start()
        try:
            conn, _ = listener.accept()
            conn.settimeout(10.0)
            recv_frame(conn)  # hello
            send_frame(conn, {"type": "point", "task_id": 9})
            reply = recv_frame(conn)
            assert reply["task_id"] == 9
            assert reply["ok"] is False
            (point,) = _points([6])
            send_frame(conn, {"type": "point", "task_id": 10,
                              "point": encode_point(point)})
            reply = recv_frame(conn)
            assert reply["task_id"] == 10
            assert reply["ok"] is True
            send_frame(conn, {"type": "shutdown"})
            thread.join(timeout=10)
            assert not thread.is_alive()
            conn.close()
        finally:
            listener.close()

    def test_out_of_order_replies_merge_in_declaration_order(self):
        points = _points([3, 1, 2])
        backend = DistributedBackend(bind="127.0.0.1:0", min_workers=1,
                                     start_timeout=20.0)
        host, port = backend.listen()
        runner, box = _run_in_thread(backend, points)
        sock = _connect_fake_worker(host, port, slots=2)
        try:
            first = recv_frame(sock)
            second = recv_frame(sock)
            _reply(sock, second)          # answer the later point first
            _reply(sock, first)
            _reply(sock, recv_frame(sock))
            runner.join(timeout=20)
            assert not runner.is_alive()
        finally:
            backend.close()
            sock.close()
        assert [r.rows[0]["value"] for r in box["results"]] == [3, 1, 2]

    def test_credit_exhaustion_applies_backpressure(self):
        points = _points(list(range(5)))
        backend = DistributedBackend(bind="127.0.0.1:0", min_workers=1,
                                     start_timeout=20.0)
        host, port = backend.listen()
        runner, box = _run_in_thread(backend, points)
        sock = _connect_fake_worker(host, port, slots=2)
        try:
            outstanding = [recv_frame(sock), recv_frame(sock)]
            # Both credits are spent: the coordinator must not send a third
            # point until a result hands one back.
            sock.settimeout(0.3)
            with pytest.raises(socket.timeout):
                recv_frame(sock)
            sock.settimeout(10.0)
            replied = 0
            while replied < len(points):
                _reply(sock, outstanding.pop(0))
                replied += 1
                if replied <= len(points) - 2:
                    outstanding.append(recv_frame(sock))  # freed credit
            runner.join(timeout=20)
            assert not runner.is_alive()
        finally:
            backend.close()
            sock.close()
        assert [r.rows[0]["square"] for r in box["results"]] == \
            [v * v for v in range(5)]

    def test_worker_death_with_multiple_inflight_retried_on_survivor(self):
        points = _points(list(range(6)))
        backend = DistributedBackend(bind="127.0.0.1:0", min_workers=1,
                                     start_timeout=20.0)
        host, port = backend.listen()
        runner, box = _run_in_thread(backend, points)
        sock = _connect_fake_worker(host, port, slots=3)
        try:
            # Take three points and sit on them while a healthy worker joins
            # mid-run and drains the other three.
            frames = [recv_frame(sock) for _ in range(3)]
            assert len({f["task_id"] for f in frames}) == 3
            survivor = _start_worker_thread(host, port)
            deadline = time.monotonic() + 20
            while time.monotonic() < deadline:
                state = backend._run_state
                if state is not None and state.outstanding == 3:
                    break
                time.sleep(0.01)
            else:
                pytest.fail("survivor never drained the free points")
        finally:
            sock.close()  # die with all three points still in flight
        runner.join(timeout=30)
        assert not runner.is_alive()
        backend.close()
        survivor.join(timeout=10)
        assert [r.rows[0]["square"] for r in box["results"]] == \
            [v * v for v in range(6)]

    def test_mixed_slot_workers_match_serial(self):
        points = _points(list(range(10)))
        backend = DistributedBackend(bind="127.0.0.1:0", min_workers=2,
                                     start_timeout=20.0)
        host, port = backend.listen()
        threads = [_start_worker_thread(host, port, jobs=1),
                   _start_worker_thread(host, port, jobs=4)]
        with backend:
            results = backend.run(points)
        for thread in threads:
            thread.join(timeout=15)
        assert [r.rows for r in results] == \
            [r.rows for r in SerialBackend().run(points)]

    def test_pooled_worker_executes_and_reports_failures(self):
        backend = DistributedBackend(bind="127.0.0.1:0", min_workers=1,
                                     start_timeout=20.0)
        host, port = backend.listen()
        thread = _start_worker_thread(host, port, jobs=2)
        with backend:
            results = backend.run(_points([1, 2, 3]) +
                                  _points([4], func=failing_point))
        thread.join(timeout=15)
        assert [r.rows[0]["square"] for r in results[:3]] == [1, 4, 9]
        assert isinstance(results[3], PointFailure)
        assert "boom at 4" in results[3].error

    def test_pool_child_killed_hard_does_not_hang_the_sweep(self):
        # A point whose pool child dies outright never produces a result
        # frame; the worker must drop the connection (so the coordinator's
        # requeue/orphan handling runs) rather than strand the task_id's
        # credit and hang the run forever.
        backend = DistributedBackend(bind="127.0.0.1:0", min_workers=1,
                                     start_timeout=20.0, max_retries=1)
        host, port = backend.listen()

        def quiet_worker():
            try:
                run_worker(f"{host}:{port}", retry_seconds=10.0, jobs=2)
            except (ConnectionError, OSError):
                pass  # the deliberate broken-pool abort

        thread = threading.Thread(target=quiet_worker, daemon=True)
        thread.start()
        with backend:
            results = backend.run(_points([1], func=hard_exit_point))
        thread.join(timeout=15)
        assert not thread.is_alive()
        assert isinstance(results[0], PointFailure)

    def test_protocol_v1_worker_interops(self):
        # A v1 worker (hello without slots, in-order replies) still serves
        # a v2 coordinator as a one-slot executor.
        points = _points([5, 6])
        backend = DistributedBackend(bind="127.0.0.1:0", min_workers=1,
                                     start_timeout=20.0)
        host, port = backend.listen()
        runner, box = _run_in_thread(backend, points)
        sock = _connect_fake_worker(host, port, slots=None)
        try:
            for _ in points:
                _reply(sock, recv_frame(sock))
            runner.join(timeout=20)
            assert not runner.is_alive()
        finally:
            backend.close()
            sock.close()
        assert [r.rows[0]["value"] for r in box["results"]] == [5, 6]


class TestWorkerJobs:
    def test_default_worker_jobs_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKER_JOBS", "5")
        assert default_worker_jobs() == 5
        monkeypatch.delenv("REPRO_WORKER_JOBS")
        assert default_worker_jobs() >= 1

    def test_default_worker_jobs_rejects_garbage(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKER_JOBS", "0")
        with pytest.raises(ValueError, match="REPRO_WORKER_JOBS"):
            default_worker_jobs()
        monkeypatch.setenv("REPRO_WORKER_JOBS", "many")
        with pytest.raises(ValueError, match="REPRO_WORKER_JOBS"):
            default_worker_jobs()

    def test_run_worker_rejects_bad_jobs(self):
        with pytest.raises(ValueError, match="jobs must be >= 1"):
            run_worker("127.0.0.1:1", jobs=0)


class TestRunStateAdmission:
    def test_instant_worker_death_does_not_orphan_admitted_batch(self):
        """Regression for the test_worker_loss_retries_on_survivor flake:
        the whole initial worker batch is admitted atomically, so a worker
        dying before its siblings' serve threads spawn leaves
        active_workers > 0 and the run keeps going on the survivor instead
        of failing every point as orphaned."""
        state = _RunState(_points([1, 2]), max_retries=3)
        state.admit_batch(2)
        state.requeue(0)        # the flaky worker dies holding point 0 ...
        state.worker_exited()   # ... before the survivor's threads started
        assert not state.done.is_set()
        assert state.results == [None, None]
        assert state.active_workers == 1


# --------------------------------------------------------------------------- #
# Backend equivalence on a real experiment
# --------------------------------------------------------------------------- #
class TestBackendEquivalence:
    def test_table2_byte_identical_across_backends(self):
        spec = get_spec("table2")
        rendered = {}
        rendered["serial"] = spec.render(
            SweepRunner(backend=SerialBackend()).run("table2").result)
        rendered["process"] = spec.render(
            SweepRunner(backend=ProcessPoolBackend(jobs=2)).run("table2").result)

        # Two workers with two slots each: four points in flight at once,
        # replies racing out of order — the rendered bytes must not move.
        backend = DistributedBackend(bind="127.0.0.1:0", min_workers=2,
                                     start_timeout=20.0)
        host, port = backend.listen()
        threads = [_start_worker_thread(host, port, jobs=2) for _ in range(2)]
        with backend:
            rendered["distributed"] = spec.render(
                SweepRunner(backend=backend).run("table2").result)
        for thread in threads:
            thread.join(timeout=10)

        assert rendered["process"] == rendered["serial"]
        assert rendered["distributed"] == rendered["serial"]
