"""Tests for the pluggable execution backends (serial / process / distributed).

The distributed tests run real TCP traffic, but keep everything on
localhost: the coordinator binds an ephemeral port and the workers are
threads running the same ``run_worker`` loop the ``repro worker``
subcommand runs.
"""

import socket
import threading
import time

import pytest

from repro.harness import (
    DistributedBackend,
    HarnessError,
    PointFailure,
    PointResult,
    ProcessPoolBackend,
    SerialBackend,
    SweepPoint,
    SweepRunner,
    create_backend,
    get_spec,
    run_worker,
)
from repro.harness.backends import ExecutionBackend
from repro.harness.wire import (
    decode_point,
    encode_point,
    parse_address,
    recv_frame,
    send_frame,
)


# --------------------------------------------------------------------------- #
# Module-level point functions (picklable across process boundaries)
# --------------------------------------------------------------------------- #
def square_point(value):
    return PointResult(rows=[{"value": value, "square": value * value}],
                       stats={"points.computed": 1})


def failing_point(value):
    raise RuntimeError(f"boom at {value}")


def tuple_row_point(value):
    # Tuples don't survive a JSON round trip (they come back as lists), so
    # this guards the pickle transport of results on the distributed backend.
    return PointResult(rows=[{"value": value, "pair": (value, value + 1)}])


def _points(values, func=square_point):
    return [SweepPoint(spec="test", point_id=f"value={v}", func=func,
                       kwargs={"value": v}) for v in values]


def _start_worker_thread(host, port):
    thread = threading.Thread(target=run_worker, args=(f"{host}:{port}",),
                              kwargs={"retry_seconds": 10.0}, daemon=True)
    thread.start()
    return thread


def _flaky_worker(host, port):
    """A worker that dies after receiving (and dropping) one point."""
    sock = socket.create_connection((host, port), timeout=10.0)
    send_frame(sock, {"type": "hello", "pid": 0})
    recv_frame(sock)  # accept one point frame ...
    sock.close()      # ... and vanish without replying


# --------------------------------------------------------------------------- #
# Wire protocol
# --------------------------------------------------------------------------- #
class TestWire:
    def test_frame_round_trip(self):
        left, right = socket.socketpair()
        try:
            send_frame(left, {"type": "hello", "pid": 1})
            send_frame(left, {"type": "shutdown"})
            assert recv_frame(right) == {"type": "hello", "pid": 1}
            assert recv_frame(right) == {"type": "shutdown"}
            left.close()
            assert recv_frame(right) is None  # clean EOF between frames
        finally:
            right.close()

    def test_point_survives_encoding(self):
        (point,) = _points([3])
        decoded = decode_point(encode_point(point))
        assert decoded == point
        assert decoded.func is square_point

    def test_decode_rejects_non_points(self):
        import base64
        import pickle
        blob = base64.b64encode(pickle.dumps("not a point")).decode("ascii")
        with pytest.raises(ConnectionError):
            decode_point(blob)

    def test_parse_address(self):
        assert parse_address("127.0.0.1:7421") == ("127.0.0.1", 7421)
        with pytest.raises(ValueError):
            parse_address("7421")


# --------------------------------------------------------------------------- #
# Serial and process backends
# --------------------------------------------------------------------------- #
class TestLocalBackends:
    def test_serial_preserves_order(self):
        results = SerialBackend().run(_points([4, 2, 3]))
        assert [r.rows[0]["value"] for r in results] == [4, 2, 3]

    def test_process_matches_serial(self):
        points = _points(list(range(8)))
        serial = SerialBackend().run(points)
        pooled = ProcessPoolBackend(jobs=4).run(points)
        assert [r.rows for r in pooled] == [r.rows for r in serial]

    def test_process_single_point_runs_inline(self):
        results = ProcessPoolBackend(jobs=4).run(_points([5]))
        assert results[0].rows == [{"value": 5, "square": 25}]

    def test_failures_become_point_failures(self):
        for backend in (SerialBackend(), ProcessPoolBackend(jobs=2)):
            results = backend.run(_points([1, 2], func=failing_point))
            assert all(isinstance(r, PointFailure) for r in results)
            assert "boom at 1" in results[0].error

    def test_runner_raises_harness_error_naming_failed_point(self):
        with pytest.raises(HarnessError, match=r"test:value=1 failed"):
            SweepRunner().run_points(_points([1], func=failing_point))

    def test_runner_rejects_malformed_backend_results(self):
        class ShortBackend(ExecutionBackend):
            name = "short"

            def run(self, points):
                return []

        class NoneBackend(ExecutionBackend):
            name = "none"

            def run(self, points):
                return [None] * len(points)

        with pytest.raises(HarnessError, match="0 results for 1 points"):
            SweepRunner(backend=ShortBackend()).run_points(_points([1]))
        with pytest.raises(HarnessError, match="expected PointResult"):
            SweepRunner(backend=NoneBackend()).run_points(_points([1]))

    def test_partial_failure_still_caches_completed_points(self, tmp_path):
        class HalfBackend(ExecutionBackend):
            name = "half"

            def run(self, points):
                done = SerialBackend().run(points)
                done[0] = PointFailure(spec=points[0].spec,
                                       point_id=points[0].point_id,
                                       error="synthetic loss")
                return done

        cache = str(tmp_path / "cache")
        with pytest.raises(HarnessError, match="synthetic loss"):
            SweepRunner(cache_dir=cache,
                        backend=HalfBackend()).run_points(_points([1, 2, 3]))
        # The two completed points were cached before the raise, so the
        # retry on a healthy backend only recomputes the failed one.
        outcome = SweepRunner(cache_dir=cache).run_points(_points([1, 2, 3]))
        assert outcome.points_from_cache == 2

    def test_create_backend(self):
        assert isinstance(create_backend("serial"), SerialBackend)
        assert isinstance(create_backend("process", jobs=3), ProcessPoolBackend)
        assert isinstance(create_backend("distributed", bind="127.0.0.1:0"),
                          DistributedBackend)
        with pytest.raises(HarnessError, match="unknown backend"):
            create_backend("carrier-pigeon")


# --------------------------------------------------------------------------- #
# Distributed backend
# --------------------------------------------------------------------------- #
class TestDistributedBackend:
    def test_two_workers_match_serial(self):
        points = _points(list(range(6)))
        backend = DistributedBackend(bind="127.0.0.1:0", min_workers=2,
                                     start_timeout=20.0)
        host, port = backend.listen()
        threads = [_start_worker_thread(host, port) for _ in range(2)]
        with backend:
            results = backend.run(points)
        for thread in threads:
            thread.join(timeout=10)
        assert [r.rows for r in results] == \
            [r.rows for r in SerialBackend().run(points)]

    def test_worker_loss_retries_on_survivor(self):
        points = _points(list(range(6)))
        backend = DistributedBackend(bind="127.0.0.1:0", min_workers=2,
                                     start_timeout=20.0)
        host, port = backend.listen()
        flaky = threading.Thread(target=_flaky_worker, args=(host, port),
                                 daemon=True)
        flaky.start()
        survivor = _start_worker_thread(host, port)
        with backend:
            results = backend.run(points)
        flaky.join(timeout=10)
        survivor.join(timeout=10)
        assert [r.rows[0]["square"] for r in results] == \
            [v * v for v in range(6)]

    def test_all_workers_lost_raises_with_point_name(self):
        backend = DistributedBackend(bind="127.0.0.1:0", min_workers=1,
                                     start_timeout=20.0, max_retries=2)
        host, port = backend.listen()
        flaky = threading.Thread(target=_flaky_worker, args=(host, port),
                                 daemon=True)
        flaky.start()
        with backend, pytest.raises(HarnessError, match=r"test:value="):
            SweepRunner(backend=backend).run_points(_points([1, 2]))
        flaky.join(timeout=10)

    def test_point_exception_reported_not_retried(self):
        backend = DistributedBackend(bind="127.0.0.1:0", min_workers=1,
                                     start_timeout=20.0)
        host, port = backend.listen()
        thread = _start_worker_thread(host, port)
        with backend:
            results = backend.run(_points([7], func=failing_point))
        thread.join(timeout=10)
        assert isinstance(results[0], PointFailure)
        assert "boom at 7" in results[0].error

    def test_no_workers_times_out(self):
        backend = DistributedBackend(bind="127.0.0.1:0", min_workers=1,
                                     start_timeout=0.2)
        with backend, pytest.raises(HarnessError, match="workers connected"):
            backend.run(_points([1]))

    def test_tuple_rows_survive_transport(self):
        points = _points([1, 2], func=tuple_row_point)
        backend = DistributedBackend(bind="127.0.0.1:0", min_workers=1,
                                     start_timeout=20.0)
        host, port = backend.listen()
        thread = _start_worker_thread(host, port)
        with backend:
            results = backend.run(points)
        thread.join(timeout=10)
        assert [r.rows for r in results] == \
            [r.rows for r in SerialBackend().run(points)]
        assert results[0].rows[0]["pair"] == (1, 2)

    def test_unpicklable_point_fails_without_hanging(self):
        bad = SweepPoint(spec="test", point_id="bad", func=square_point,
                         kwargs={"value": lambda: 1})  # lambdas don't pickle
        backend = DistributedBackend(bind="127.0.0.1:0", min_workers=1,
                                     start_timeout=20.0)
        host, port = backend.listen()
        thread = _start_worker_thread(host, port)
        with backend:
            results = backend.run([bad] + _points([5]))
        thread.join(timeout=10)
        assert isinstance(results[0], PointFailure)
        assert results[1].rows == [{"value": 5, "square": 25}]

    def test_replacement_worker_admitted_mid_run(self):
        """A worker that connects while a run is in flight gets dispatched,
        and can absorb the points of a worker that later dies."""
        got_point = threading.Event()
        release = threading.Event()

        def holding_flaky(host, port):
            sock = socket.create_connection((host, port), timeout=10.0)
            send_frame(sock, {"type": "hello", "pid": 0})
            recv_frame(sock)            # take one point and sit on it
            got_point.set()
            release.wait(timeout=30)
            sock.close()                # die without ever replying

        backend = DistributedBackend(bind="127.0.0.1:0", min_workers=1,
                                     start_timeout=20.0)
        host, port = backend.listen()
        flaky = threading.Thread(target=holding_flaky, args=(host, port),
                                 daemon=True)
        flaky.start()

        points = _points(list(range(4)))
        box = {}
        coordinator = threading.Thread(
            target=lambda: box.update(results=backend.run(points)),
            daemon=True)
        coordinator.start()
        assert got_point.wait(timeout=20)

        replacement = _start_worker_thread(host, port)
        # Wait until the replacement, admitted mid-run, has drained every
        # point except the one the flaky worker is sitting on.
        deadline = time.monotonic() + 20
        while time.monotonic() < deadline:
            state = backend._run_state
            if state is not None and state.outstanding == 1:
                break
            time.sleep(0.01)
        else:
            pytest.fail("replacement worker was never dispatched mid-run")

        release.set()  # flaky dies; its point is requeued to the replacement
        coordinator.join(timeout=30)
        backend.close()
        flaky.join(timeout=10)
        replacement.join(timeout=10)
        assert [r.rows[0]["square"] for r in box["results"]] == \
            [v * v for v in range(4)]

    def test_workers_survive_across_runs(self):
        backend = DistributedBackend(bind="127.0.0.1:0", min_workers=2,
                                     start_timeout=20.0)
        host, port = backend.listen()
        threads = [_start_worker_thread(host, port) for _ in range(2)]
        with backend:
            first = backend.run(_points([1, 2, 3]))
            second = backend.run(_points([4, 5, 6]))
        for thread in threads:
            thread.join(timeout=10)
        assert [r.rows[0]["value"] for r in first] == [1, 2, 3]
        assert [r.rows[0]["value"] for r in second] == [4, 5, 6]


# --------------------------------------------------------------------------- #
# Backend equivalence on a real experiment
# --------------------------------------------------------------------------- #
class TestBackendEquivalence:
    def test_table2_byte_identical_across_backends(self):
        spec = get_spec("table2")
        rendered = {}
        rendered["serial"] = spec.render(
            SweepRunner(backend=SerialBackend()).run("table2").result)
        rendered["process"] = spec.render(
            SweepRunner(backend=ProcessPoolBackend(jobs=2)).run("table2").result)

        backend = DistributedBackend(bind="127.0.0.1:0", min_workers=2,
                                     start_timeout=20.0)
        host, port = backend.listen()
        threads = [_start_worker_thread(host, port) for _ in range(2)]
        with backend:
            rendered["distributed"] = spec.render(
                SweepRunner(backend=backend).run("table2").result)
        for thread in threads:
            thread.join(timeout=10)

        assert rendered["process"] == rendered["serial"]
        assert rendered["distributed"] == rendered["serial"]
