"""Tests for ``repro sweep``, ``repro list --json``, argument validation
and the distributed backend's per-worker throughput stats."""

import json
import threading

import pytest

from repro.api import ResultSet, Scenario
from repro.harness import DistributedBackend, SweepRunner, run_worker
from repro.harness.backends import WorkerRunStats
from repro.harness.cli import main as cli_main

SWEEP_ARGS = ["sweep", "matmul", "--system", "cpu,ccsvm",
              "--grid", "size=8,16", "--set", "mttop.count=4"]


def _start_worker_thread(host, port, jobs=1):
    thread = threading.Thread(target=run_worker, args=(f"{host}:{port}",),
                              kwargs={"retry_seconds": 10.0, "jobs": jobs},
                              daemon=True)
    thread.start()
    return thread


class TestListJson:
    def test_json_enumerates_sweeps_workloads_systems(self, capsys):
        assert cli_main(["list", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        sweeps = {entry["name"]: entry for entry in payload["sweeps"]}
        assert set(sweeps) == {"ablations", "figure5", "figure6", "figure7",
                               "figure8", "figure9", "table2"}
        assert sweeps["figure5"]["points"] == 5
        assert sweeps["figure5"]["points_full"] == 7
        workloads = {entry["name"]: entry for entry in payload["workloads"]}
        assert workloads["matmul"]["systems"] == ["apu", "ccsvm", "cpu"]
        systems = {entry["name"]: entry for entry in payload["systems"]}
        assert systems["ccsvm-small"]["variant"] == "ccsvm"

    def test_plain_listing_shows_point_counts(self, capsys):
        assert cli_main(["list"]) == 0
        out = capsys.readouterr().out
        assert "figure5" in out and "5 points" in out
        assert "matmul" in out  # workloads section


class TestSweepCommand:
    def test_serial_process_and_cache_render_identically(self, capsys,
                                                         tmp_path):
        cache = str(tmp_path / "cache")
        outputs = []
        for extra in (["--no-cache"],
                      ["--no-cache", "--backend", "process", "--workers", "2"],
                      ["--cache-dir", cache],
                      ["--cache-dir", cache]):
            assert cli_main(SWEEP_ARGS + extra) == 0
            captured = capsys.readouterr()
            outputs.append(captured.out)
        # Same bytes on every backend and on the cache-warm re-run.
        assert len(set(outputs)) == 1
        assert "matmul on cpu, ccsvm [mttop.count=4]" in outputs[0]
        # The second cache run was served entirely from disk.
        assert "0 simulated, 4 cached" in captured.err

    def test_distributed_matches_serial(self):
        scenario = Scenario(workload="matmul", systems=("cpu", "ccsvm"),
                            grid={"size": (8, 16)},
                            overrides={"mttop.count": 4})
        serial = SweepRunner().run_points(scenario.points(),
                                          spec_name=scenario.name)
        backend = DistributedBackend(bind="127.0.0.1:0", min_workers=2)
        with backend:
            host, port = backend.listen()
            for _ in range(2):
                _start_worker_thread(host, port)
            runner = SweepRunner(backend=backend)
            distributed = runner.run_points(scenario.points(),
                                            spec_name=scenario.name)
        assert ResultSet.from_outcome(distributed).render() == \
            ResultSet.from_outcome(serial).render()

    def test_sweep_csv_output(self, capsys):
        assert cli_main(["sweep", "matmul", "--system", "cpu", "--grid",
                         "size=6", "--no-cache", "--csv"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("workload,system,size,time_ms")

    def test_sweep_param_and_seed(self, capsys):
        assert cli_main(["sweep", "barnes_hut", "--system", "ccsvm-small",
                         "--grid", "bodies=8", "--param", "timesteps=1",
                         "--seed", "2", "--no-cache"]) == 0
        assert "barnes_hut" in capsys.readouterr().out

    def test_unknown_workload_is_clean_error(self, capsys):
        assert cli_main(["sweep", "quicksort", "--no-cache"]) == 2
        assert "known workloads" in capsys.readouterr().err

    def test_unknown_system_is_clean_error(self, capsys):
        assert cli_main(["sweep", "matmul", "--system", "gpu9000",
                         "--no-cache"]) == 2
        assert "known systems" in capsys.readouterr().err

    def test_inapplicable_override_is_clean_error(self, capsys):
        assert cli_main(["sweep", "matmul", "--system", "cpu", "--set",
                         "mttop.count=4", "--no-cache"]) == 2
        assert "applies to none" in capsys.readouterr().err

    def test_bad_override_path_is_clean_error(self, capsys):
        assert cli_main(["sweep", "matmul", "--system", "ccsvm", "--set",
                         "mttop.bogus=4", "--no-cache"]) == 2
        assert "available fields" in capsys.readouterr().err

    def test_malformed_grid_is_clean_error(self, capsys):
        assert cli_main(["sweep", "matmul", "--grid", "size", "--no-cache"]) == 2
        assert "KEY=VALUE" in capsys.readouterr().err


class TestArgumentValidation:
    """--jobs/--workers < 1 fail at parse time, before any backend exists."""

    @pytest.mark.parametrize("argv", [
        ["run", "table2", "--no-cache", "--jobs", "0"],
        ["run", "table2", "--no-cache", "--workers", "-3"],
        ["run", "table2", "--no-cache", "--backend", "serial",
         "--workers", "0"],
        ["sweep", "matmul", "--no-cache", "--jobs", "0"],
        ["sweep", "matmul", "--no-cache", "--backend", "serial",
         "--workers", "0"],
        ["worker", "--connect", "127.0.0.1:1", "--jobs", "0"],
    ])
    def test_nonpositive_counts_rejected_cleanly(self, argv, capsys):
        assert cli_main(argv) == 2
        assert "must be >= 1" in capsys.readouterr().err

    def test_non_integer_jobs_rejected_cleanly(self, capsys):
        assert cli_main(["run", "table2", "--jobs", "lots"]) == 2
        assert "expected an integer" in capsys.readouterr().err


class TestWorkerThroughputStats:
    def test_distributed_run_records_per_worker_stats(self):
        backend = DistributedBackend(bind="127.0.0.1:0", min_workers=2)
        scenario = Scenario(workload="vector_add", systems=("ccsvm-small",),
                            grid={"size": (8, 12, 16, 24)}, seed=3)
        with backend:
            host, port = backend.listen()
            for _ in range(2):
                _start_worker_thread(host, port, jobs=2)
            outcome = SweepRunner(backend=backend).run_points(
                scenario.points(), spec_name=scenario.name)
        assert outcome.points_total == 4
        stats = backend.last_run_worker_stats
        assert len(stats) == 2
        assert sum(entry.points for entry in stats) == 4
        for entry in stats:
            assert entry.slots == 2
            assert entry.wall_s > 0 and entry.busy_s >= 0
            assert "pid=" in entry.worker
            assert entry.points_per_s == pytest.approx(
                entry.points / entry.wall_s)

    def test_stats_flag_prints_worker_summary(self, capsys):
        from repro.harness.cli import _print_run_stats

        outcome = SweepRunner().run("table2")

        class FakeBackend:
            last_run_worker_stats = [WorkerRunStats(
                worker="127.0.0.1:5555 pid=42", slots=2, points=3,
                busy_s=1.5, wall_s=2.0)]

        _print_run_stats(outcome, FakeBackend())
        out = capsys.readouterr().out
        assert "per-worker throughput" in out
        assert "127.0.0.1:5555 pid=42" in out
        assert "1.50 points/s" in out

    def test_fully_cached_sweep_does_not_reuse_previous_worker_summary(
            self, capsys, tmp_path):
        # A sweep served entirely from cache never calls backend.run(), so
        # the CLI must reset the per-worker summary or --stats would
        # attribute the previous sweep's throughput to it.
        from repro.harness.cli import _print_run_stats, _reset_worker_stats

        class FakeBackend:
            last_run_worker_stats = [WorkerRunStats(
                worker="stale", slots=1, points=9, busy_s=1.0, wall_s=1.0)]

        backend = FakeBackend()
        _reset_worker_stats(backend)
        assert backend.last_run_worker_stats == []
        outcome = SweepRunner().run("table2")
        _print_run_stats(outcome, backend)
        assert "per-worker throughput" not in capsys.readouterr().out
