"""Scenario declarations loaded from TOML/JSON files (repro sweep --scenario)."""

import json

import pytest

from repro.harness.cli import main as cli_main
from repro.scenario_io import (
    ScenarioFileError,
    load_scenario_mapping,
    scenario_from_file,
)

try:
    import tomllib  # noqa: F401
    HAVE_TOMLLIB = True
except ImportError:
    HAVE_TOMLLIB = False

needs_tomllib = pytest.mark.skipif(not HAVE_TOMLLIB,
                                   reason="tomllib needs Python 3.11+")

TOML_DOC = """\
workload = "vector_add"
systems = ["cpu", "ccsvm-small"]
seed = 3
name = "file-study"

[grid]
size = [4, 8]

[overrides]
"cpu.l1_replacement" = "plru"
"""


def _write_json(tmp_path, document, name="scenario.json"):
    path = tmp_path / name
    path.write_text(json.dumps(document), encoding="utf-8")
    return str(path)


class TestLoadScenarioMapping:
    @needs_tomllib
    def test_toml_document_maps_to_scenario_kwargs(self, tmp_path):
        path = tmp_path / "study.toml"
        path.write_text(TOML_DOC, encoding="utf-8")
        kwargs = load_scenario_mapping(str(path))
        assert kwargs["workload"] == "vector_add"
        assert kwargs["systems"] == ("cpu", "ccsvm-small")
        assert kwargs["grid"] == {"size": [4, 8]}
        assert kwargs["overrides"] == {"cpu.l1_replacement": "plru"}
        assert kwargs["seed"] == 3 and kwargs["name"] == "file-study"

    def test_json_document_maps_identically(self, tmp_path):
        path = _write_json(tmp_path, {
            "workload": "vector_add", "systems": "cpu,ccsvm-small",
            "grid": {"size": [4, 8]}, "seed": 3, "name": "file-study",
            "overrides": {"cpu.l1_replacement": "plru"},
        })
        kwargs = load_scenario_mapping(path)
        assert kwargs["systems"] == ("cpu", "ccsvm-small")
        assert kwargs["grid"] == {"size": [4, 8]}

    def test_unknown_keys_rejected_with_valid_alternatives(self, tmp_path):
        path = _write_json(tmp_path, {"workload": "vector_add",
                                      "gridd": {"size": [4]}})
        with pytest.raises(ScenarioFileError, match="valid keys"):
            load_scenario_mapping(path)

    def test_non_table_sections_rejected(self, tmp_path):
        path = _write_json(tmp_path, {"workload": "vector_add",
                                      "grid": [4, 8]})
        with pytest.raises(ScenarioFileError, match="table/object"):
            load_scenario_mapping(path)

    def test_unsupported_extension_rejected(self, tmp_path):
        path = tmp_path / "study.yaml"
        path.write_text("workload: vector_add", encoding="utf-8")
        with pytest.raises(ScenarioFileError, match="expected .toml or .json"):
            load_scenario_mapping(str(path))

    def test_missing_file_and_bad_json_report_the_path(self, tmp_path):
        with pytest.raises(ScenarioFileError, match="cannot read"):
            load_scenario_mapping(str(tmp_path / "absent.json"))
        path = tmp_path / "broken.json"
        path.write_text("{not json", encoding="utf-8")
        with pytest.raises(ScenarioFileError, match="cannot parse"):
            load_scenario_mapping(str(path))


class TestScenarioFromFile:
    def test_builds_runnable_scenario(self, tmp_path):
        path = _write_json(tmp_path, {"workload": "vector_add",
                                      "systems": ["cpu"],
                                      "grid": {"size": [4, 8]}})
        scenario = scenario_from_file(path)
        points = scenario.points()
        assert [p.point_id for p in points] == ["system=cpu,size=4",
                                                "system=cpu,size=8"]

    def test_cli_values_overlay_the_file(self, tmp_path):
        path = _write_json(tmp_path, {"workload": "vector_add",
                                      "systems": ["cpu"],
                                      "grid": {"size": [4]},
                                      "overrides": {"cpu.max_ipc": 2.0},
                                      "seed": 3})
        scenario = scenario_from_file(
            path, cli_grid={"size": (16,)},
            cli_overrides={"cpu.l1_replacement": "plru"}, cli_seed=9)
        assert scenario.grid == (("size", (16,)),)
        assert scenario.overrides == {"cpu.max_ipc": 2.0,
                                      "cpu.l1_replacement": "plru"}
        assert scenario.seed == 9

    def test_workload_required_somewhere(self, tmp_path):
        path = _write_json(tmp_path, {"systems": ["cpu"]})
        with pytest.raises(ScenarioFileError, match="workload"):
            scenario_from_file(path)
        assert scenario_from_file(path,
                                  cli_workload="vector_add").workload == \
            "vector_add"

    def test_hierarchy_shape_overrides_from_file(self, tmp_path):
        path = _write_json(tmp_path, {
            "workload": "vector_add", "systems": ["ccsvm-small"],
            "grid": {"size": [4]},
            "overrides": {"l3.enabled": True, "tlb_enabled": False,
                          "l3.total_size_bytes": "64KiB"},
        })
        scenario = scenario_from_file(path)
        points = scenario.points()  # validates the override paths resolve
        assert points[0].kwargs["overrides"]["l3.enabled"] is True


class TestSweepScenarioCLI:
    def test_sweep_runs_a_scenario_file(self, tmp_path, capsys):
        path = _write_json(tmp_path, {"workload": "vector_add",
                                      "systems": ["cpu"],
                                      "grid": {"size": [4, 8]}})
        assert cli_main(["sweep", "--scenario", path, "--no-cache"]) == 0
        out = capsys.readouterr().out
        assert "vector_add on cpu" in out
        assert out.count("\n  ") >= 2 or "size" in out

    def test_sweep_scenario_with_shape_override_runs(self, tmp_path, capsys):
        path = _write_json(tmp_path, {
            "workload": "vector_add", "systems": ["ccsvm-small"],
            "grid": {"size": [4]},
            "overrides": {"l3.enabled": True,
                          "l3.total_size_bytes": "64KiB"},
        })
        assert cli_main(["sweep", "--scenario", path, "--no-cache"]) == 0
        out = capsys.readouterr().out
        assert "l3.enabled" in out  # title names the applied overrides

    def test_sweep_without_workload_or_scenario_errors(self, capsys):
        assert cli_main(["sweep", "--no-cache"]) == 2
        err = capsys.readouterr().err
        assert "workload" in err

    @needs_tomllib
    def test_sweep_toml_scenario_end_to_end(self, tmp_path, capsys):
        path = tmp_path / "study.toml"
        path.write_text(
            'workload = "vector_add"\nsystems = ["cpu"]\n\n'
            "[grid]\nsize = [4]\n", encoding="utf-8")
        assert cli_main(["sweep", "--scenario", str(path), "--no-cache"]) == 0
        assert "vector_add on cpu" in capsys.readouterr().out
