"""Tests for the declarative sweep harness (spec registry, runner, cache, CLI)."""

import hashlib
import json
import os

import pytest

from repro.config import small_ccsvm_system
from repro.harness import (
    HarnessError,
    PointResult,
    SweepPoint,
    SweepRunner,
    SweepSpec,
    execute_point,
    get_spec,
    spec_names,
)
from repro.harness.cli import main as cli_main
from repro.harness.runner import point_cache_key

SMALL = small_ccsvm_system()


# --------------------------------------------------------------------------- #
# Module-level point functions (picklable across process boundaries)
# --------------------------------------------------------------------------- #
def square_point(value):
    return PointResult(rows=[{"value": value, "square": value * value}],
                       stats={"points.computed": 1})


def dict_point(value):
    return {"value": value}


def tuple_row_point(value):
    return PointResult(rows=[{"value": value, "pair": (value, value + 1)}])


def bad_point():
    return 42  # not an accepted result shape


def _points(values, func=square_point, group="rows"):
    return [SweepPoint(spec="test", point_id=f"value={v}", func=func,
                       kwargs={"value": v}, group=group) for v in values]


class TestExecutePoint:
    def test_point_result_passthrough(self):
        result = execute_point(_points([3])[0])
        assert result.rows == [{"value": 3, "square": 9}]

    def test_plain_dict_normalised(self):
        result = execute_point(_points([3], func=dict_point)[0])
        assert result.rows == [{"value": 3}]

    def test_bad_return_type_rejected(self):
        point = SweepPoint(spec="test", point_id="bad", func=bad_point, kwargs={})
        with pytest.raises(HarnessError):
            execute_point(point)


class TestRegistry:
    def test_all_seven_experiments_registered(self):
        assert {"figure5", "figure6", "figure7", "figure8", "figure9",
                "table2", "ablations"} <= set(spec_names())

    def test_unknown_spec_rejected(self):
        with pytest.raises(HarnessError):
            get_spec("figure99")


class TestSweepRunner:
    def test_sequential_rows_in_declaration_order(self):
        outcome = SweepRunner().run_points(_points([4, 2, 3]))
        assert [row["value"] for row in outcome.rows] == [4, 2, 3]
        assert outcome.points_total == 3 and outcome.points_from_cache == 0

    def test_stats_merged_across_points(self):
        outcome = SweepRunner().run_points(_points([1, 2, 3]))
        assert outcome.stats.get("points.computed") == 3
        assert outcome.stats.get("harness.points") == 3
        assert outcome.stats.get("harness.rows") == 3

    def test_parallel_matches_sequential(self):
        sequential = SweepRunner(jobs=1).run_points(_points(list(range(8))))
        parallel = SweepRunner(jobs=4).run_points(_points(list(range(8))))
        assert sequential.rows == parallel.rows

    def test_groups_split_into_panels(self):
        points = _points([1, 2], group="left") + _points([3], group="right")
        outcome = SweepRunner().run_points(points)
        assert set(outcome.result) == {"left", "right"}
        assert [row["value"] for row in outcome.result["left"]] == [1, 2]

    def test_rows_property_rejects_multi_panel(self):
        points = _points([1], group="left") + _points([2], group="right")
        outcome = SweepRunner().run_points(points)
        with pytest.raises(TypeError):
            _ = outcome.rows

    def test_jobs_must_be_positive(self):
        with pytest.raises(ValueError):
            SweepRunner(jobs=0)


class TestCache:
    def test_cache_round_trip(self, tmp_path):
        cache = str(tmp_path / "cache")
        runner = SweepRunner(cache_dir=cache)
        first = runner.run_points(_points([5, 6]))
        assert first.points_from_cache == 0
        second = runner.run_points(_points([5, 6]))
        assert second.points_from_cache == 2
        assert second.rows == first.rows
        # Stats come back from the cache as well.
        assert second.stats.get("points.computed") == 2

    def test_cache_key_covers_parameters(self):
        a, b = _points([5]), _points([6])
        assert point_cache_key(a[0]) != point_cache_key(b[0])

    def test_cache_key_covers_config_dataclasses(self):
        small = SweepPoint(spec="t", point_id="p", func=square_point,
                           kwargs={"value": 1, "config": SMALL})
        default = SweepPoint(spec="t", point_id="p", func=square_point,
                             kwargs={"value": 1, "config": None})
        assert point_cache_key(small) != point_cache_key(default)

    def _key_for(self, **kwargs):
        return point_cache_key(SweepPoint(spec="t", point_id="p",
                                          func=square_point, kwargs=kwargs))

    def test_cache_key_canonical_for_sets_and_dicts(self):
        # Equal configurations must hash identically no matter how their
        # containers were built: dict insertion order and set iteration
        # order are not part of the configuration.
        assert self._key_for(cfg={"a": 1, "b": 2}) == \
            self._key_for(cfg={"b": 2, "a": 1})
        assert self._key_for(tags={"alpha", "beta", "gamma"}) == \
            self._key_for(tags={"gamma", "beta", "alpha"})
        assert self._key_for(tags=frozenset(["x", "y"])) == \
            self._key_for(tags=frozenset(["y", "x"]))
        # ... while genuinely different values still differ.
        assert self._key_for(cfg={"a": 1}) != self._key_for(cfg={"a": 2})
        assert self._key_for(tags={"alpha"}) != self._key_for(tags={"beta"})

    def test_cache_key_distinguishes_container_types(self):
        assert len({self._key_for(v=[1, 2]), self._key_for(v=(1, 2)),
                    self._key_for(v={1, 2}), self._key_for(v=frozenset([1, 2]))
                    }) == 4

    def test_cache_key_stable_across_hash_seeds(self):
        """Regression: set-bearing kwargs must hash the same in every
        process.  repr() iterates sets in hash order, which
        PYTHONHASHSEED perturbs for strings between processes, so the old
        repr-based key could miss the cache across coordinator restarts."""
        import subprocess
        import sys

        program = (
            "from repro.harness.runner import point_cache_key\n"
            "from repro.harness.spec import SweepPoint\n"
            "from tests.harness.test_harness import square_point\n"
            "point = SweepPoint(spec='t', point_id='p', func=square_point,\n"
            "                   kwargs={'tags': {'alpha', 'beta', 'gamma',\n"
            "                                    'delta'},\n"
            "                           'cfg': {'b': 2, 'a': 1}})\n"
            "print(point_cache_key(point))\n")
        keys = set()
        for seed in ("0", "1", "42"):
            env = dict(os.environ, PYTHONHASHSEED=seed)
            src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
            root = os.path.join(os.path.dirname(__file__), "..", "..")
            env["PYTHONPATH"] = os.pathsep.join(
                (os.path.abspath(src), os.path.abspath(root)))
            output = subprocess.run(
                [sys.executable, "-c", program], env=env, check=True,
                capture_output=True, text=True).stdout.strip()
            keys.add(output)
        assert len(keys) == 1

    @pytest.mark.parametrize("corrupt", [
        "{not json",                      # undecodable
        "[1, 2, 3]",                      # JSON, but not an object
        '{"stats": {}}',                  # object missing "rows"
        '{"rows": 5}',                    # "rows" of the wrong shape
        '{"rows": [], "stats": [1, 2]}',  # "stats" of the wrong shape
    ])
    def test_corrupt_cache_entry_recomputed(self, tmp_path, corrupt):
        cache = str(tmp_path / "cache")
        runner = SweepRunner(cache_dir=cache)
        runner.run_points(_points([7]))
        (path,) = [os.path.join(root, name)
                   for root, _, names in os.walk(os.path.join(cache, "objects"))
                   for name in names]
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(corrupt)
        outcome = runner.run_points(_points([7]))
        assert outcome.points_from_cache == 0
        assert outcome.rows == [{"value": 7, "square": 49}]
        # The damaged object was quarantined for inspection, not dropped.
        quarantine = os.path.join(cache, "quarantine")
        assert os.listdir(quarantine)

    def test_json_lossy_rows_not_cached(self, tmp_path):
        # A tuple would reload from JSON as a list, making a warm run render
        # differently from a cold one — so such points must not be cached.
        cache = str(tmp_path / "cache")
        runner = SweepRunner(cache_dir=cache)
        points = _points([4], func=tuple_row_point)
        first = runner.run_points(points)
        second = runner.run_points(points)
        assert second.points_from_cache == 0
        assert second.rows == first.rows
        assert second.rows[0]["pair"] == (4, 5)

    def test_cache_files_are_json(self, tmp_path):
        cache = str(tmp_path / "cache")
        SweepRunner(cache_dir=cache).run_points(_points([9]))
        (path,) = [os.path.join(root, name)
                   for root, _, names in os.walk(os.path.join(cache, "objects"))
                   for name in names]
        with open(path, encoding="utf-8") as handle:
            payload = json.load(handle)
        assert payload["rows"] == [{"value": 9, "square": 81}]
        # The object is named by the sha256 of its exact bytes and carries
        # a provenance record naming the release that computed it.
        with open(path, "rb") as handle:
            digest = hashlib.sha256(handle.read()).hexdigest()
        assert os.path.basename(path) == f"{digest}.json"
        import repro

        assert payload["provenance"]["repro_version"] == repro.__version__
        assert payload["provenance"]["backend"] == "serial"


class TestExperimentSpecs:
    """The figure specs expand and execute through the generic runner."""

    def test_figure5_points_have_picklable_kwargs(self):
        points = get_spec("figure5").build_points(full=False)
        assert [point.kwargs["params"]["size"] for point in points] == \
            [8, 12, 16, 24, 32]
        # Points carry registry names, never function objects: func is a
        # "module:qualname" reference and the derive hook is one too.
        assert all(isinstance(point.func, str) for point in points)
        assert all(point.kwargs["derive"] ==
                   "repro.experiments.figure5:derive_row" for point in points)

    def test_full_flag_selects_larger_grids(self):
        spec = get_spec("figure9")
        assert len(spec.build_points(full=True)) > len(spec.build_points(full=False))

    def test_figure8_panels_via_spec(self):
        spec = get_spec("figure8")
        groups = {point.group for point in spec.build_points(full=False)}
        assert groups == {"by_size", "by_density"}

    def test_table2_through_runner(self):
        outcome = SweepRunner().run(get_spec("table2").name)
        assert len(outcome.rows) >= 8
        assert "torus" in get_spec("table2").render(outcome.result).lower()

    def test_figure5_runs_parallel_through_spec(self):
        runner = SweepRunner(jobs=2)
        outcome = runner.run("figure5", sizes=(6, 8), ccsvm_config=SMALL)
        assert [row["size"] for row in outcome.rows] == [6, 8]
        # Merged chip counters surface through the outcome.
        assert outcome.stats.get("dram.reads") > 0

    def test_ablation_subset_selection(self):
        spec = get_spec("ablations")
        points = spec.build_points(ablations=("tlb_shootdown",))
        assert [point.point_id for point in points] == \
            ["shootdown_flush_all", "shootdown_selective"]
        with pytest.raises(ValueError):
            spec.build_points(ablations=("bogus",))


class TestCLI:
    def test_list_names_every_spec(self, capsys):
        assert cli_main(["list"]) == 0
        out = capsys.readouterr().out
        for name in ("figure5", "figure9", "table2", "ablations"):
            assert name in out

    def test_run_table2_renders_table(self, capsys, tmp_path):
        out_file = str(tmp_path / "table2.txt")
        code = cli_main(["run", "table2", "--no-cache", "--out", out_file])
        assert code == 0
        captured = capsys.readouterr()
        assert "Table 2" in captured.out
        with open(out_file, encoding="utf-8") as handle:
            assert "Table 2" in handle.read()

    def test_run_table2_csv_escapes_commas(self, capsys):
        assert cli_main(["run", "table2", "--no-cache", "--csv"]) == 0
        out = capsys.readouterr().out
        # Table 2 cells contain commas, so the CSV must quote them.
        assert '"' in out
        assert out.startswith("parameter,ccsvm_simulated,amd_apu_a8_3850")

    def test_run_uses_cache_dir(self, capsys, tmp_path):
        cache = str(tmp_path / "cli-cache")
        assert cli_main(["run", "table2", "--cache-dir", cache]) == 0
        capsys.readouterr()
        assert cli_main(["run", "table2", "--cache-dir", cache]) == 0
        err = capsys.readouterr().err
        assert "1 cached" in err

    def test_run_backend_flag_process(self, capsys):
        code = cli_main(["run", "table2", "--no-cache",
                         "--backend", "process", "--workers", "2"])
        assert code == 0
        captured = capsys.readouterr()
        assert "Table 2" in captured.out
        assert "process backend" in captured.err

    def test_run_backend_env_default(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "serial")
        assert cli_main(["run", "table2", "--no-cache", "--jobs", "4"]) == 0
        assert "serial backend" in capsys.readouterr().err

    def test_jobs_flag_still_selects_process_backend(self, capsys):
        assert cli_main(["run", "table2", "--no-cache", "--jobs", "2"]) == 0
        assert "process backend" in capsys.readouterr().err

    def test_nonpositive_jobs_rejected(self, capsys):
        assert cli_main(["run", "table2", "--no-cache", "--jobs", "0"]) == 2
        assert "must be >= 1" in capsys.readouterr().err


class TestCacheCLI:
    def _populate(self, cache):
        assert cli_main(["run", "table2", "--cache-dir", cache]) == 0

    def test_info_empty(self, capsys, tmp_path):
        cache = str(tmp_path / "cache")
        assert cli_main(["cache", "info", "--cache-dir", cache]) == 0
        assert "empty" in capsys.readouterr().out

    def test_info_lists_entries_per_sweep(self, capsys, tmp_path):
        cache = str(tmp_path / "cache")
        self._populate(cache)
        capsys.readouterr()
        assert cli_main(["cache", "info", "--cache-dir", cache]) == 0
        out = capsys.readouterr().out
        assert "table2" in out
        assert "1 entries" in out
        assert "total" in out

    def test_clear_removes_entries_and_forces_recompute(self, capsys, tmp_path):
        cache = str(tmp_path / "cache")
        self._populate(cache)
        capsys.readouterr()
        assert cli_main(["cache", "clear", "--cache-dir", cache]) == 0
        assert "removed 1 entries" in capsys.readouterr().out
        self._populate(cache)
        err = capsys.readouterr().err
        assert "1 simulated, 0 cached" in err

    def test_clear_selected_sweep_only(self, capsys, tmp_path):
        cache = str(tmp_path / "cache")
        self._populate(cache)
        runner = SweepRunner(cache_dir=cache)
        runner.run_points(_points([1, 2]), spec_name="adhoc")
        capsys.readouterr()
        assert cli_main(["cache", "clear", "test", "--cache-dir", cache]) == 0
        assert "removed 2 entries" in capsys.readouterr().out
        from repro.harness import cache_info
        assert [info.spec for info in cache_info(cache)] == ["table2"]

    def test_info_filters_by_sweep(self, capsys, tmp_path):
        cache = str(tmp_path / "cache")
        self._populate(cache)
        SweepRunner(cache_dir=cache).run_points(_points([1, 2]))
        capsys.readouterr()
        assert cli_main(["cache", "info", "test", "--cache-dir", cache]) == 0
        out = capsys.readouterr().out
        assert "2 entries" in out and "table2" not in out
        assert cli_main(["cache", "info", "figure99", "--cache-dir",
                         cache]) == 0
        captured = capsys.readouterr()
        assert "no entries for: figure99" in captured.err
        assert "empty" in captured.out

    def test_clear_unknown_sweep_warns(self, capsys, tmp_path):
        cache = str(tmp_path / "cache")
        self._populate(cache)
        capsys.readouterr()
        assert cli_main(["cache", "clear", "figure99", "--cache-dir", cache]) == 0
        captured = capsys.readouterr()
        assert "no entries for: figure99" in captured.err
        assert "removed 0 entries" in captured.out

    def test_info_json_reports_store_health(self, capsys, tmp_path):
        cache = str(tmp_path / "cache")
        self._populate(cache)
        orphan = os.path.join(cache, "index", "stale.json.1-1.tmp")
        with open(orphan, "w", encoding="utf-8") as handle:
            handle.write("interrupted write")
        capsys.readouterr()
        assert cli_main(["cache", "info", "--json", "--cache-dir", cache]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["entries"] == 1
        assert payload["objects"] == 1
        assert payload["orphan_tmp"] == 1
        assert payload["quarantined"] == 0
        assert payload["specs"] == [{"spec": "table2", "entries": 1,
                                     "bytes": payload["objects_bytes"]}]

    def test_push_pull_between_stores(self, capsys, tmp_path):
        a, b = str(tmp_path / "a"), str(tmp_path / "b")
        self._populate(a)
        capsys.readouterr()
        assert cli_main(["cache", "push", b, "--cache-dir", a]) == 0
        assert "1 entries copied" in capsys.readouterr().out
        assert cli_main(["cache", "push", b, "--cache-dir", a]) == 0
        assert "0 entries copied, 1 up to date" in capsys.readouterr().out
        c = str(tmp_path / "c")
        assert cli_main(["cache", "pull", b, "--cache-dir", c]) == 0
        assert "1 entries copied" in capsys.readouterr().out
        self._populate(c)
        assert "0 simulated, 1 cached" in capsys.readouterr().err

    def test_verify_detects_tampering(self, capsys, tmp_path):
        cache = str(tmp_path / "cache")
        self._populate(cache)
        capsys.readouterr()
        assert cli_main(["cache", "verify", "--cache-dir", cache]) == 0
        assert "1 object(s) verified" in capsys.readouterr().out
        (path,) = [os.path.join(root, name)
                   for root, _, names in os.walk(os.path.join(cache, "objects"))
                   for name in names]
        with open(path, "ab") as handle:
            handle.write(b"tamper")
        assert cli_main(["cache", "verify", "--cache-dir", cache]) == 1
        captured = capsys.readouterr()
        assert "does not match its hash" in captured.err

    def test_gc_dry_run_then_real(self, capsys, tmp_path):
        cache = str(tmp_path / "cache")
        self._populate(cache)
        capsys.readouterr()
        assert cli_main(["cache", "gc", "table2", "--dry-run",
                         "--cache-dir", cache]) == 0
        assert "would remove 1 entries" in capsys.readouterr().out
        assert cli_main(["cache", "info", "--cache-dir", cache]) == 0
        assert "1 entries" in capsys.readouterr().out  # dry run kept it
        assert cli_main(["cache", "gc", "table2", "--cache-dir", cache]) == 0
        assert "removed 1 entries" in capsys.readouterr().out
        assert cli_main(["cache", "info", "--cache-dir", cache]) == 0
        assert "empty" in capsys.readouterr().out

    def test_gc_by_version_spares_other_releases(self, capsys, tmp_path):
        cache = str(tmp_path / "cache")
        self._populate(cache)
        capsys.readouterr()
        assert cli_main(["cache", "gc", "--version", "0.0.1",
                         "--cache-dir", cache]) == 0
        assert "removed 0 entries" in capsys.readouterr().out
        import repro

        assert cli_main(["cache", "gc", "--version", repro.__version__,
                         "--cache-dir", cache]) == 0
        assert "removed 1 entries" in capsys.readouterr().out