"""Tests for the system configuration presets (Table 2)."""

import pytest

from repro import config
from repro.errors import ConfigurationError


class TestCCSVMPreset:
    def test_table2_cpu_parameters(self):
        system = config.ccsvm_system()
        assert system.cpu.count == 4
        assert system.cpu.frequency_ghz == 2.9
        assert system.cpu.max_ipc == 0.5
        assert system.cpu.cycles_per_instruction == 2.0
        assert system.cpu.l1_size_bytes == 64 * 1024
        assert system.cpu.tlb_entries == 64

    def test_table2_mttop_parameters(self):
        system = config.ccsvm_system()
        assert system.mttop.count == 10
        assert system.mttop.simd_width == 8
        assert system.mttop.thread_contexts == 128
        assert system.mttop.total_thread_contexts == 1280
        assert system.mttop.max_operations_per_cycle == 80
        assert system.mttop.l1_size_bytes == 16 * 1024

    def test_table2_memory_system(self):
        system = config.ccsvm_system()
        assert system.l2.total_size_bytes == 4 * 1024 * 1024
        assert system.l2.banks == 4
        assert system.l2.bank_size_bytes == 1024 * 1024
        assert system.dram.latency_ns == 100.0
        assert system.noc.link_bandwidth_gbps == 12.0
        assert system.total_cores == 14

    def test_small_variants_shrink_but_keep_structure(self):
        small = config.small_ccsvm_system()
        assert small.cpu.count == 1 and small.mttop.count == 2
        assert small.l2.banks == 2
        tiny = config.tiny_caches_ccsvm_system()
        assert tiny.cpu.l1_size_bytes < small.cpu.l1_size_bytes


class TestAPUPreset:
    def test_table2_apu_parameters(self):
        apu = config.amd_apu_system()
        assert apu.cpu.count == 4 and apu.cpu.max_ipc == 4.0
        assert apu.cpu.l2_size_bytes == 1024 * 1024
        assert apu.cpu.tlb_entries == 1024
        assert apu.gpu.simd_units == 5 and apu.gpu.vliw_lanes == 16
        assert apu.gpu.lanes == 80
        assert apu.dram.latency_ns == 72.0
        assert apu.dram.size_bytes == 8 * config.GB

    def test_gpu_throughput_range_matches_table2(self):
        gpu = config.APUGPUConfig(vliw_utilization=4.0)
        assert gpu.max_operations_per_cycle == 320
        gpu_low = config.APUGPUConfig(vliw_utilization=1.0)
        assert gpu_low.max_operations_per_cycle == 80


class TestValidation:
    def test_rejects_zero_cpu_count(self):
        with pytest.raises(ConfigurationError):
            config.CPUCoreConfig(count=0)

    def test_rejects_contexts_not_multiple_of_simd(self):
        with pytest.raises(ConfigurationError):
            config.MTTOPCoreConfig(simd_width=8, thread_contexts=100)

    def test_rejects_l2_not_divisible_by_banks(self):
        with pytest.raises(ConfigurationError):
            config.SharedL2Config(total_size_bytes=1000, banks=3)
