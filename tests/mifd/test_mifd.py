"""Tests for the MIFD device, task descriptors and driver."""

import pytest

from repro.config import small_ccsvm_system
from repro.core.chip import CCSVMChip
from repro.cores.isa import Store
from repro.errors import InsufficientThreadContextsError, MIFDError
from repro.mifd.task import TaskDescriptor


def trivial_kernel(tid, args):
    yield Store(args + tid * 8, tid)


class TestTaskDescriptor:
    def _task(self, first=0, last=7, space=None):
        return TaskDescriptor(program_counter=0x400000, kernel=trivial_kernel,
                              args=0, first_thread=first, last_thread=last,
                              cr3=0x1000, address_space=space)

    def test_thread_count(self):
        assert self._task(0, 7).thread_count == 8

    def test_empty_range_rejected(self):
        with pytest.raises(MIFDError):
            self._task(5, 4)

    def test_chunks_split_by_simd_width(self):
        chunks = self._task(0, 9).chunks(4)
        assert [chunk.size for chunk in chunks] == [4, 4, 2]
        assert list(chunks[0].thread_ids) == [0, 1, 2, 3]

    def test_chunks_require_positive_width(self):
        with pytest.raises(MIFDError):
            self._task().chunks(0)


class TestMIFDOnChip:
    """Exercise the MIFD through a real chip (cores, VM, runtime all wired)."""

    def _chip(self, mttop_cores=2, contexts=16):
        chip = CCSVMChip(small_ccsvm_system(mttop_cores=mttop_cores,
                                            thread_contexts=contexts))
        chip.create_process("mifd_test")
        return chip

    def test_submit_assigns_round_robin_across_cores(self):
        chip = self._chip()
        buffer = chip.malloc(64 * 8)
        task = TaskDescriptor(program_counter=0x400000, kernel=trivial_kernel,
                              args=buffer, first_thread=0, last_thread=31,
                              cr3=chip.process_space.cr3,
                              address_space=chip.process_space)
        latency = chip.mifd.submit_task(task, now_ps=0)
        assert latency > 0
        busy = [core.busy_contexts for core in chip.mttop_cores]
        assert all(count > 0 for count in busy)
        assert sum(busy) == 32
        assert chip.mifd.error_register == 0

    def test_oversubscription_sets_error_register(self):
        chip = self._chip(mttop_cores=1, contexts=16)
        task = TaskDescriptor(program_counter=0x400000, kernel=trivial_kernel,
                              args=0, first_thread=0, last_thread=63,
                              cr3=chip.process_space.cr3,
                              address_space=chip.process_space)
        with pytest.raises(InsufficientThreadContextsError):
            chip.mifd.submit_task(task, now_ps=0)
        assert chip.mifd.error_register == 1

    def test_capacity_properties(self):
        chip = self._chip(mttop_cores=2, contexts=16)
        assert chip.mifd.total_thread_contexts == 32
        assert chip.mifd.total_free_contexts == 32

    def test_forward_page_fault_maps_page_and_charges_cpu(self):
        chip = self._chip()
        vaddr = chip.vm.malloc(chip.process_space, 4096)
        latency = chip.mifd.forward_page_fault("mttop0", vaddr,
                                               chip.process_space.cr3,
                                               is_write=True)
        assert latency > 0
        assert chip.process_space.page_table.translate(vaddr) is not None
        assert chip.stats["mifd.page_faults_forwarded"] == 1
        assert chip.stats["os.page_faults_from_mttop"] == 1
        # The servicing CPU core was charged interrupt time.
        assert any(chip.stats[f"{core.name}.interrupts"] for core in chip.cpu_cores)


class TestDriver:
    def test_launch_charges_syscall_plus_dispatch(self):
        chip = CCSVMChip(small_ccsvm_system())
        chip.create_process("driver_test")
        buffer = chip.malloc(64 * 8)
        latency = chip.driver.launch(0x400000, trivial_kernel, buffer, 0, 7,
                                     chip.process_space, now_ps=0)
        assert latency >= chip.driver.syscall_ps
        assert chip.stats["mifd_driver.write_syscalls"] == 1

    def test_arbitration_rejects_second_process_while_busy(self):
        chip = CCSVMChip(small_ccsvm_system())
        chip.create_process("proc_a")
        space_a = chip.process_space
        space_b = chip.vm.create_address_space()
        buffer = chip.malloc(64 * 8)
        chip.driver.launch(0x400000, trivial_kernel, buffer, 0, 7, space_a, 0)
        with pytest.raises(MIFDError):
            chip.driver.launch(0x400000, trivial_kernel, buffer, 0, 7, space_b, 0)

    def test_release_allows_next_process(self):
        chip = CCSVMChip(small_ccsvm_system())
        chip.create_process("proc_a")
        space_a = chip.process_space
        chip.driver.launch(0x400000, trivial_kernel, chip.malloc(64 * 8), 0, 7,
                           space_a, 0)
        chip.driver.release(space_a.pid)
        assert chip.driver._arbitration_owner_pid is None
