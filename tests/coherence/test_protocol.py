"""Tests for the MOESI directory protocol over L1s, L2 banks and DRAM."""

import pytest

from repro.coherence.protocol import AccessType
from repro.coherence.states import MOESIState
from tests.conftest import build_coherent_system


class TestBasicAccesses:
    def test_cold_load_fills_from_dram_as_exclusive(self, coherent_system, stats):
        result = coherent_system.load("cpu0", 0x1000)
        assert result.level == "dram"
        block = coherent_system._l1s["cpu0"].cache.peek(0x1000)
        assert block.state is MOESIState.EXCLUSIVE
        assert stats["dram.reads"] == 1

    def test_second_load_hits_l1(self, coherent_system, stats):
        coherent_system.load("cpu0", 0x1000)
        result = coherent_system.load("cpu0", 0x1008)   # same line
        assert result.level == "l1"
        assert stats["coherence.l1_hits"] == 1

    def test_store_after_exclusive_load_is_silent_upgrade(self, coherent_system):
        coherent_system.load("cpu0", 0x1000)
        result = coherent_system.store("cpu0", 0x1000)
        assert result.level == "l1"
        assert coherent_system._l1s["cpu0"].cache.peek(0x1000).state \
            is MOESIState.MODIFIED

    def test_cold_store_gets_modified(self, coherent_system):
        result = coherent_system.store("mttop0", 0x2000)
        assert result.level == "dram"
        assert coherent_system._l1s["mttop0"].cache.peek(0x2000).state \
            is MOESIState.MODIFIED

    def test_l2_hit_after_eviction_level(self, stats):
        system = build_coherent_system(["cpu0"], stats, l1_bytes=128, l2_bytes=8192)
        # Fill enough lines to evict 0x0 from the tiny L1 but keep it in L2.
        system.load("cpu0", 0x0)
        for index in range(1, 9):
            system.load("cpu0", index * 64)
        result = system.load("cpu0", 0x0)
        assert result.level in ("l2", "dram")
        assert stats["coherence.l2_hits"] >= 1

    def test_latency_includes_l1_hit_cost(self, coherent_system):
        coherent_system.load("cpu0", 0x3000)
        hit = coherent_system.load("cpu0", 0x3000)
        assert hit.latency_ps >= 700  # registered hit latency

    def test_unknown_node_rejected(self, coherent_system):
        with pytest.raises(Exception):
            coherent_system.load("ghost", 0x0)


class TestSharingAndInvalidation:
    def test_read_sharing_two_nodes(self, coherent_system):
        coherent_system.load("cpu0", 0x4000)
        result = coherent_system.load("mttop0", 0x4000)
        assert result.level in ("l2", "remote_l1")
        states = {node: coherent_system._l1s[node].cache.peek(0x4000).state
                  for node in ("cpu0", "mttop0")}
        assert MOESIState.MODIFIED not in states.values()
        coherent_system.check_invariants()

    def test_store_invalidates_sharers(self, coherent_system, stats):
        coherent_system.load("cpu0", 0x5000)
        coherent_system.load("mttop0", 0x5000)
        coherent_system.load("mttop1", 0x5000)
        coherent_system.store("cpu0", 0x5000)
        assert coherent_system._l1s["mttop0"].cache.peek(0x5000) is None
        assert coherent_system._l1s["mttop1"].cache.peek(0x5000) is None
        assert stats["coherence.invalidations"] >= 2
        coherent_system.check_invariants()

    def test_dirty_data_forwarded_between_l1s(self, coherent_system, stats):
        coherent_system.store("cpu0", 0x6000)
        result = coherent_system.load("mttop0", 0x6000)
        assert result.level == "remote_l1"
        owner_state = coherent_system._l1s["cpu0"].cache.peek(0x6000).state
        assert owner_state is MOESIState.OWNED
        sharer_state = coherent_system._l1s["mttop0"].cache.peek(0x6000).state
        assert sharer_state is MOESIState.SHARED
        coherent_system.check_invariants()

    def test_write_after_remote_dirty_invalidates_owner(self, coherent_system):
        coherent_system.store("cpu0", 0x7000)
        coherent_system.store("mttop0", 0x7000)
        assert coherent_system._l1s["cpu0"].cache.peek(0x7000) is None
        assert coherent_system._l1s["mttop0"].cache.peek(0x7000).state \
            is MOESIState.MODIFIED
        coherent_system.check_invariants()

    def test_upgrade_from_shared(self, coherent_system, stats):
        coherent_system.load("cpu0", 0x8000)
        coherent_system.load("mttop0", 0x8000)
        result = coherent_system.store("mttop0", 0x8000)
        assert result.level == "upgrade"
        assert stats["coherence.upgrades"] == 1
        assert coherent_system._l1s["cpu0"].cache.peek(0x8000) is None
        coherent_system.check_invariants()

    def test_exclusive_grant_to_sole_reader_avoids_upgrade_traffic(self, coherent_system, stats):
        coherent_system.load("cpu0", 0x9000)
        coherent_system.store("cpu0", 0x9000)
        assert stats["coherence.upgrades"] == 0

    def test_atomic_counts_and_gets_exclusive(self, coherent_system, stats):
        coherent_system.load("mttop0", 0xA000)
        coherent_system.load("mttop1", 0xA000)
        coherent_system.atomic("mttop0", 0xA000)
        assert stats["coherence.atomics"] == 1
        assert coherent_system._l1s["mttop1"].cache.peek(0xA000) is None
        coherent_system.check_invariants()


class TestEvictionPaths:
    def test_l1_capacity_eviction_writes_back_dirty_data(self, stats):
        system = build_coherent_system(["cpu0"], stats, l1_bytes=128, l2_bytes=8192)
        system.store("cpu0", 0x0)
        # Force eviction of line 0x0 from the 2-line-per-set L1.
        for index in range(1, 12):
            system.store("cpu0", index * 64)
        assert stats["coherence.writebacks_to_l2"] >= 1
        system.check_invariants()

    def test_inclusive_l2_eviction_recalls_l1_copies(self, stats):
        system = build_coherent_system(["cpu0", "cpu1"], stats,
                                       l1_bytes=4096, l2_bytes=512)
        # Touch far more lines than the tiny L2 can hold.
        for index in range(64):
            system.load("cpu0", index * 64)
        assert stats["coherence.l2_evictions"] >= 1
        assert stats["coherence.recalls"] >= 1
        system.check_invariants()

    def test_dirty_l2_eviction_reaches_dram(self, stats):
        system = build_coherent_system(["cpu0"], stats, l1_bytes=4096, l2_bytes=512)
        for index in range(64):
            system.store("cpu0", index * 64)
        assert stats["coherence.writebacks_to_dram"] >= 1
        assert stats["dram.writes"] >= 1
        system.check_invariants()

    def test_flush_l1_writes_back_dirty_lines(self, coherent_system, stats):
        coherent_system.store("cpu0", 0x100)
        coherent_system.store("cpu0", 0x200)
        written_back = coherent_system.flush_l1("cpu0")
        assert written_back == 2
        assert coherent_system._l1s["cpu0"].cache.peek(0x100) is None
        coherent_system.check_invariants()


class TestAddressMapping:
    def test_line_alignment(self, coherent_system):
        assert coherent_system.line_address(0x12345) == 0x12340

    def test_banks_interleaved_by_line(self, coherent_system):
        banks = {coherent_system.home_bank(line * 64).name for line in range(8)}
        assert len(banks) == len(coherent_system.banks)

    def test_home_bank_stable(self, coherent_system):
        assert coherent_system.home_bank(0x40).name == coherent_system.home_bank(0x40).name
