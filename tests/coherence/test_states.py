"""Tests for MOESI state semantics."""

import pytest

from repro.coherence.states import MOESIState


class TestPermissions:
    def test_readable_states(self):
        readable = {state for state in MOESIState if state.can_read}
        assert readable == {MOESIState.MODIFIED, MOESIState.OWNED,
                            MOESIState.EXCLUSIVE, MOESIState.SHARED}

    def test_writable_states(self):
        writable = {state for state in MOESIState if state.can_write}
        assert writable == {MOESIState.MODIFIED, MOESIState.EXCLUSIVE}

    def test_ownership_states(self):
        owners = {state for state in MOESIState if state.is_ownership}
        assert owners == {MOESIState.MODIFIED, MOESIState.OWNED, MOESIState.EXCLUSIVE}

    def test_dirty_states(self):
        dirty = {state for state in MOESIState if state.is_dirty}
        assert dirty == {MOESIState.MODIFIED, MOESIState.OWNED}

    def test_exclusive_states(self):
        exclusive = {state for state in MOESIState if state.is_exclusive}
        assert exclusive == {MOESIState.MODIFIED, MOESIState.EXCLUSIVE}


class TestTransitions:
    def test_store_in_exclusive_becomes_modified(self):
        assert MOESIState.EXCLUSIVE.after_local_store() is MOESIState.MODIFIED

    def test_store_in_modified_stays_modified(self):
        assert MOESIState.MODIFIED.after_local_store() is MOESIState.MODIFIED

    @pytest.mark.parametrize("state", [MOESIState.SHARED, MOESIState.OWNED,
                                       MOESIState.INVALID])
    def test_store_without_permission_rejected(self, state):
        with pytest.raises(ValueError):
            state.after_local_store()

    def test_str_is_single_letter(self):
        assert str(MOESIState.MODIFIED) == "M"
        assert {str(state) for state in MOESIState} == {"M", "O", "E", "S", "I"}
