"""Tests for directory entries and the per-bank directory."""

import pytest

from repro.coherence.directory import Directory, DirectoryEntry
from repro.errors import CoherenceError


class TestDirectoryEntry:
    def test_new_entry_has_no_copies(self):
        entry = DirectoryEntry(line_address=0x100)
        assert not entry.has_copies
        assert entry.holders() == set()

    def test_exclusive_owner(self):
        entry = DirectoryEntry(0x100)
        entry.set_exclusive_owner("cpu0")
        assert entry.owner == "cpu0" and entry.owner_exclusive
        assert entry.holders() == {"cpu0"}

    def test_exclusive_owner_clears_sharers(self):
        entry = DirectoryEntry(0x100)
        entry.add_sharer("cpu1")
        entry.set_exclusive_owner("cpu0")
        assert entry.sharers == set()

    def test_shared_owner_coexists_with_sharers(self):
        entry = DirectoryEntry(0x100)
        entry.set_shared_owner("cpu0")
        entry.add_sharer("mttop0")
        assert entry.holders() == {"cpu0", "mttop0"}
        entry.check_invariant()

    def test_cannot_add_sharer_under_exclusive_owner(self):
        entry = DirectoryEntry(0x100)
        entry.set_exclusive_owner("cpu0")
        with pytest.raises(CoherenceError):
            entry.add_sharer("cpu1")

    def test_owner_cannot_be_sharer(self):
        entry = DirectoryEntry(0x100)
        entry.set_shared_owner("cpu0")
        with pytest.raises(CoherenceError):
            entry.add_sharer("cpu0")

    def test_remove_owner(self):
        entry = DirectoryEntry(0x100)
        entry.set_exclusive_owner("cpu0")
        entry.remove("cpu0")
        assert entry.owner is None and not entry.has_copies

    def test_remove_sharer(self):
        entry = DirectoryEntry(0x100)
        entry.add_sharer("cpu1")
        entry.remove("cpu1")
        assert not entry.has_copies

    def test_clear(self):
        entry = DirectoryEntry(0x100)
        entry.set_shared_owner("cpu0")
        entry.add_sharer("cpu1")
        entry.clear()
        assert not entry.has_copies

    def test_invariant_violation_detected(self):
        entry = DirectoryEntry(0x100)
        entry.owner = "cpu0"
        entry.owner_exclusive = True
        entry.sharers = {"cpu1"}
        with pytest.raises(CoherenceError):
            entry.check_invariant()

    def test_is_holder(self):
        entry = DirectoryEntry(0x100)
        entry.set_shared_owner("cpu0")
        entry.add_sharer("cpu1")
        assert entry.is_holder("cpu0") and entry.is_holder("cpu1")
        assert not entry.is_holder("cpu2")


class TestDirectory:
    def test_entry_created_on_demand(self):
        directory = Directory()
        entry = directory.entry(0x40)
        assert directory.entry(0x40) is entry
        assert len(directory) == 1

    def test_peek_does_not_create(self):
        directory = Directory()
        assert directory.peek(0x40) is None
        assert len(directory) == 0

    def test_drop(self):
        directory = Directory()
        directory.entry(0x40)
        directory.drop(0x40)
        assert directory.peek(0x40) is None

    def test_check_invariants_covers_all_entries(self):
        directory = Directory()
        good = directory.entry(0x40)
        good.set_exclusive_owner("cpu0")
        bad = directory.entry(0x80)
        bad.owner = "cpu0"
        bad.owner_exclusive = True
        bad.sharers = {"cpu1"}
        with pytest.raises(CoherenceError):
            directory.check_invariants()
