"""Property-based tests: the protocol preserves SWMR and inclusion invariants.

Hypothesis drives random interleavings of loads, stores and atomics from
several cores over a small set of cache lines, against deliberately tiny
caches so that evictions, recalls and writebacks all occur, and checks the
full invariant suite after every step.
"""

from hypothesis import given, settings, strategies as st

from repro.coherence.protocol import AccessType
from repro.sim.stats import StatsRegistry
from tests.conftest import build_coherent_system

NODES = ("cpu0", "cpu1", "mttop0", "mttop1")
LINES = tuple(index * 64 for index in range(24))

operations = st.lists(
    st.tuples(st.sampled_from(NODES),
              st.sampled_from(LINES),
              st.sampled_from(list(AccessType))),
    min_size=1, max_size=120)


@settings(max_examples=40, deadline=None)
@given(operations)
def test_random_access_sequences_preserve_invariants(sequence):
    stats = StatsRegistry()
    system = build_coherent_system(list(NODES), stats, banks=2,
                                   l1_bytes=256, l2_bytes=1024)
    for node, paddr, access in sequence:
        result = system.access(node, paddr, access)
        assert result.latency_ps > 0
    system.check_invariants()
    for bank in system.banks:
        bank.directory.check_invariants()


@settings(max_examples=20, deadline=None)
@given(operations)
def test_accounting_identities(sequence):
    stats = StatsRegistry()
    system = build_coherent_system(list(NODES), stats, banks=2,
                                   l1_bytes=256, l2_bytes=1024)
    for node, paddr, access in sequence:
        system.access(node, paddr, access)
    total = stats["coherence.l1_hits"] + stats["coherence.l1_misses"] \
        + stats["coherence.upgrades"]
    assert total == len(sequence)
    # Every DRAM fill corresponds to an L2 miss.
    assert stats["coherence.dram_fills"] == stats["coherence.l2_misses"]
    # DRAM reads happen only for fills.
    assert stats["dram.reads"] == stats["coherence.dram_fills"]
