"""Tests for the ``repro.api`` scenario builder and ResultSet."""

import pickle

import pytest

from repro.api import ResultSet, Scenario, ScenarioError
from repro.config import small_ccsvm_system
from repro.harness import SweepRunner, get_spec, spec_names
from repro.harness.spec import point_func_ref, resolve_point_func
from repro.systems import SystemRegistryError
from repro.workloads.registry import (
    WorkloadRegistryError,
    get_variant,
    variants_for,
    workload_names,
)

SMALL = small_ccsvm_system()


class TestWorkloadRegistry:
    def test_all_workloads_registered(self):
        assert workload_names() == ["apsp", "barnes_hut", "cache_replay",
                                    "matmul", "mem_stream", "sparse_matmul",
                                    "trace_replay", "vector_add"]

    def test_variant_systems_match_the_paper(self):
        assert sorted(variants_for("matmul")) == ["apu", "ccsvm", "cpu"]
        # Barnes-Hut and sparse MM have no OpenCL version, as in the paper.
        assert sorted(variants_for("barnes_hut")) == ["ccsvm", "cpu",
                                                      "pthreads"]
        assert sorted(variants_for("sparse_matmul")) == ["ccsvm", "cpu"]

    def test_unknown_lookups_name_alternatives(self):
        with pytest.raises(WorkloadRegistryError, match="known workloads"):
            get_variant("quicksort", "cpu")
        with pytest.raises(WorkloadRegistryError, match="it runs on"):
            get_variant("barnes_hut", "apu")

    def test_uniform_signature(self):
        variant = get_variant("matmul", "ccsvm")
        result = variant.func(SMALL, seed=3, size=6)
        assert result.verified and result.workload == "matmul"
        assert ":" in variant.ref and "(" not in variant.ref


class TestScenarioExpansion:
    def test_per_system_points_cross_product_in_order(self):
        scenario = Scenario(workload="matmul", systems=("cpu", "ccsvm"),
                            grid={"size": (8, 16)})
        points = scenario.points()
        assert [point.point_id for point in points] == [
            "system=cpu,size=8", "system=ccsvm,size=8",
            "system=cpu,size=16", "system=ccsvm,size=16"]
        assert all(point.spec == "sweep-matmul" for point in points)

    def test_points_carry_only_registry_names(self):
        scenario = Scenario(workload="matmul", systems=("cpu", "ccsvm"),
                            grid={"size": (8,)},
                            overrides={"mttop.count": 4})
        for point in scenario.points():
            assert isinstance(point.func, str)
            # The whole point pickles without any function/config object:
            # its payload is strings, numbers and dicts thereof.
            assert b"repro.workloads" not in pickle.dumps(point)
            assert not any(callable(value) for value in point.kwargs.values())

    def test_scalar_grid_values_are_single_axes(self):
        scenario = Scenario(workload="matmul", systems=("cpu",),
                            grid={"size": 8})
        (point,) = scenario.points()
        assert point.kwargs["params"] == {"size": 8}

    def test_multi_axis_product_rightmost_fastest(self):
        scenario = Scenario(workload="sparse_matmul", systems=("ccsvm",),
                            grid={"size": (16, 32), "density": (0.1, 0.2)})
        ids = [point.point_id for point in scenario.points()]
        assert ids == ["system=ccsvm,size=16,density=0.1",
                       "system=ccsvm,size=16,density=0.2",
                       "system=ccsvm,size=32,density=0.1",
                       "system=ccsvm,size=32,density=0.2"]

    def test_full_grid_swaps_axis_values(self):
        scenario = Scenario(workload="matmul", systems=("cpu",),
                            grid={"size": (8,)}, full_grid={"size": (8, 64)})
        assert len(scenario.points()) == 1
        assert len(scenario.points(full=True)) == 2

    def test_unknown_system_and_workload_rejected(self):
        with pytest.raises(SystemRegistryError):
            Scenario(workload="matmul", systems=("gpu9000",)).points()
        with pytest.raises(WorkloadRegistryError):
            Scenario(workload="quicksort", systems=("cpu",)).points()
        with pytest.raises(WorkloadRegistryError):
            # Registered workload, but no such variant for the preset.
            Scenario(workload="sparse_matmul", systems=("apu",)).points()

    def test_override_must_apply_to_some_system(self):
        with pytest.raises(ScenarioError, match="applies to none"):
            Scenario(workload="matmul", systems=("cpu",),
                     overrides={"mttop.count": 4}).points()
        # ... fine as soon as one selected system has the path.
        Scenario(workload="matmul", systems=("cpu", "ccsvm"),
                 overrides={"mttop.count": 4}).points()

    def test_override_shared_root_applies_where_the_leaf_exists(self):
        from repro.config import OverrideError

        # Both system families have a 'cpu' section; l1_hit_cycles exists
        # only on CCSVM.  The override must apply there and be skipped on
        # the APU-config systems — not fail the sweep mid-run.
        scenario = Scenario(workload="matmul", systems=("cpu", "ccsvm"),
                            grid={"size": (6,)},
                            overrides={"cpu.l1_hit_cycles": 3})
        results = scenario.run()
        assert all(row["verified"] for row in results.rows)
        # A leaf that exists nowhere is rejected *upfront* with the
        # precise field error, not per point at execution time.
        with pytest.raises(OverrideError, match="available fields"):
            Scenario(workload="matmul", systems=("cpu", "ccsvm"),
                     overrides={"cpu.bogus": 1}).points()
        # ... and so is an unparseable value for a resolvable path.
        with pytest.raises(OverrideError, match="expected an integer"):
            Scenario(workload="matmul", systems=("ccsvm",),
                     overrides={"mttop.count": "abc"}).points()

    def test_inapplicable_overrides_stay_out_of_per_system_cache_keys(self):
        from repro.harness.runner import point_cache_key

        def keys(overrides):
            scenario = Scenario(workload="matmul", systems=("cpu", "ccsvm"),
                                grid={"size": (8,)}, overrides=overrides)
            return {point.kwargs["system"]: point_cache_key(point)
                    for point in scenario.points()}

        four, eight = keys({"mttop.count": 4}), keys({"mttop.count": 8})
        # mttop.count never applies to the APU config, so the cpu points
        # must keep their cache identity while the ccsvm points change.
        assert four["cpu"] == eight["cpu"]
        assert four["ccsvm"] != eight["ccsvm"]

    def test_empty_axis_and_empty_systems_rejected(self):
        with pytest.raises(ScenarioError):
            Scenario(workload="matmul", systems=())
        with pytest.raises(ScenarioError):
            Scenario(workload="matmul", systems=("cpu",),
                     grid={"size": ()}).points()

    def test_comparison_mode_one_point_per_cell(self):
        points = get_spec("figure5").build_points(full=False)
        assert [point.point_id for point in points] == \
            ["size=8", "size=12", "size=16", "size=24", "size=32"]
        assert all(point.kwargs["systems"] == ("cpu", "apu", "ccsvm")
                   for point in points)

    def test_explicit_configs_ride_in_kwargs(self):
        scenario = Scenario(workload="matmul", systems=("ccsvm",),
                            grid={"size": (6,)})
        (point,) = scenario.points(configs={"ccsvm": SMALL})
        assert point.kwargs["config"] == SMALL
        with pytest.raises(ScenarioError, match="unselected systems"):
            scenario.points(configs={"apu": SMALL})


class TestScenarioRun:
    def test_run_produces_resultset_rows(self):
        results = Scenario(workload="matmul",
                           systems=("cpu", "ccsvm-small"),
                           grid={"size": (6,)}, seed=3).run()
        assert len(results) == 2
        assert results.column("system") == ["cpu", "ccsvm-small"]
        assert all(row["verified"] for row in results.rows)
        assert results.stats.get("harness.points") == 2

    def test_overrides_change_the_simulated_chip(self):
        base = Scenario(workload="vector_add", systems=("ccsvm-small",),
                        grid={"size": (32,)}, seed=3).run()
        shrunk = Scenario(workload="vector_add", systems=("ccsvm-small",),
                          grid={"size": (32,)}, seed=3,
                          overrides={"mttop.count": 1}).run()
        assert shrunk.rows[0]["time_ms"] != base.rows[0]["time_ms"]

    def test_points_execute_identically_through_any_entry(self):
        scenario = Scenario(workload="matmul", systems=("ccsvm-small",),
                            grid={"size": (6,)}, seed=3)
        direct = scenario.run()
        via_runner = SweepRunner().run_points(scenario.points(),
                                              spec_name=scenario.name)
        assert direct.rows == via_runner.result


class TestScenarioSpec:
    def test_spec_wraps_scenario_for_registration(self):
        scenario = Scenario(workload="matmul", systems=("cpu",),
                            grid={"size": (6,)}, seed=3,
                            name="spec-wrap-test")
        spec = scenario.spec(title="spec() smoke test")
        assert spec.name == "spec-wrap-test"
        points = spec.build_points(full=False)
        assert [point.point_id for point in points] == ["system=cpu,size=6"]
        outcome = SweepRunner().run_spec(spec)
        # The default render goes through ResultSet.from_result.
        rendered = spec.render(outcome.result)
        assert "matmul" in rendered and "time_ms" in rendered

    def test_spec_custom_render_receives_legacy_shape(self):
        scenario = Scenario(workload="matmul", systems=("cpu",),
                            grid={"size": (6,)}, seed=3, name="spec-render")
        spec = scenario.spec(title="t", render=lambda rows: f"{len(rows)} rows")
        outcome = SweepRunner().run_spec(spec)
        assert spec.render(outcome.result) == "1 rows"


class TestSevenExperimentsPorted:
    def test_every_spec_expands_to_name_only_points(self):
        for name in spec_names():
            for point in get_spec(name).build_points(full=False):
                assert isinstance(point.func, str), (name, point.point_id)
                resolve_point_func(point.func)  # resolvable by import
                assert point_func_ref(point) == point.func


class TestResultSet:
    def _multi(self):
        return ResultSet(groups={
            "by_size": [{"size": 16, "speedup": 0.136},
                        {"size": 32, "speedup": 0.141}],
            "by_density": [{"density": 0.05, "speedup": 0.141}],
        }, stats={"harness.points": 3})

    def test_rows_concatenate_groups_in_order(self):
        results = self._multi()
        assert len(results) == 3
        assert [row.get("size") for row in results.rows] == [16, 32, None]

    def test_filter_and_columns_preserve_groups(self):
        filtered = self._multi().filter(speedup=0.141)
        assert len(filtered.groups["by_size"]) == 1
        assert len(filtered.groups["by_density"]) == 1
        projected = self._multi().columns("speedup")
        assert projected.groups["by_size"] == [{"speedup": 0.136},
                                               {"speedup": 0.141}]

    def test_filter_predicate(self):
        results = self._multi().filter(lambda row: row.get("size") == 16)
        assert results.rows == [{"size": 16, "speedup": 0.136}]

    def test_csv_round_trip_single_group(self):
        original = ResultSet(groups={"rows": [
            {"size": 8, "time_ms": 0.136, "verified": True, "tag": "x,y"},
            {"size": 16, "time_ms": 2.5, "verified": False, "tag": "plain"},
        ]})
        reloaded = ResultSet.from_csv(original.to_csv())
        assert reloaded.groups == original.groups

    def test_csv_round_trip_preserves_panel_labels(self):
        original = self._multi()
        reloaded = ResultSet.from_csv(original.to_csv())
        assert list(reloaded.groups) == ["by_size", "by_density"]
        assert reloaded.groups == original.groups

    def test_csv_round_trip_preserves_embedded_newlines(self):
        original = ResultSet(groups={
            "rows": [{"note": "line one\nline two", "x": 1}]})
        reloaded = ResultSet.from_csv(original.to_csv())
        assert reloaded.groups == original.groups

    def test_csv_cell_starting_with_hash_is_not_a_group_header(self):
        original = ResultSet(groups={
            "by_size": [{"note": "prefix\n# by_density\nsuffix", "x": 2}]})
        reloaded = ResultSet.from_csv(original.to_csv())
        assert list(reloaded.groups) == ["by_size"]
        assert reloaded.groups == original.groups

    def test_parse_scalar_rules(self):
        from repro.api import parse_scalar

        assert parse_scalar("8") == 8
        assert parse_scalar("0.5") == 0.5
        assert parse_scalar("true") is True
        assert parse_scalar("False") is False
        assert parse_scalar("1") == 1  # numbers win over booleans
        assert parse_scalar("ccsvm") == "ccsvm"

    def test_csv_round_trip_keeps_emptied_panels(self):
        # A filter() can drain one panel of a multi-panel set; its label
        # must still survive the round trip.
        filtered = self._multi().filter(size=16)
        assert filtered.groups["by_density"] == []
        reloaded = ResultSet.from_csv(filtered.to_csv())
        assert reloaded.groups == filtered.groups

    def test_json_round_trip(self):
        original = self._multi()
        reloaded = ResultSet.from_json(original.to_json())
        assert reloaded.groups == original.groups
        assert reloaded.stats == original.stats

    def test_formatted_csv_matches_report_style(self):
        results = ResultSet(groups={"rows": [{"ok": True, "value": 0.0001}]})
        assert results.to_csv(formatted=True) == "ok,value\nyes,1.000e-04"

    def test_render_labels_panels(self):
        text = self._multi().render(title="sparse")
        assert "sparse — by_size" in text and "sparse — by_density" in text

    def test_from_outcome_single_panel(self):
        outcome = SweepRunner().run("table2")
        results = ResultSet.from_outcome(outcome)
        assert list(results.groups) == ["rows"]
        assert results.stats.get("harness.points") == 1

    def test_from_result_rejects_garbage(self):
        with pytest.raises(TypeError):
            ResultSet.from_result(42)

    def test_from_json_rejects_missing_groups(self):
        with pytest.raises(ValueError):
            ResultSet.from_json("[1, 2]")
