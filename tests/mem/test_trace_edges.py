"""Trace-format edge cases: odd streams round-trip byte-identically.

The trace format is the contract between capture, full-simulation replay,
and the cache-only replayer — a stream shape that survives capture must
survive ``save -> load -> save`` with identical bytes, including the
format-2 global interleaving order.  These tests pin the awkward shapes:
device threads that issued nothing, atomics-only streams, and interleaved
streams racing on the same (shootdown-prone) addresses.
"""

import json

import pytest

from repro.cores.isa import (
    AtomicAdd,
    AtomicCAS,
    AtomicDec,
    AtomicInc,
    Free,
    Load,
    Malloc,
    Store,
)
from repro.mem.trace import TRACE_FORMAT, Trace, TraceError

PAGE = 4096


def round_trip_bytes(trace, tmp_path):
    """``save -> load -> save``; return both files' bytes."""
    first = tmp_path / "first.trace.json"
    second = tmp_path / "second.trace.json"
    trace.save(str(first))
    Trace.load(str(first)).save(str(second))
    return first.read_bytes(), second.read_bytes()


class TestEdgeStreams:
    def test_empty_device_stream(self, tmp_path):
        """A device thread that issued no operations is kept, not dropped:
        thread existence is observable (scheduling, barriers)."""
        trace = Trace(workload="edge", hosts=[[Load(PAGE)]],
                      tasks={0: {0: [], 1: [Store(PAGE, 7)]}})
        first, second = round_trip_bytes(trace, tmp_path)
        assert first == second
        loaded = Trace.load(str(tmp_path / "first.trace.json"))
        assert loaded.tasks[0][0] == []
        assert loaded.operation_count == 2

    def test_empty_trace(self, tmp_path):
        first, second = round_trip_bytes(Trace(), tmp_path)
        assert first == second
        loaded = Trace.load(str(tmp_path / "first.trace.json"))
        assert loaded.operation_count == 0
        assert loaded.effective_order() == []
        assert list(loaded.interleaved()) == []

    def test_atomics_only_stream(self, tmp_path):
        """Every atomic flavour, negative deltas included, survives the
        codec exactly."""
        ops = [AtomicAdd(PAGE, -3), AtomicInc(PAGE + 8),
               AtomicDec(PAGE + 16), AtomicCAS(PAGE + 24, 0, 99),
               AtomicAdd(PAGE + 24, 2 ** 40)]
        trace = Trace(workload="edge", hosts=[list(ops)])
        first, second = round_trip_bytes(trace, tmp_path)
        assert first == second
        loaded = Trace.load(str(tmp_path / "first.trace.json"))
        assert loaded.hosts[0] == ops

    def test_interleaved_shootdown_racing_addresses(self, tmp_path):
        """Two streams racing on one page around its Free: the recorded
        global order (host, device, host, device, ...) must survive the
        round trip exactly — replaying it canonically (all-host-then-
        device) would put accesses on the wrong side of the shootdown."""
        racing = PAGE * 8
        host = [Malloc(PAGE), Store(racing, 1), Load(racing), Free(racing)]
        device = [Load(racing), Store(racing + 8, 2), Load(racing + 8)]
        order = [("h", 0), ("t", 0, 0), ("h", 0), ("t", 0, 0),
                 ("h", 0), ("t", 0, 0), ("h", 0)]
        trace = Trace(workload="edge", hosts=[host],
                      tasks={0: {0: device}}, order=list(order))
        first, second = round_trip_bytes(trace, tmp_path)
        assert first == second
        loaded = Trace.load(str(tmp_path / "first.trace.json"))
        assert loaded.effective_order() == order
        assert [op for _, op in loaded.interleaved()] == \
            [host[0], device[0], host[1], device[1],
             host[2], device[2], host[3]]


class TestFormatCompat:
    def test_v1_trace_loads_with_canonical_order(self, tmp_path):
        """Format-1 files (no streams/order tables) still load; their
        replay order falls back to hosts-then-tasks."""
        trace = Trace(workload="edge", hosts=[[Load(PAGE), Store(PAGE, 1)]],
                      tasks={0: {0: [Load(PAGE)]}})
        data = trace.to_dict()
        data["format"] = 1
        del data["streams"]
        del data["order"]
        path = tmp_path / "v1.trace.json"
        path.write_text(json.dumps(data), encoding="utf-8")
        loaded = Trace.load(str(path))
        assert loaded.effective_order() == \
            [("h", 0), ("h", 0), ("t", 0, 0)]
        # Re-saving upgrades to the current format, byte-stably.
        upgraded = tmp_path / "v2.trace.json"
        loaded.save(str(upgraded))
        assert json.loads(upgraded.read_text())["format"] == TRACE_FORMAT

    def test_unknown_format_rejected(self, tmp_path):
        path = tmp_path / "bad.trace.json"
        path.write_text(json.dumps({"format": 99}), encoding="utf-8")
        with pytest.raises(TraceError, match="unsupported trace format"):
            Trace.load(str(path))

    def test_order_referencing_unknown_stream_rejected(self):
        with pytest.raises(TraceError, match="unknown stream"):
            Trace.from_dict({"format": TRACE_FORMAT,
                             "hosts": [[["ld", PAGE]]],
                             "streams": [["h", 0]], "order": [0, 3]})

    def test_partial_order_falls_back_to_canonical(self):
        """A hand-edited order that does not cover every op is ignored in
        favour of the canonical order rather than replaying half a run."""
        trace = Trace(hosts=[[Load(PAGE), Load(PAGE + 8)]],
                      order=[("h", 0)])
        assert trace.effective_order() == [("h", 0), ("h", 0)]
