"""Cache-only replay produces the same hierarchy counters as full simulation.

The gate of the cache-only replay engine: for a host-only captured trace,
``repro.mem.replay`` must report byte-identical per-level hit/miss/
writeback/coherence counters to a full ``trace_replay`` simulation of the
same stream, on every hierarchy-shape preset.  Only the counters of the
machinery the replayer deliberately omits — cores, the sim engine, the
xthreads runtime, the scheduler — may differ.
"""

import json

import pytest

from repro.mem.replay import replay_trace, replay_trace_flat
from repro.mem.trace import TraceError
from repro.systems import system_config
from repro.workloads.registry import get_variant
from repro.workloads.trace_replay import (
    capture_trace,
    run_replay,
    run_replay_flat,
)

#: Counter namespaces owned by the machinery cache-only replay omits.
_NON_HIERARCHY_PREFIXES = ("cpu", "mttop", "engine.", "xthreads.", "mifd.",
                           "sched")

#: Presets the equivalence gate must hold on (ISSUE acceptance list).
_CCSVM_SHAPES = ("ccsvm", "ccsvm-l3", "ccsvm-no-tlb")


def hierarchy_counters(counters):
    """Drop core/engine/runtime counters, keep every hierarchy counter."""
    return {name: value for name, value in counters.items()
            if not name.startswith(_NON_HIERARCHY_PREFIXES)}


def canonical(counters):
    return json.dumps(counters, sort_keys=True).encode()


@pytest.fixture(scope="module")
def host_trace(tmp_path_factory):
    """One captured host-only mixed reference stream, shared by the gate."""
    path = tmp_path_factory.mktemp("traces") / "mem_stream.trace.json"
    trace = capture_trace("mem_stream", seed=11, path=str(path),
                          ops=600, words=512)
    assert trace.meta["verified"]
    assert not trace.tasks
    return str(path)


@pytest.fixture(scope="module")
def device_trace(tmp_path_factory):
    """A captured trace with device (mthread) streams and barriers."""
    path = tmp_path_factory.mktemp("traces") / "vector_add.trace.json"
    capture_trace("vector_add", seed=5, size=64, path=str(path))
    return str(path)


class TestCCSVMGate:
    @pytest.mark.parametrize("preset", _CCSVM_SHAPES)
    def test_counters_match_full_simulation(self, host_trace, preset):
        config = system_config(preset)
        full = run_replay(host_trace, config=config)
        fast = replay_trace(host_trace, config)
        assert canonical(hierarchy_counters(full.counters)) == \
            canonical(hierarchy_counters(fast.stats_snapshot()))

    @pytest.mark.parametrize("preset", _CCSVM_SHAPES)
    def test_registry_variant_matches_full_simulation(self, host_trace,
                                                      preset):
        config = system_config(preset)
        full = get_variant("trace_replay", "ccsvm").func(
            config, trace=host_trace)
        fast = get_variant("cache_replay", "ccsvm").func(
            config, trace=host_trace)
        assert canonical(hierarchy_counters(full.counters)) == \
            canonical(hierarchy_counters(fast.counters))
        assert fast.verified
        assert fast.dram_accesses == full.dram_accesses

    def test_scalar_engine_matches_batch_engine(self, host_trace):
        config = system_config("ccsvm")
        batch = replay_trace(host_trace, config, engine="batch")
        scalar = replay_trace(host_trace, config, engine="scalar")
        assert canonical(batch.stats_snapshot()) == \
            canonical(scalar.stats_snapshot())
        assert batch.time_ps == scalar.time_ps
        assert batch.operations == scalar.operations


class TestAPUGate:
    """The baseline machine's presets byte-compare through the flat lane."""

    #: The APU full sim counts per-op instruction/malloc bookkeeping the
    #: cache-only walker has no reason to replicate.
    @staticmethod
    def _filtered(counters):
        return {name: value for name, value in counters.items()
                if ".instructions" not in name and ".mallocs" not in name}

    def test_counters_match_full_simulation(self, host_trace):
        config = system_config("apu-shared-l2")
        full = run_replay_flat(host_trace, config=config)
        fast = replay_trace_flat(host_trace, config)
        assert canonical(self._filtered(full.counters)) == \
            canonical(self._filtered(fast.stats_snapshot()))

    def test_registry_variant_matches_full_simulation(self, host_trace):
        config = system_config("apu-shared-l2")
        full = get_variant("trace_replay", "pthreads").func(
            config, trace=host_trace)
        fast = get_variant("cache_replay", "pthreads").func(
            config, trace=host_trace)
        assert canonical(self._filtered(full.counters)) == \
            canonical(self._filtered(fast.counters))
        assert fast.dram_accesses == full.dram_accesses

    def test_rejects_device_traces(self, device_trace):
        with pytest.raises(TraceError, match="host-only"):
            replay_trace_flat(device_trace)


class TestDeviceTraces:
    """Device streams replay deterministically; batch == scalar exactly.

    Spin-wait re-polls are recorded once, so a device replay is not
    op-count-identical to the capture run — but it is a fixed reference
    stream, and both replay engines must walk it to the same counters.
    """

    def test_batch_equals_scalar(self, device_trace):
        config = system_config("ccsvm")
        batch = replay_trace(device_trace, config, engine="batch")
        scalar = replay_trace(device_trace, config, engine="scalar")
        assert canonical(batch.stats_snapshot()) == \
            canonical(scalar.stats_snapshot())
        assert batch.time_ps == scalar.time_ps

    def test_replay_is_deterministic(self, device_trace):
        config = system_config("ccsvm-l3")
        first = replay_trace(device_trace, config)
        second = replay_trace(device_trace, config)
        assert canonical(first.stats_snapshot()) == \
            canonical(second.stats_snapshot())
        assert first.time_ps == second.time_ps
        assert first.dram_accesses == second.dram_accesses

    def test_touches_the_l3_when_enabled(self, device_trace):
        stats = replay_trace(device_trace,
                             system_config("ccsvm-l3")).stats_snapshot()
        assert any(name.startswith("l3.") and value
                   for name, value in stats.items())
