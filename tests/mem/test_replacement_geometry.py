"""Replacement policies and cache geometry, driven through *both* machines.

The same `repro.mem` levels underlie the CCSVM chip's coherent L1s and
the APU baseline's private hierarchies, so one set of cases covers both
assemblies: each case is expressed as a dotted-path configuration
override and asserted on the machine-level behaviour, proving the policy
and the geometry validation actually reach the built tag stores on each
machine (not just the standalone cache unit).
"""

import pytest

from repro.baseline.apu import AMDAPU
from repro.cache.replacement import (
    LRUReplacement,
    PseudoLRUReplacement,
    RandomReplacement,
)
from repro.config import amd_apu_system, apply_overrides, small_ccsvm_system
from repro.core.chip import CCSVMChip
from repro.errors import CacheError, ConfigurationError

POLICY_CLASSES = {"lru": LRUReplacement, "plru": PseudoLRUReplacement,
                  "random": RandomReplacement}

POLICIES = sorted(POLICY_CLASSES)


def _ccsvm_l1(policy):
    config = apply_overrides(small_ccsvm_system(),
                             {"cpu.l1_replacement": policy})
    chip = CCSVMChip(config)
    return chip.coherence._l1s["cpu0"].cache


def _apu_l1(policy):
    config = apply_overrides(amd_apu_system(), {"cpu.l1_replacement": policy})
    return AMDAPU(config).cpu_cores[0].hierarchy.l1


BUILDERS = {"ccsvm": _ccsvm_l1, "apu": _apu_l1}


class TestReplacementThroughBothMachines:
    @pytest.mark.parametrize("machine", sorted(BUILDERS))
    @pytest.mark.parametrize("policy", POLICIES)
    def test_override_selects_policy_in_built_l1(self, machine, policy):
        cache = BUILDERS[machine](policy)
        assert cache.config.replacement == policy
        assert all(isinstance(p, POLICY_CLASSES[policy])
                   for p in cache._policies)

    @pytest.mark.parametrize("machine", sorted(BUILDERS))
    def test_lru_victim_order_in_built_l1(self, machine):
        cache = BUILDERS[machine]("lru")
        assoc = cache.config.associativity
        line = cache.config.line_size
        way_stride = cache._num_sets * line  # same set, different tags
        lines = [way * way_stride for way in range(assoc + 1)]
        for address in lines[:assoc]:
            cache.insert(address)
        cache.lookup(lines[0])  # touch the oldest: next victim is lines[1]
        _, victim = cache.insert(lines[assoc])
        assert victim is not None
        assert victim.line_address == lines[1]

    @pytest.mark.parametrize("machine", sorted(BUILDERS))
    def test_random_policy_is_seeded_and_reproducible(self, machine):
        def victim_sequence():
            cache = BUILDERS[machine]("random")
            assoc = cache.config.associativity
            way_stride = cache._num_sets * cache.config.line_size
            victims = []
            for index in range(assoc * 3):
                _, victim = cache.insert(index * way_stride)
                if victim is not None:
                    victims.append(victim.line_address)
            return victims

        assert victim_sequence() == victim_sequence()

    @pytest.mark.parametrize("machine", sorted(BUILDERS))
    def test_unknown_policy_rejected_at_config_time(self, machine):
        base = small_ccsvm_system() if machine == "ccsvm" else amd_apu_system()
        with pytest.raises(ConfigurationError, match="replacement"):
            apply_overrides(base, {"cpu.l1_replacement": "fifo"})


class TestGeometryThroughBothMachines:
    def test_ccsvm_rejects_non_power_of_two_sets(self):
        # 24 KiB / (4 * 64) = 96 sets: not a power of two.  The shared
        # CacheConfig validation fires while the chip assembles its L1s.
        config = apply_overrides(small_ccsvm_system(),
                                 {"cpu.l1_size_bytes": "24KiB"})
        with pytest.raises(CacheError, match="power of two"):
            CCSVMChip(config)

    def test_apu_rejects_non_power_of_two_sets(self):
        config = apply_overrides(amd_apu_system(),
                                 {"cpu.l1_size_bytes": "24KiB"})
        with pytest.raises(CacheError, match="power of two"):
            AMDAPU(config)

    def test_ccsvm_rejects_indivisible_size(self):
        config = apply_overrides(small_ccsvm_system(),
                                 {"cpu.l1_size_bytes": 1000})
        with pytest.raises(CacheError, match="not divisible"):
            CCSVMChip(config)

    def test_apu_rejects_indivisible_size(self):
        config = apply_overrides(amd_apu_system(),
                                 {"cpu.l2_size_bytes": 1000})
        with pytest.raises(CacheError, match="not divisible"):
            AMDAPU(config)
