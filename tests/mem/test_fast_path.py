"""The TLB+L1 fast path is bit-identical to the legacy access path."""

import pytest

from repro.config import small_ccsvm_system, tiny_caches_ccsvm_system
from repro.core.chip import CCSVMChip
from repro.errors import CoherenceError
from repro.workloads.registry import get_variant


def _run_workload(config, fast):
    result = get_variant("matmul", "ccsvm").func(config, seed=7, size=8)
    assert result.verified
    return result


class TestWorkloadEquivalence:
    @pytest.mark.parametrize("config_factory", [small_ccsvm_system,
                                                tiny_caches_ccsvm_system])
    def test_matmul_identical_time_and_counters(self, config_factory,
                                                monkeypatch):
        original = CCSVMChip.__init__
        outcomes = {}
        for fast in (True, False):
            # Workload variants build their own chips; flip the default.
            def patched(self, *args, _fast=fast, **kwargs):
                kwargs.setdefault("fast_access_path", _fast)
                original(self, *args, **kwargs)

            monkeypatch.setattr(CCSVMChip, "__init__", patched)
            result = _run_workload(config_factory(), fast)
            outcomes[fast] = (result.time_ps, result.dram_accesses,
                              result.counters)
        assert outcomes[True] == outcomes[False]


class TestFastPathMechanics:
    def _port(self, fast=True):
        chip = CCSVMChip(small_ccsvm_system(), fast_access_path=fast)
        chip.create_process("fast_path_test")
        return chip, chip.cpu_cores[0].memory_port

    def test_probe_miss_leaves_miss_counting_to_slow_path(self):
        chip, port = self._port()
        vaddr = chip.malloc(64)
        port.load(vaddr)   # cold: walk + fill
        l1 = "l1d.cpu0"
        misses = chip.stats.get(f"{l1}.misses")
        hits = chip.stats.get(f"{l1}.hits")
        port.load(vaddr)   # fast path: one hit, no phantom miss
        assert chip.stats.get(f"{l1}.hits") == hits + 1
        assert chip.stats.get(f"{l1}.misses") == misses

    def test_store_upgrade_goes_through_shared_transaction(self):
        chip, port0 = self._port()
        port1 = chip.mttop_cores[0].memory_port
        port1.set_address_space(chip.process_space)
        vaddr = chip.malloc(64)
        port0.load(vaddr)
        port1.load(vaddr)          # line now SHARED in both L1s
        upgrades = chip.stats.get("coherence.upgrades")
        port0.store(vaddr, 7)      # fast path hit -> upgrade transaction
        assert chip.stats.get("coherence.upgrades") == upgrades + 1
        value, _ = port0.load(vaddr)
        assert value == 7

    def test_unknown_node_still_raises(self):
        chip, port = self._port()
        with pytest.raises(CoherenceError):
            chip.coherence.l1_load_hit_ps("ghost", 0x1000)
        with pytest.raises(CoherenceError):
            chip.coherence.l1_store_hit_ps("ghost", 0x1000)
