"""The hierarchy-shape presets: ccsvm-l3, ccsvm-no-tlb, apu-shared-l2.

Shapes are configuration, not code: every test here drives a stock
machine assembly through `repro.config` dataclasses (directly or via the
`repro.systems` presets and dotted-path overrides) and asserts on the
behavioural signature of the reshaped hierarchy.
"""

import pytest

from repro.api import Scenario
from repro.baseline.apu import AMDAPU
from repro.config import (
    amd_apu_system,
    apply_overrides,
    apu_shared_l2_system,
    ccsvm_l3_system,
    ccsvm_no_tlb_system,
    small_ccsvm_system,
)
from repro.core.chip import CCSVMChip
from repro.systems import get_system, system_config
from repro.workloads.registry import get_variant


def _small_l3(**extra):
    overrides = {"l3.enabled": True, "l3.total_size_bytes": "64KiB"}
    overrides.update(extra)
    return apply_overrides(small_ccsvm_system(), overrides)


class TestPresetRegistration:
    def test_shape_presets_registered(self):
        assert get_system("ccsvm-l3").variant == "ccsvm"
        assert get_system("ccsvm-no-tlb").variant == "ccsvm"
        assert get_system("apu-shared-l2").variant == "pthreads"

    def test_factories_reshape_the_hierarchy(self):
        assert ccsvm_l3_system().l3.enabled
        assert not ccsvm_no_tlb_system().tlb_enabled
        shared = apu_shared_l2_system()
        assert shared.cpu.l2_shared
        assert shared.cpu.l2_size_bytes == 4 * 1024 * 1024

    def test_shapes_reachable_by_override_on_any_preset(self):
        config = system_config("ccsvm-small", {"l3.enabled": True,
                                               "tlb_enabled": False})
        assert config.l3.enabled and not config.tlb_enabled


class TestCCSVML3:
    def test_l3_serves_refills_without_dram(self):
        # A 16 KiB working set spills the 1 KiB L1 and the 8 KiB L2 but
        # stays inside the 64 KiB L3: the second pass must be served
        # entirely on-chip.
        small = apply_overrides(_small_l3(), {"cpu.l1_size_bytes": "1KiB",
                                              "l2.total_size_bytes": "8KiB"})
        chip = CCSVMChip(small)
        chip.create_process("l3_test")
        port = chip.cpu_cores[0].memory_port
        footprint = 16 * 1024
        base = chip.malloc(footprint)
        for offset in range(0, footprint, 64):
            port.load(base + offset)
        dram_reads_before = chip.stats.get("dram.reads")
        for offset in range(0, footprint, 64):
            port.load(base + offset)
        assert chip.stats.get("coherence.l3_hits") > 0
        # The second pass is served by L2 + L3; no new off-chip reads.
        assert chip.stats.get("dram.reads") == dram_reads_before

    def test_l3_reduces_dram_accesses_for_spilling_working_set(self):
        run = get_variant("matmul", "ccsvm").func
        base_cfg = apply_overrides(small_ccsvm_system(),
                                   {"cpu.l1_size_bytes": "1KiB",
                                    "mttop.l1_size_bytes": "1KiB",
                                    "l2.total_size_bytes": "2KiB"})
        l3_cfg = apply_overrides(base_cfg, {"l3.enabled": True,
                                            "l3.total_size_bytes": "64KiB"})
        plain = run(base_cfg, seed=7, size=12)
        with_l3 = run(l3_cfg, seed=7, size=12)
        assert plain.verified and with_l3.verified
        assert with_l3.dram_accesses < plain.dram_accesses

    def test_disabled_l3_builds_no_level(self):
        chip = CCSVMChip(small_ccsvm_system())
        assert chip.l3_level is None
        assert chip.coherence.l3 is None


class TestCCSVMNoTLB:
    def test_ports_have_no_tlb_and_every_access_walks(self):
        config = apply_overrides(small_ccsvm_system(), {"tlb_enabled": False})
        chip = CCSVMChip(config)
        chip.create_process("no_tlb_test")
        port = chip.cpu_cores[0].memory_port
        assert port.tlb is None
        vaddr = chip.malloc(64)
        port.load(vaddr)
        walks = chip.stats.get("walker.cpu0.walks")
        port.load(vaddr)
        assert chip.stats.get("walker.cpu0.walks") == walks + 1
        assert chip.stats.get("tlb.cpu0.hits") == 0

    def test_no_tlb_costs_time_but_computes_same_result(self):
        run = get_variant("matmul", "ccsvm").func
        base = run(small_ccsvm_system(), seed=7, size=8)
        no_tlb = run(apply_overrides(small_ccsvm_system(),
                                     {"tlb_enabled": False}),
                     seed=7, size=8)
        assert no_tlb.verified
        assert no_tlb.time_ps > base.time_ps
        assert no_tlb.dram_accesses == base.dram_accesses


class TestAPUSharedL2:
    def test_cores_share_one_l2_level(self):
        apu = AMDAPU(apu_shared_l2_system())
        tag_stores = {id(core.hierarchy.l2) for core in apu.cpu_cores}
        assert len(tag_stores) == 1
        assert apu.cpu_cores[0].hierarchy.l2 is not None

    def test_private_default_keeps_separate_l2s(self):
        apu = AMDAPU(amd_apu_system())
        tag_stores = {id(core.hierarchy.l2) for core in apu.cpu_cores}
        assert len(tag_stores) == len(apu.cpu_cores)

    def test_cross_core_refill_hits_the_pool(self):
        apu = AMDAPU(apu_shared_l2_system())
        first, second = apu.cpu_cores[0].hierarchy, apu.cpu_cores[1].hierarchy
        first.access(0x8000, is_write=False)
        reads_before = apu.dram.total_accesses
        second.access(0x8000, is_write=False)
        assert apu.dram.total_accesses == reads_before
        assert apu.stats.get("apu_cpu_shared.l2.hits") == 1


class TestShapePresetsEndToEnd:
    @pytest.mark.parametrize("system", ["apu-shared-l2", "ccsvm-l3"])
    def test_barnes_hut_runs_on_shape_presets(self, system):
        preset = get_system(system)
        result = get_variant("barnes_hut", preset.variant).func(
            system_config(system), seed=5, bodies=8, timesteps=1)
        assert result.verified

    def test_scenario_sweep_over_both_shape_presets(self):
        results = Scenario(workload="barnes_hut",
                           systems=("apu-shared-l2", "ccsvm-l3"),
                           grid={"bodies": (8,)},
                           params={"timesteps": 1}).run()
        assert len(results) == 2
        assert all(row["verified"] for row in results.rows)
        assert {row["system"] for row in results.rows} == {"apu-shared-l2",
                                                           "ccsvm-l3"}
