"""Tests for the unified memory-hierarchy levels and private stacks."""

import pytest

from repro.errors import CacheError, MemoryError_
from repro.mem.levels import CacheLevel, DRAMLevel, LevelSpec, build_cache
from repro.mem.private import PrivateHierarchy
from repro.memory.dram import DRAMModel
from repro.sim.stats import StatsRegistry

LINE = 64


def _level(label, size, assoc=2, hit_ps=100, replacement="lru", stats=None,
           name=None):
    spec = LevelSpec(label=label, size_bytes=size, associativity=assoc,
                     hit_latency_ps=hit_ps, line_size=LINE,
                     replacement=replacement)
    return CacheLevel(spec, name=name or f"h.{label}", stats=stats)


class TestLevelSpec:
    def test_build_validates_geometry(self):
        # 3 sets is not a power of two: the shared CacheConfig validation
        # fires at build time, whatever machine the level is destined for.
        with pytest.raises(CacheError):
            build_cache(LevelSpec("l1", size_bytes=3 * 2 * LINE,
                                  associativity=2, line_size=LINE), "bad")

    def test_build_validates_replacement(self):
        with pytest.raises(CacheError, match="unknown replacement"):
            _level("l1", 4 * LINE, replacement="fifo")

    def test_cache_level_carries_timing(self):
        level = _level("l2", 8 * LINE, hit_ps=1234)
        assert level.hit_latency_ps == 1234
        assert level.label == "l2"
        assert level.cache.config.size_bytes == 8 * LINE

    def test_dram_level_reads_and_writes_lines(self):
        stats = StatsRegistry()
        dram = DRAMLevel(DRAMModel(latency_ns=10.0, stats=stats), line_size=LINE)
        assert dram.read() == 10_000
        assert dram.write() == 10_000
        assert stats.get("dram.bytes_read") == LINE
        assert stats.get("dram.bytes_written") == LINE


class TestPrivateHierarchy:
    def _stack(self, labels_sizes, stats=None):
        stats = stats if stats is not None else StatsRegistry()
        dram = DRAMModel(latency_ns=50.0, stats=stats)
        levels = [_level(label, size, stats=stats)
                  for label, size in labels_sizes]
        return PrivateHierarchy("h", dram, levels, stats=stats,
                                line_size=LINE), stats, dram

    def test_needs_at_least_one_level(self):
        with pytest.raises(MemoryError_):
            PrivateHierarchy("empty", DRAMModel(latency_ns=50.0), [])

    def test_three_level_miss_fills_every_level(self):
        hierarchy, stats, dram = self._stack(
            [("l1", 2 * LINE), ("l2", 4 * LINE), ("l3", 8 * LINE)])
        miss = hierarchy.access(0x1000, is_write=False)
        assert dram.total_accesses == 1
        assert stats.get("h.l1.fills") == 1
        assert stats.get("h.l2.fills") == 1
        assert stats.get("h.l3.fills") == 1
        # All three hit latencies plus the DRAM access are on the path.
        assert miss == 3 * 100 + 50_000
        hit = hierarchy.access(0x1000, is_write=False)
        assert hit == 100
        assert dram.total_accesses == 1

    def test_mid_level_hit_fills_only_levels_above(self):
        hierarchy, stats, dram = self._stack(
            [("l1", 2 * LINE), ("l2", 4 * LINE), ("l3", 8 * LINE)])
        hierarchy.access(0x0, False)
        hierarchy.access(0x40, False)
        hierarchy.access(0x80, False)  # evicts 0x0 from the 2-line L1
        reads_before = dram.total_accesses
        latency = hierarchy.access(0x0, False)  # L1 miss, L2 hit
        assert dram.total_accesses == reads_before
        assert latency == 2 * 100
        assert stats.get("h.l3.fills") == 3  # no new L3 fill on the L2 hit

    def test_dirty_victims_cascade_down_the_stack(self):
        stats = StatsRegistry()
        dram = DRAMModel(latency_ns=50.0, stats=stats)
        levels = [_level("l1", LINE, assoc=1, stats=stats),
                  _level("l2", LINE, assoc=1, stats=stats)]
        hierarchy = PrivateHierarchy("h", dram, levels, stats=stats,
                                     line_size=LINE)
        hierarchy.access(0x0, is_write=True)
        hierarchy.access(0x40, is_write=True)   # evicts dirty 0x0 -> L2
        assert stats.get("h.l1_writebacks") == 1
        hierarchy.access(0x80, is_write=True)   # 0x40 -> L2 evicts dirty 0x0
        assert stats.get("h.l2_writebacks") == 1
        assert stats.get("dram.writes") == 1

    def test_flush_reports_and_writes_dirty_lines(self):
        hierarchy, stats, dram = self._stack([("l1", 2 * LINE), ("l2", 4 * LINE)])
        hierarchy.access(0x0, is_write=True)
        hierarchy.access(0x40, is_write=False)
        flushed, dirty = hierarchy.flush()
        assert flushed >= 2 and dirty == 1
        assert stats.get("dram.writes") == 1
        assert stats.get("h.flush_dirty_lines") == 1

    def test_shared_level_between_two_stacks(self):
        stats = StatsRegistry()
        dram = DRAMModel(latency_ns=50.0, stats=stats)
        shared = _level("l2", 8 * LINE, stats=stats, name="pool.l2")
        a = PrivateHierarchy("a", dram,
                             [_level("l1", 2 * LINE, stats=stats, name="a.l1"),
                              shared], stats=stats, line_size=LINE)
        b = PrivateHierarchy("b", dram,
                             [_level("l1", 2 * LINE, stats=stats, name="b.l1"),
                              shared], stats=stats, line_size=LINE)
        a.access(0x1000, is_write=False)          # fills pool.l2 via a
        reads_before = dram.total_accesses
        b.access(0x1000, is_write=False)          # b's L1 misses, pool hits
        assert dram.total_accesses == reads_before
        assert stats.get("pool.l2.hits") == 1
