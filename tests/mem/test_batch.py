"""The batched access engine is bit-identical to the scalar MOESI path.

Every test streams the same randomized mixed operation sequence through a
batched port and a scalar port on identically-built systems, and demands
identical values, identical per-op latencies, and an identical full
statistics registry — the batch engine's contract is pure speed, zero
observable difference.
"""

import random

import pytest

from repro.baseline.apu import AMDAPU
from repro.config import small_ccsvm_system, tiny_caches_ccsvm_system
from repro.core.chip import CCSVMChip
from repro.mem.batch import (
    OP_ATOMIC_ADD,
    OP_ATOMIC_CAS,
    OP_LOAD,
    OP_STORE,
    split_ops,
)
from repro.sim import columnar

KERNELS = ["python"] + (["numpy"] if columnar.USING_NUMPY else [])


@pytest.fixture(params=KERNELS)
def kernel(request):
    """Run the test body under each available columnar kernel."""
    if request.param == "numpy":
        columnar.use_numpy_kernel()
    else:
        columnar.use_python_kernel()
    yield request.param
    if not columnar.use_numpy_kernel():
        columnar.use_python_kernel()


# --------------------------------------------------------------------------- #
# Randomized op streams
# --------------------------------------------------------------------------- #
def mixed_ops(rng, regions, count, page_bytes=4096):
    """A mixed load/store/atomic stream over several allocated regions.

    Touches cold pages (page-fault residue), revisits hot words (the
    columnar path), crosses lines and pages (run boundaries), and stores
    negative values (sign conversion).
    """
    words_per_region = page_bytes // 8
    ops = []
    for _ in range(count):
        vaddr = rng.choice(regions) + 8 * rng.randrange(words_per_region)
        roll = rng.random()
        if roll < 0.50:
            ops.append((OP_LOAD, vaddr, 0, 0))
        elif roll < 0.84:
            ops.append((OP_STORE, vaddr, rng.randrange(-2**40, 2**40), 0))
        elif roll < 0.93:
            ops.append((OP_ATOMIC_ADD, vaddr, rng.randrange(-5, 6), 0))
        else:
            ops.append((OP_ATOMIC_CAS, vaddr, 0, rng.randrange(1, 100)))
    return ops


def chunked(ops, rng):
    """Split a stream into randomly-sized run_batch calls (1..64 ops)."""
    chunks = []
    index = 0
    while index < len(ops):
        size = rng.randrange(1, 65)
        chunks.append(ops[index:index + size])
        index += size
    return chunks


# --------------------------------------------------------------------------- #
# CCSVM (MOESI + TLB) equivalence
# --------------------------------------------------------------------------- #
def _ccsvm_stream(config, batch, ops_seed, disturb):
    """Run one deterministic stream; return (values, latencies, stats)."""
    rng = random.Random(ops_seed)
    chip = CCSVMChip(config)
    chip.create_process("batch_eq")
    regions = [chip.malloc(4096) for _ in range(6)]
    port = chip.cpu_cores[0].memory_port
    port.batch_enabled = batch
    other = chip.mttop_cores[0].memory_port
    other.set_address_space(chip.process_space)

    ops = mixed_ops(rng, regions, 1500)
    values, latencies = [], []
    for number, chunk in enumerate(chunked(ops, rng)):
        if disturb and number % 7 == 3:
            # Another core pulls a line SHARED mid-stream, so batched
            # stores hit the MOESI upgrade fallback.
            other.load(chunk[0][1])
        if disturb and number % 11 == 5 and port.tlb is not None:
            # A TLB invalidation lands between gather and the next batch —
            # the shootdown race the residue path must absorb.
            port.tlb.invalidate(chunk[-1][1])
        chunk_values, chunk_latencies = port.run_batch(chunk)
        values.extend(chunk_values)
        latencies.extend(chunk_latencies)
    return values, latencies, chip.stats.to_dict()


class TestCCSVMEquivalence:
    @pytest.mark.parametrize("config_factory", [small_ccsvm_system,
                                                tiny_caches_ccsvm_system])
    @pytest.mark.parametrize("disturb", [False, True])
    def test_random_stream_bit_identical(self, config_factory, disturb,
                                         kernel):
        outcomes = {
            batch: _ccsvm_stream(config_factory(), batch, ops_seed=1234,
                                 disturb=disturb)
            for batch in (True, False)
        }
        assert outcomes[True][0] == outcomes[False][0]   # values
        assert outcomes[True][1] == outcomes[False][1]   # latencies
        assert outcomes[True][2] == outcomes[False][2]   # full stats

    def test_all_load_fast_lane_bit_identical(self, kernel):
        def run(batch):
            chip = CCSVMChip(small_ccsvm_system())
            chip.create_process("batch_eq")
            base = chip.malloc(4096)
            port = chip.cpu_cores[0].memory_port
            port.batch_enabled = batch
            port.store_batch([base + 8 * i for i in range(256)],
                             list(range(-128, 128)))
            out = port.load_batch([base + 8 * ((i * 7) % 256)
                                   for i in range(1024)])
            return out, chip.stats.to_dict()

        assert run(True) == run(False)

    def test_columnar_engages_on_hot_batches(self):
        chip = CCSVMChip(small_ccsvm_system())
        chip.create_process("batch_eq")
        base = chip.malloc(4096)
        port = chip.cpu_cores[0].memory_port
        assert port._use_columnar()
        port.load(base)  # warm TLB + L1
        tlb_misses = chip.stats.get("tlb.cpu0.misses")
        l1_misses = chip.stats.get("l1d.cpu0.misses")
        hits = chip.stats.get("l1d.cpu0.hits")
        port.load_batch([base + 8 * (i % 8) for i in range(512)])
        # A warm batch commits as pure hits: no TLB or L1 miss creeps in.
        assert chip.stats.get("tlb.cpu0.misses") == tlb_misses
        assert chip.stats.get("l1d.cpu0.misses") == l1_misses
        assert chip.stats.get("l1d.cpu0.hits") == hits + 512

    def test_disabled_by_config_flag(self):
        import dataclasses
        config = dataclasses.replace(small_ccsvm_system(),
                                     batch_access=False)
        chip = CCSVMChip(config)
        chip.create_process("batch_eq")
        port = chip.cpu_cores[0].memory_port
        assert not port.batch_enabled
        assert not port._use_columnar()


# --------------------------------------------------------------------------- #
# APU (flat memory) equivalence
# --------------------------------------------------------------------------- #
def _apu_stream(batch, ops_seed):
    rng = random.Random(ops_seed)
    apu = AMDAPU()
    regions = [apu.allocate(4096) for _ in range(4)]
    port = apu.cpu_cores[0].port
    port.batch_enabled = batch
    ops = mixed_ops(rng, regions, 1200)
    values, latencies = [], []
    for chunk in chunked(ops, rng):
        chunk_values, chunk_latencies = port.run_batch(chunk)
        values.extend(chunk_values)
        latencies.extend(chunk_latencies)
    return values, latencies, apu.stats.to_dict()


class TestAPUEquivalence:
    def test_random_stream_bit_identical(self, kernel):
        assert _apu_stream(True, ops_seed=99) == _apu_stream(False,
                                                             ops_seed=99)

    def test_raw_word_semantics_preserved(self, kernel):
        # FlatMemory stores words raw (no 64-bit wraparound); the batched
        # data phase must not silently add masking.
        def run(batch):
            apu = AMDAPU()
            base = apu.allocate(64)
            port = apu.cpu_cores[0].port
            port.batch_enabled = batch
            port.store_batch([base, base + 8], [-(2**70), 2**70])
            return port.load_batch([base, base + 8])[0]

        assert run(True) == run(False) == [-(2**70), 2**70]


# --------------------------------------------------------------------------- #
# split_ops
# --------------------------------------------------------------------------- #
def _as_lists(cols):
    """Normalize split columns for comparison: the kind column may be an
    ndarray under the numpy kernel (semantically identical elements)."""
    return tuple(None if col is None else list(col) for col in cols)


class TestSplitOps:
    def test_all_loads_collapse_to_fast_lane(self):
        vaddrs, kinds, vals, vals2 = split_ops([(OP_LOAD, 8, 0, 0),
                                                (OP_LOAD, 16, 0, 0)])
        assert vaddrs == [8, 16]
        assert kinds is None and vals is None and vals2 is None

    def test_mixed_ops_keep_columns(self):
        ops = [(OP_LOAD, 8, 0, 0), (OP_STORE, 16, 5, 0),
               (OP_ATOMIC_CAS, 24, 1, 2)]
        vaddrs, kinds, vals, vals2 = split_ops(ops)
        assert vaddrs == [8, 16, 24]
        assert list(kinds) == [OP_LOAD, OP_STORE, OP_ATOMIC_CAS]
        assert vals == [0, 5, 1]
        assert vals2 == [0, 0, 2]

    def test_kernels_agree(self, kernel):
        """Both split kernels produce the same columns for the same
        randomized mixed stream (including the all-loads collapse)."""
        rng = random.Random(9)
        ops = mixed_ops(rng, [4096, 8192], 500)
        assert _as_lists(split_ops(ops)) == \
            _as_lists(columnar._split_columns_python(ops))
        loads = [(OP_LOAD, 8 * index, 0, 0) for index in range(64)]
        assert _as_lists(split_ops(loads)) == \
            _as_lists(columnar._split_columns_python(loads))
        assert split_ops([]) == ([], None, None, None)

    @pytest.mark.skipif(not columnar.USING_NUMPY, reason="needs numpy")
    def test_numpy_kernel_survives_int64_overflow(self):
        """Operand values past int64 pass through unwrapped (the numpy
        kernel never converts the operand columns)."""
        ops = [(OP_STORE, 8, 2 ** 70, 0), (OP_LOAD, 16, 0, 0)]
        columnar.use_numpy_kernel()
        try:
            assert _as_lists(columnar.split_columns(ops)) == \
                _as_lists(columnar._split_columns_python(ops))
        finally:
            if not columnar.use_numpy_kernel():
                columnar.use_python_kernel()
