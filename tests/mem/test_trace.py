"""Trace capture is transparent; replay is byte-identical to direct runs."""

import pytest

from repro.core.xthreads.api import (
    CpuMttopBarrier,
    CreateMThread,
    SignalCond,
    WaitCond,
)
from repro.cores.isa import (
    AtomicAdd,
    AtomicCAS,
    AtomicDec,
    AtomicInc,
    Compute,
    Free,
    Load,
    LoadVector,
    Malloc,
    Store,
    StoreVector,
    WaitValue,
)
from repro.mem.trace import (
    Trace,
    TraceError,
    TraceRecorder,
    capture,
    decode_operation,
    encode_operation,
    replay_host_program,
)
from repro.systems import system_config
from repro.workloads.trace_replay import capture_trace, run_replay
from repro.workloads.vector_add import run_ccsvm


@pytest.fixture(scope="module")
def captured():
    """One vector_add capture shared by the replay tests."""
    trace = capture_trace("vector_add", seed=1, size=32)
    direct = run_ccsvm(size=32, seed=1)
    return trace, direct


class TestCapture:
    def test_traced_run_identical_to_untraced(self, captured):
        trace, direct = captured
        assert trace.meta["time_ps"] == direct.time_ps
        assert trace.meta["dram_accesses"] == direct.dram_accesses
        assert trace.meta["verified"]

    def test_streams_recorded(self, captured):
        trace, _ = captured
        assert len(trace.hosts) == 1
        assert len(trace.tasks) == 1          # one CreateMThread
        assert len(trace.tasks[0]) == 32      # one stream per device thread
        assert trace.operation_count > 32
        assert trace.workload == "vector_add"
        assert trace.params == {"size": 32}

    def test_nested_capture_rejected(self):
        with capture(workload="outer"):
            with pytest.raises(TraceError):
                with capture(workload="inner"):
                    pass

    def test_wrapper_preserves_sent_values(self):
        def program():
            first = yield Load(8)
            yield Store(16, first + 1)

        recorder = TraceRecorder()
        wrapped = recorder.wrap_host(program())
        assert next(wrapped) == Load(8)
        assert wrapped.send(41) == Store(16, 42)
        with pytest.raises(StopIteration):
            wrapped.send(0)
        assert recorder.trace.hosts[0] == [Load(8), Store(16, 42)]


class TestSerialisation:
    ALL_OPS = [
        Load(8), Store(16, -5), LoadVector((8, 16, 24)),
        StoreVector((8, 16), (1, -2)), AtomicAdd(8, 3), AtomicInc(8),
        AtomicDec(8), AtomicCAS(8, 0, 1), WaitValue(8, 1),
        WaitValue(8, 0, negate=True), Compute(4), Malloc(64), Free(8),
        WaitCond(8, 0, 3, 1), SignalCond(8, 0, 3, 1),
        CpuMttopBarrier(8, 16, 0, 3),
    ]

    def test_every_op_round_trips(self):
        for op in self.ALL_OPS:
            assert decode_operation(encode_operation(op)) == op

    def test_create_mthread_round_trips_by_name(self):
        def kernel(tid, args):
            yield Load(8)

        row = encode_operation(CreateMThread(kernel, (1, 2), 0, 7))
        decoded = decode_operation(row)
        assert decoded.kernel.endswith("kernel")   # qualname, for humans
        assert decoded.args == (1, 2)
        assert (decoded.first_thread, decoded.last_thread) == (0, 7)
        # Re-encoding a decoded (name-only) op is stable.
        assert encode_operation(decoded) == row

    def test_unknown_tag_rejected(self):
        with pytest.raises(TraceError):
            decode_operation(["nope", 1])

    def test_file_round_trip(self, captured, tmp_path):
        trace, _ = captured
        path = tmp_path / "va.trace.json"
        trace.save(path)
        loaded = Trace.load(path)
        assert loaded.workload == trace.workload
        assert loaded.params == trace.params
        assert loaded.meta == trace.meta
        # CreateMThread carries a callable in memory but its name on disk,
        # so compare in the serialised form (stable across round trips).
        assert loaded.to_dict() == trace.to_dict()
        assert loaded.tasks == trace.tasks

    def test_format_version_checked(self):
        with pytest.raises(TraceError):
            Trace.from_dict({"format": 999})


class TestReplay:
    def test_same_shape_byte_identical(self, captured):
        trace, direct = captured
        replayed = run_replay(trace)
        assert replayed.time_ps == direct.time_ps
        assert replayed.dram_accesses == direct.dram_accesses
        assert replayed.counters == direct.counters
        assert replayed.verified

    @pytest.mark.parametrize("preset", ["ccsvm-l3", "ccsvm-no-tlb"])
    def test_other_shapes_byte_identical_to_direct(self, captured, preset):
        trace, _ = captured
        direct = run_ccsvm(size=32, seed=1, config=system_config(preset))
        replayed = run_replay(trace, config=system_config(preset))
        assert replayed.time_ps == direct.time_ps
        assert replayed.dram_accesses == direct.dram_accesses
        assert replayed.counters == direct.counters

    def test_replay_from_file(self, captured, tmp_path):
        trace, direct = captured
        path = tmp_path / "va.trace.json"
        trace.save(path)
        replayed = run_replay(str(path))
        assert replayed.time_ps == direct.time_ps

    def test_multi_host_trace_rejected(self):
        trace = Trace(hosts=[[Load(8)], [Load(16)]])
        with pytest.raises(TraceError):
            replay_host_program(trace)

    def test_missing_task_rejected(self):
        trace = Trace(hosts=[[CreateMThread("k", (), 0, 3)]])
        with pytest.raises(TraceError):
            list(replay_host_program(trace))
