"""Tests for the APU baseline: memory, CPU cores, GPU, OpenCL, pthreads."""

import pytest

from repro.baseline.apu import AMDAPU
from repro.baseline.memory import FlatMemory, PrivateCacheHierarchy
from repro.config import APUGPUConfig
from repro.cores.isa import Compute, Load, Malloc, Store, word_addr
from repro.errors import KernelProgramError, MemoryError_, RuntimeModelError
from repro.memory.dram import DRAMModel
from repro.sim.stats import StatsRegistry


class TestFlatMemory:
    def test_allocations_are_disjoint_and_nonzero(self):
        memory = FlatMemory()
        a = memory.allocate(100)
        b = memory.allocate(100)
        assert a != 0 and b >= a + 100

    def test_rejects_bad_size(self):
        with pytest.raises(MemoryError_):
            FlatMemory().allocate(0)

    def test_array_roundtrip(self):
        memory = FlatMemory()
        base = memory.allocate(32)
        memory.write_array(base, [1, 2, 3, 4])
        assert memory.read_array(base, 4) == [1, 2, 3, 4]


class TestPrivateCacheHierarchy:
    def _hierarchy(self, stats=None, l2=True):
        dram = DRAMModel(72.0, stats=stats)
        return PrivateCacheHierarchy("h", dram, l1_size_bytes=512,
                                     l1_associativity=2, l1_hit_ps=1000,
                                     l2_size_bytes=2048 if l2 else None,
                                     l2_hit_ps=3600, stats=stats), dram

    def test_miss_then_hit_latency(self):
        hierarchy, _ = self._hierarchy()
        miss = hierarchy.access(0x100, is_write=False)
        hit = hierarchy.access(0x100, is_write=False)
        assert miss > hit == 1000

    def test_dram_counted_on_misses_only(self):
        stats = StatsRegistry()
        hierarchy, dram = self._hierarchy(stats)
        hierarchy.access(0x100, False)
        hierarchy.access(0x108, False)
        assert dram.total_accesses == 1

    def test_dirty_eviction_writes_back(self):
        stats = StatsRegistry()
        hierarchy, dram = self._hierarchy(stats)
        # Fill one set with dirty lines until something is written back.
        for index in range(64):
            hierarchy.access(index * 64, is_write=True)
        assert stats["dram.writes"] >= 1

    def test_flush_writes_dirty_lines(self):
        stats = StatsRegistry()
        hierarchy, dram = self._hierarchy(stats)
        hierarchy.access(0x100, is_write=True)
        flushed, dirty = hierarchy.flush()
        assert flushed >= 1 and dirty >= 1
        assert stats["dram.writes"] >= dirty


class TestBaselineCPU:
    def test_runs_program_and_charges_time(self):
        apu = AMDAPU()
        base = apu.allocate(8 * 8)

        def program():
            for index in range(8):
                yield Store(word_addr(base, index), index)
            total = 0
            for index in range(8):
                value = yield Load(word_addr(base, index))
                total += value
            yield Compute(total)

        result = apu.run_on_cpu(program())
        assert result.time_ps > 0
        assert result.instructions == 17
        assert apu.read_array(base, 8) == list(range(8))

    def test_malloc_supported_locally(self):
        apu = AMDAPU()

        def program():
            address = yield Malloc(64)
            yield Store(address, 5)

        apu.run_on_cpu(program())

    def test_oo_cpu_faster_than_ccsvm_style_inorder(self):
        # max IPC 4 at 2.9 GHz: 100 compute ops ~ 8.6 ns.
        apu = AMDAPU()

        def program():
            yield Compute(100)

        result = apu.run_on_cpu(program())
        assert result.time_ns < 20


class TestGPU:
    def _vadd(self, tid, args):
        a, b, c = args
        x = yield Load(word_addr(a, tid))
        y = yield Load(word_addr(b, tid))
        yield Compute(1)
        yield Store(word_addr(c, tid), x + y)

    def test_kernel_computes_correct_results(self):
        apu = AMDAPU()
        n = 128
        a, b, c = (apu.allocate(n * 8) for _ in range(3))
        apu.write_array(a, list(range(n)))
        apu.write_array(b, [2 * i for i in range(n)])
        result = apu.gpu.execute_kernel(self._vadd, (a, b, c), range(n))
        assert apu.read_array(c, n) == [3 * i for i in range(n)]
        assert result.work_items == n
        assert result.dram_transactions > 0

    def test_uncached_mode_generates_more_dram_traffic_than_cached(self):
        def run(cached):
            apu = AMDAPU()
            apu.gpu.cache_buffer_accesses = cached
            n = 256
            a, b, c = (apu.allocate(n * 8) for _ in range(3))
            result = apu.gpu.execute_kernel(self._vadd, (a, b, c), range(n))
            return result.dram_transactions

        assert run(cached=False) >= run(cached=True)

    def test_higher_vliw_utilization_is_faster(self):
        def run(util):
            apu = AMDAPU()
            apu.gpu.config = APUGPUConfig(vliw_utilization=util)
            n = 512
            a, b, c = (apu.allocate(n * 8) for _ in range(3))
            # compute-bound kernel
            def kernel(tid, args):
                yield Compute(64)
            return apu.gpu.execute_kernel(kernel, None, range(n)).time_ps

        assert run(4.0) < run(1.0)

    def test_malloc_in_kernel_rejected(self):
        apu = AMDAPU()

        def kernel(tid, args):
            yield Malloc(8)

        with pytest.raises(KernelProgramError):
            apu.gpu.execute_kernel(kernel, None, range(4))


class TestOpenCLSession:
    def test_phase_ordering_enforced(self):
        apu = AMDAPU()
        session = apu.opencl_session()
        with pytest.raises(RuntimeModelError):
            session.create_kernel("k", lambda tid, args: iter(()))

    def test_compile_and_init_counted_as_setup(self):
        apu = AMDAPU()
        session = apu.opencl_session()
        session.build_program(["k"])
        assert session.setup_ps > 0
        assert session.elapsed_without_setup_ps == session.elapsed_ps - session.setup_ps

    def test_build_program_idempotent(self):
        apu = AMDAPU()
        session = apu.opencl_session()
        session.build_program(["k"])
        once = session.elapsed_ps
        session.build_program(["k"])
        assert session.elapsed_ps == once

    def test_launch_charges_overheads_and_runs_kernel(self):
        apu = AMDAPU()
        session = apu.opencl_session()
        session.build_program(["vadd"])
        n = 64
        buf_a = session.create_buffer(n * 8)
        buf_b = session.create_buffer(n * 8)
        buf_c = session.create_buffer(n * 8)
        session.map_buffer_write(buf_a, list(range(n)))
        session.map_buffer_write(buf_b, list(range(n)))
        kernel = session.create_kernel("vadd", TestGPU._vadd.__get__(TestGPU()))
        session.enqueue_nd_range(kernel, n,
                                 args=(buf_a.address, buf_b.address, buf_c.address))
        out = session.map_buffer_read(buf_c, n)
        assert out == [2 * i for i in range(n)]
        for phase in ("launch", "kernel", "finish", "dma", "map"):
            assert session.breakdown_ps.get(phase, 0) > 0
        assert apu.dram_accesses > 0

    def test_per_launch_overhead_accumulates(self):
        apu = AMDAPU()
        session = apu.opencl_session()
        session.build_program(["k"])
        buf = session.create_buffer(64 * 8)

        def kernel(tid, args):
            yield Store(word_addr(args, tid), tid)

        k = session.create_kernel("k", kernel)
        session.enqueue_nd_range(k, 8, args=buf.address)
        after_one = session.breakdown_ps["launch"]
        session.enqueue_nd_range(k, 8, args=buf.address)
        assert session.breakdown_ps["launch"] == 2 * after_one


class TestPThreads:
    def test_parallel_phase_time_is_max_plus_barrier(self):
        apu = AMDAPU()
        machine = apu.pthreads(2)

        def quick():
            yield Compute(1)

        def slow():
            yield Compute(1000)

        phase = machine.run_parallel([quick(), slow()])
        assert phase.time_ps > max(phase.per_thread_ps) - 1
        assert phase.slowest_thread_ps == max(phase.per_thread_ps)

    def test_total_time_accumulates_phases(self):
        apu = AMDAPU()
        machine = apu.pthreads(2)
        machine.run_sequential((Compute(10) for _ in range(1)))
        before = machine.total_time_ps
        machine.run_parallel([(Compute(10) for _ in range(1))])
        machine.join()
        assert machine.total_time_ps > before

    def test_too_many_programs_rejected(self):
        apu = AMDAPU()
        machine = apu.pthreads(2)
        with pytest.raises(RuntimeModelError):
            machine.run_parallel([(Compute(1) for _ in range(1)) for _ in range(3)])

    def test_thread_count_capped_at_core_count(self):
        apu = AMDAPU()
        assert apu.pthreads(16).num_threads == 4
