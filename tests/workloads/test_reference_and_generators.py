"""Tests for input generators and golden reference implementations."""

import numpy
import pytest
from hypothesis import given, settings, strategies as st

from repro.workloads import generators, reference


class TestGenerators:
    def test_dense_matrix_deterministic(self):
        assert generators.dense_matrix(8, seed=1) == generators.dense_matrix(8, seed=1)
        assert generators.dense_matrix(8, seed=1) != generators.dense_matrix(8, seed=2)

    def test_digraph_diagonal_zero_and_infinity_off_edges(self):
        size = 8
        matrix = generators.weighted_digraph(size, seed=3, edge_probability=0.0)
        for i in range(size):
            assert matrix[i * size + i] == 0
        off_diagonal = [matrix[i * size + j] for i in range(size)
                        for j in range(size) if i != j]
        assert all(value == generators.APSP_INFINITY for value in off_diagonal)

    def test_sparse_matrix_density_and_rows_nonempty(self):
        entries = generators.sparse_matrix(32, density=0.1, seed=5)
        rows_with_entries = {row for row, _ in entries}
        assert rows_with_entries == set(range(32))
        assert all(value != 0 for value in entries.values())

    def test_bodies_within_space(self):
        bodies = generators.nbody_bodies(50, seed=7, space=1000)
        assert len(bodies) == 50
        assert all(0 <= body.x < 1000 and 0 <= body.y < 1000 and 0 <= body.z < 1000
                   for body in bodies)
        assert all(body.mass > 0 for body in bodies)


class TestReferences:
    def test_vector_add(self):
        assert reference.vector_add([1, 2], [10, 20]) == [11, 22]

    @settings(max_examples=20, deadline=None)
    @given(st.integers(2, 8), st.integers(0, 1000))
    def test_matmul_matches_numpy(self, size, seed):
        a = generators.dense_matrix(size, seed)
        b = generators.dense_matrix(size, seed + 1)
        ours = reference.matmul(a, b, size)
        theirs = (numpy.array(a).reshape(size, size) @
                  numpy.array(b).reshape(size, size)).flatten().tolist()
        assert ours == theirs

    def test_floyd_warshall_small_known_graph(self):
        INF = generators.APSP_INFINITY
        size = 3
        adjacency = [0, 1, INF,
                     INF, 0, 2,
                     7, INF, 0]
        dist = reference.floyd_warshall(adjacency, size)
        assert dist[0 * size + 2] == 3      # 0 -> 1 -> 2
        assert dist[2 * size + 1] == 8      # 2 -> 0 -> 1

    @settings(max_examples=10, deadline=None)
    @given(st.integers(2, 10), st.integers(0, 100))
    def test_floyd_warshall_matches_scipy(self, size, seed):
        from scipy.sparse.csgraph import floyd_warshall as scipy_fw

        adjacency = generators.weighted_digraph(size, seed, edge_probability=0.4)
        ours = reference.floyd_warshall(adjacency, size)
        dense = numpy.array(adjacency, dtype=float).reshape(size, size)
        dense[dense >= generators.APSP_INFINITY] = numpy.inf
        theirs = scipy_fw(dense)
        for i in range(size):
            for j in range(size):
                expected = theirs[i, j]
                value = ours[i * size + j]
                if numpy.isinf(expected):
                    assert value >= generators.APSP_INFINITY
                else:
                    assert value == int(expected)

    @settings(max_examples=15, deadline=None)
    @given(st.integers(2, 12), st.floats(0.05, 0.5), st.integers(0, 100))
    def test_sparse_matmul_matches_dense_product(self, size, density, seed):
        a = generators.sparse_matrix(size, density, seed)
        b = generators.sparse_matrix(size, density, seed + 1)
        ours = reference.sparse_matmul(a, b, size)
        dense_a = numpy.zeros((size, size), dtype=int)
        dense_b = numpy.zeros((size, size), dtype=int)
        for (i, j), value in a.items():
            dense_a[i, j] = value
        for (i, j), value in b.items():
            dense_b[i, j] = value
        dense_c = dense_a @ dense_b
        for (i, j), value in ours.items():
            assert dense_c[i, j] == value
        assert len(ours) == int(numpy.count_nonzero(dense_c))
