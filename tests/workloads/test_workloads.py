"""Cross-system workload tests: every variant computes verified results."""

import pytest

from repro.config import small_ccsvm_system
from repro.workloads import apsp, barnes_hut, matmul, sparse_matmul, vector_add
from repro.workloads.base import WorkloadResult, require_verified
from repro.workloads.base import WorkloadVerificationError

SMALL = small_ccsvm_system()


class TestResultType:
    def test_time_conversions(self):
        result = WorkloadResult(system="s", workload="w", params={}, time_ps=2_000_000,
                                dram_accesses=1, verified=True)
        assert result.time_ns == 2000.0
        assert result.time_ms == pytest.approx(0.002)

    def test_speedup_and_relative(self):
        fast = WorkloadResult("a", "w", {}, 100, 0, True)
        slow = WorkloadResult("b", "w", {}, 400, 0, True)
        assert fast.speedup_over(slow) == 4.0
        assert slow.relative_runtime(fast) == 4.0

    def test_require_verified_raises(self):
        bad = WorkloadResult("a", "w", {}, 1, 0, False)
        with pytest.raises(WorkloadVerificationError):
            require_verified(bad)


class TestVectorAdd:
    def test_ccsvm(self):
        result = vector_add.run_ccsvm(size=32, config=SMALL)
        assert result.verified and result.time_ps > 0

    def test_opencl(self):
        result = vector_add.run_opencl(size=32)
        assert result.verified
        assert result.time_without_setup_ps < result.time_ps

    def test_cpu(self):
        assert vector_add.run_cpu(size=32).verified


class TestMatmul:
    def test_all_systems_agree_on_results(self):
        assert matmul.run_ccsvm(size=8, config=SMALL).verified
        assert matmul.run_opencl(size=8).verified
        assert matmul.run_cpu(size=8).verified

    def test_ccsvm_thread_count_defaults_to_elements(self):
        result = matmul.run_ccsvm(size=6, config=SMALL)
        assert result.params["threads"] == 36

    def test_ccsvm_thread_cap(self):
        result = matmul.run_ccsvm(size=12, config=SMALL)
        assert result.params["threads"] <= SMALL.mttop.total_thread_contexts

    def test_dram_accesses_grow_with_size(self):
        small = matmul.run_ccsvm(size=8, config=SMALL)
        large = matmul.run_ccsvm(size=16, config=SMALL)
        assert large.dram_accesses > small.dram_accesses


class TestAPSP:
    def test_all_systems_agree_on_results(self):
        assert apsp.run_ccsvm(size=8, config=SMALL).verified
        assert apsp.run_opencl(size=8).verified
        assert apsp.run_cpu(size=8).verified

    def test_opencl_launch_per_pivot(self):
        result = apsp.run_opencl(size=8)
        # One launch per pivot iteration dominates the no-setup runtime.
        assert (result.time_without_setup_ps or 0) > 8 * 30_000_000 / 2

    def test_too_many_rows_rejected(self):
        with pytest.raises(ValueError):
            apsp.run_ccsvm(size=SMALL.mttop.total_thread_contexts + 1, config=SMALL)


class TestSparseMatmul:
    def test_ccsvm_and_cpu_verified(self):
        ccsvm = sparse_matmul.run_ccsvm(size=16, density=0.1, config=SMALL)
        cpu = sparse_matmul.run_cpu(size=16, density=0.1)
        assert ccsvm.verified and cpu.verified
        assert ccsvm.extra["mttop_mallocs"] > 0

    def test_malloc_count_grows_with_density(self):
        sparse = sparse_matmul.run_ccsvm(size=16, density=0.05, config=SMALL)
        dense = sparse_matmul.run_ccsvm(size=16, density=0.3, config=SMALL)
        assert dense.extra["mttop_mallocs"] > sparse.extra["mttop_mallocs"]


class TestBarnesHut:
    def test_all_variants_agree_with_functional_reference(self):
        assert barnes_hut.run_ccsvm(bodies_count=16, timesteps=1, config=SMALL).verified
        assert barnes_hut.run_cpu(bodies_count=16, timesteps=1).verified
        assert barnes_hut.run_pthreads(bodies_count=16, timesteps=1).verified

    def test_reference_positions_move_bodies(self):
        bodies = barnes_hut.nbody_bodies(8, seed=1)
        before = [coordinate for body in bodies for coordinate in (body.x, body.y, body.z)]
        after = barnes_hut.reference_positions(bodies, timesteps=1)
        assert after != before

    def test_more_timesteps_take_longer(self):
        one = barnes_hut.run_cpu(bodies_count=16, timesteps=1)
        two = barnes_hut.run_cpu(bodies_count=16, timesteps=2)
        assert two.time_ps > one.time_ps
