"""End-to-end integration and property tests across the full CCSVM stack."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.config import small_ccsvm_system, tiny_caches_ccsvm_system
from repro.core.chip import CCSVMChip
from repro.core.xthreads.api import CreateMThread, WaitCond, mttop_signal
from repro.cores.isa import AtomicAdd, Load, Malloc, Store, word_addr


class TestSharedCounter:
    """Many MTTOP threads atomically increment one shared counter."""

    def _run(self, threads, increments, config):
        chip = CCSVMChip(config, check_sc=True)
        chip.create_process("counter")
        counter = chip.malloc(8)
        chip.write_word(counter, 0)
        done = chip.malloc(threads * 8)
        for t in range(threads):
            chip.write_word(word_addr(done, t), 0)

        def kernel(tid, args):
            for _ in range(increments):
                yield AtomicAdd(counter, 1)
            yield from mttop_signal(done, tid)

        def host():
            yield CreateMThread(kernel, None, 0, threads - 1)
            yield WaitCond(done, 0, threads - 1)

        chip.run(host())
        chip.coherence.check_invariants()
        return chip.read_word(counter)

    def test_no_lost_updates_small_chip(self):
        assert self._run(16, 4, small_ccsvm_system()) == 64

    def test_no_lost_updates_with_tiny_caches(self):
        assert self._run(24, 3, tiny_caches_ccsvm_system()) == 72

    @settings(max_examples=5, deadline=None)
    @given(st.integers(2, 20), st.integers(1, 5))
    def test_no_lost_updates_property(self, threads, increments):
        assert self._run(threads, increments,
                         small_ccsvm_system()) == threads * increments


class TestProducerConsumer:
    def test_cpu_to_mttop_to_cpu_dataflow(self):
        """CPU writes inputs, MTTOP transforms them, CPU reads outputs."""
        chip = CCSVMChip(small_ccsvm_system(), check_sc=True)
        chip.create_process("pipeline")
        n = 40
        collected = []

        def kernel(tid, args):
            src, dst, done = args
            value = yield Load(word_addr(src, tid))
            yield Store(word_addr(dst, tid), value * value)
            yield from mttop_signal(done, tid)

        def host():
            src = yield Malloc(n * 8)
            dst = yield Malloc(n * 8)
            done = yield Malloc(n * 8)
            for index in range(n):
                yield Store(word_addr(src, index), index)
                yield Store(word_addr(done, index), 0)
            yield CreateMThread(kernel, (src, dst, done), 0, n - 1)
            yield WaitCond(done, 0, n - 1)
            for index in range(n):
                value = yield Load(word_addr(dst, index))
                collected.append(value)

        chip.run(host())
        assert collected == [index * index for index in range(n)]

    def test_demand_paging_happens_from_both_core_types(self):
        chip = CCSVMChip(small_ccsvm_system())
        chip.create_process("paging")
        n = 16

        def kernel(tid, args):
            src, dst, done = args
            value = yield Load(word_addr(src, tid))
            yield Store(word_addr(dst, tid), value + 1)
            yield from mttop_signal(done, tid)

        def host():
            src = yield Malloc(n * 8)
            # dst spans fresh pages the MTTOPs will fault in themselves.
            dst = yield Malloc(16 * 4096)
            done = yield Malloc(n * 8)
            for index in range(n):
                yield Store(word_addr(src, index), index)
                yield Store(word_addr(done, index), 0)
            yield CreateMThread(kernel, (src, dst + 8 * 4096, done), 0, n - 1)
            yield WaitCond(done, 0, n - 1)

        chip.run(host())
        assert chip.stats["os.page_faults"] > 0
        assert chip.stats["os.page_faults_from_mttop"] > 0
        assert chip.stats["mifd.page_faults_forwarded"] > 0

    def test_deterministic_replay(self):
        """Two identical runs produce identical times and counters."""
        def run():
            chip = CCSVMChip(small_ccsvm_system())
            chip.create_process("replay")
            n = 16
            addresses = {}

            def kernel(tid, args):
                src, done = args
                value = yield Load(word_addr(src, tid))
                yield Store(word_addr(src, tid), value + tid)
                yield from mttop_signal(done, tid)

            def host():
                src = yield Malloc(n * 8)
                done = yield Malloc(n * 8)
                addresses["src"] = src
                for index in range(n):
                    yield Store(word_addr(src, index), index)
                    yield Store(word_addr(done, index), 0)
                yield CreateMThread(kernel, (src, done), 0, n - 1)
                yield WaitCond(done, 0, n - 1)

            result = chip.run(host())
            return result.time_ps, chip.stats_snapshot(), chip.read_array(addresses["src"], n)

        first = run()
        second = run()
        assert first == second
