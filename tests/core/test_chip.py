"""Tests for the assembled CCSVM chip."""

import pytest

from repro.config import (
    ConfigurationError,
    apply_overrides,
    ccsvm_system,
    small_ccsvm_system,
    tiny_caches_ccsvm_system,
)
from repro.core.chip import CCSVMChip
from repro.core.xthreads.api import CreateMThread, WaitCond, mttop_signal
from repro.cores.isa import Compute, Load, Malloc, Store, word_addr
from repro.errors import SimulationError


def _signal_kernel(tid, args):
    out, done = args
    yield Store(word_addr(out, tid), tid * 2)
    yield from mttop_signal(done, tid)


def _simple_host(threads, addresses):
    def host():
        out = yield Malloc(threads * 8)
        done = yield Malloc(threads * 8)
        addresses["out"] = out
        for t in range(threads):
            yield Store(word_addr(done, t), 0)
        yield CreateMThread(_signal_kernel, (out, done), 0, threads - 1)
        yield WaitCond(done, 0, threads - 1)
    return host


class TestConstruction:
    def test_default_config_builds_full_chip(self):
        chip = CCSVMChip(ccsvm_system())
        assert len(chip.cpu_cores) == 4
        assert len(chip.mttop_cores) == 10
        assert len(chip.l2_banks) == 4
        # Every core and bank is a node on the torus.
        for node in chip.cpu_nodes + chip.mttop_nodes + chip.l2_nodes:
            assert node in chip.topology

    def test_small_config(self):
        chip = CCSVMChip(small_ccsvm_system(cpu_cores=2, mttop_cores=3))
        assert len(chip.cpu_cores) == 2
        assert len(chip.mttop_cores) == 3

    def test_write_through_mttop_l1_is_refused_by_name(self):
        # The config knob exists (and round-trips through overrides, see
        # tests/test_systems.py) but the simulated transaction paths are
        # write-back only; building a chip with it set must fail loudly,
        # naming the unimplemented feature, rather than silently
        # simulating the wrong machine.
        config = apply_overrides(ccsvm_system(),
                                 {"mttop.write_through": True})
        with pytest.raises(ConfigurationError,
                           match="write-through.*unimplemented feature"):
            CCSVMChip(config)


class TestRunning:
    def test_run_executes_host_and_mttop_threads(self):
        chip = CCSVMChip(small_ccsvm_system(), check_sc=True)
        chip.create_process("chip_test")
        addresses = {}
        result = chip.run(_simple_host(16, addresses)())
        assert result.time_ps > 0
        assert chip.read_array(addresses["out"], 16) == [t * 2 for t in range(16)]
        assert result.dram_accesses == result.stats["dram.reads"] + \
            result.stats["dram.writes"]

    def test_run_accepts_generator_function(self):
        chip = CCSVMChip(small_ccsvm_system())
        chip.create_process("chip_test")
        addresses = {}
        chip.run(_simple_host(8, addresses))
        assert chip.read_word(addresses["out"]) == 0

    def test_chip_cannot_run_twice(self):
        chip = CCSVMChip(small_ccsvm_system())
        chip.create_process("chip_test")
        chip.run(_simple_host(8, {})())
        with pytest.raises(SimulationError):
            chip.run(_simple_host(8, {})())

    def test_extra_hosts_run_on_other_cpus(self):
        chip = CCSVMChip(small_ccsvm_system(cpu_cores=2))
        chip.create_process("chip_test")
        marks = chip.malloc(2 * 8)

        def worker(index):
            def host():
                yield Compute(10)
                yield Store(word_addr(marks, index), index + 1)
            return host

        chip.run(worker(0)(), extra_hosts=[worker(1)()])
        assert chip.read_array(marks, 2) == [1, 2]

    def test_too_many_hosts_rejected(self):
        chip = CCSVMChip(small_ccsvm_system(cpu_cores=1))
        chip.create_process("chip_test")
        with pytest.raises(SimulationError):
            chip.run((Compute(1) for _ in range(0)),
                     extra_hosts=[(Compute(1) for _ in range(0))])

    def test_sc_checker_records_events(self):
        chip = CCSVMChip(small_ccsvm_system(), check_sc=True)
        chip.create_process("chip_test")
        chip.run(_simple_host(8, {})())
        assert chip.sc_checker.events_recorded > 0

    def test_coherence_invariants_hold_after_run(self):
        chip = CCSVMChip(tiny_caches_ccsvm_system(), check_sc=True)
        chip.create_process("chip_test")
        chip.run(_simple_host(24, {})())
        chip.coherence.check_invariants()

    def test_functional_helpers_roundtrip(self):
        chip = CCSVMChip(small_ccsvm_system())
        chip.create_process("chip_test")
        vaddr = chip.malloc(4 * 8)
        chip.write_array(vaddr, [1, 2, 3, 4])
        assert chip.read_array(vaddr, 4) == [1, 2, 3, 4]

    def test_process_space_required_before_helpers(self):
        chip = CCSVMChip(small_ccsvm_system())
        with pytest.raises(SimulationError):
            chip.read_word(0x1000)

    def test_stats_snapshot_is_plain_dict(self):
        chip = CCSVMChip(small_ccsvm_system())
        chip.create_process("chip_test")
        chip.run(_simple_host(8, {})())
        snapshot = chip.stats_snapshot()
        assert isinstance(snapshot, dict) and snapshot
