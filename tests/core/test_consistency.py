"""Tests for the sequential-consistency checker."""

import pytest

from repro.core.consistency import SequentialConsistencyChecker
from repro.errors import ConsistencyViolationError


class TestChecker:
    def test_load_of_unwritten_address_must_be_zero(self):
        checker = SequentialConsistencyChecker()
        checker.record_load("cpu0", 0x100, 0, 10)
        with pytest.raises(ConsistencyViolationError):
            checker.record_load("cpu0", 0x200, 5, 20)

    def test_load_sees_most_recent_store(self):
        checker = SequentialConsistencyChecker()
        checker.record_store("cpu0", 0x100, 7, 10)
        checker.record_store("mttop0", 0x100, 9, 20)
        checker.record_load("cpu1", 0x100, 9, 30)
        with pytest.raises(ConsistencyViolationError):
            checker.record_load("cpu1", 0x100, 7, 40)

    def test_program_order_violation_detected(self):
        checker = SequentialConsistencyChecker()
        checker.record_store("cpu0", 0x100, 1, 100)
        with pytest.raises(ConsistencyViolationError):
            checker.record_store("cpu0", 0x100, 2, 50)

    def test_different_nodes_may_have_unordered_times(self):
        checker = SequentialConsistencyChecker()
        checker.record_store("cpu0", 0x100, 1, 100)
        checker.record_store("cpu1", 0x200, 2, 50)  # fine: different node
        assert checker.events_recorded == 2

    def test_atomic_records_load_and_store(self):
        checker = SequentialConsistencyChecker()
        checker.record_store("cpu0", 0x100, 3, 10)
        checker.record_atomic("mttop0", 0x100, old_value=3, new_value=4, time_ps=20)
        checker.record_load("cpu0", 0x100, 4, 30)
        assert checker.last_value(0x100) == 4

    def test_history_replay(self):
        checker = SequentialConsistencyChecker(keep_history=True)
        checker.record_store("cpu0", 0x100, 1, 10)
        checker.record_load("cpu1", 0x100, 1, 20)
        checker.verify_total_order()
        assert len(checker.history) == 2

    def test_history_not_kept_by_default(self):
        checker = SequentialConsistencyChecker()
        checker.record_store("cpu0", 0x100, 1, 10)
        assert checker.history == []
