"""Tests for the per-core memory port (translation + coherence + data)."""

import pytest

from repro.config import small_ccsvm_system
from repro.core.chip import CCSVMChip
from repro.errors import VirtualMemoryError


@pytest.fixture
def chip():
    chip = CCSVMChip(small_ccsvm_system(), check_sc=True)
    chip.create_process("access_test")
    return chip


class TestTranslation:
    def test_port_without_address_space_rejects_access(self):
        chip = CCSVMChip(small_ccsvm_system())
        port = chip.mttop_cores[0].memory_port
        with pytest.raises(VirtualMemoryError):
            port.load(0x1000_0000)

    def test_first_touch_faults_then_tlb_hits(self, chip):
        port = chip.cpu_cores[0].memory_port
        vaddr = chip.malloc(64)
        value, first_latency = port.load(vaddr)
        assert value == 0
        assert chip.stats[f"tlb.cpu0.misses"] == 1
        assert chip.stats["os.page_faults"] >= 1
        _, second_latency = port.load(vaddr)
        assert chip.stats[f"tlb.cpu0.hits"] >= 1
        assert second_latency < first_latency

    def test_store_then_load_roundtrip(self, chip):
        port = chip.cpu_cores[0].memory_port
        vaddr = chip.malloc(64)
        port.store(vaddr, 1234)
        value, _ = port.load(vaddr)
        assert value == 1234
        assert chip.read_word(vaddr) == 1234

    def test_mttop_fault_forwarded_through_mifd(self, chip):
        port = chip.mttop_cores[0].memory_port
        port.set_address_space(chip.process_space)
        vaddr = chip.malloc(64)
        port.store(vaddr, 9)
        assert chip.stats["mifd.page_faults_forwarded"] == 1
        assert chip.stats["os.page_faults_from_mttop"] == 1

    def test_cross_core_visibility(self, chip):
        cpu_port = chip.cpu_cores[0].memory_port
        mttop_port = chip.mttop_cores[0].memory_port
        mttop_port.set_address_space(chip.process_space)
        vaddr = chip.malloc(64)
        cpu_port.store(vaddr, 77)
        value, _ = mttop_port.load(vaddr)
        assert value == 77

    def test_atomics(self, chip):
        port = chip.cpu_cores[0].memory_port
        vaddr = chip.malloc(8)
        old, _ = port.atomic_add(vaddr, 5)
        assert old == 0
        old, _ = port.atomic_cas(vaddr, 5, 11)
        assert old == 5
        assert chip.read_word(vaddr) == 11

    def test_cas_failure_leaves_value(self, chip):
        port = chip.cpu_cores[0].memory_port
        vaddr = chip.malloc(8)
        port.store(vaddr, 3)
        old, _ = port.atomic_cas(vaddr, 99, 1)
        assert old == 3
        assert chip.read_word(vaddr) == 3

    def test_cr3_matches_process(self, chip):
        port = chip.cpu_cores[0].memory_port
        assert port.cr3 == chip.process_space.cr3
        assert port.has_address_space
