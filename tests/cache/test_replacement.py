"""Tests for cache replacement policies."""

import pytest
from hypothesis import given, strategies as st

from repro.cache.replacement import (
    LRUReplacement,
    PseudoLRUReplacement,
    RandomReplacement,
    make_replacement_policy,
)
from repro.errors import CacheError


class TestFactory:
    def test_builds_each_policy(self):
        assert isinstance(make_replacement_policy("lru", 4), LRUReplacement)
        assert isinstance(make_replacement_policy("plru", 4), PseudoLRUReplacement)
        assert isinstance(make_replacement_policy("random", 4), RandomReplacement)

    def test_case_insensitive(self):
        assert isinstance(make_replacement_policy("LRU", 4), LRUReplacement)

    def test_unknown_rejected(self):
        with pytest.raises(CacheError):
            make_replacement_policy("fifo", 4)

    def test_bad_associativity_rejected(self):
        with pytest.raises(CacheError):
            LRUReplacement(0)


class TestLRU:
    def test_prefers_empty_way(self):
        policy = LRUReplacement(4)
        policy.touch(0)
        assert policy.victim([0]) in {1, 2, 3}

    def test_evicts_least_recently_touched(self):
        policy = LRUReplacement(2)
        policy.touch(0)
        policy.touch(1)
        policy.touch(0)
        assert policy.victim([0, 1]) == 1

    def test_reset_forgets_history(self):
        policy = LRUReplacement(2)
        policy.touch(1)
        policy.reset()
        # After reset both ways look untouched; victim must still be valid.
        assert policy.victim([0, 1]) in {0, 1}

    @given(st.lists(st.integers(0, 3), min_size=1, max_size=50))
    def test_victim_is_always_a_valid_way(self, touches):
        policy = LRUReplacement(4)
        for way in touches:
            policy.touch(way)
        assert policy.victim([0, 1, 2, 3]) in {0, 1, 2, 3}

    @given(st.lists(st.integers(0, 7), min_size=8, max_size=60))
    def test_most_recently_touched_never_evicted(self, touches):
        policy = LRUReplacement(8)
        for way in touches:
            policy.touch(way)
        assert policy.victim(list(range(8))) != touches[-1]


class TestPseudoLRU:
    def test_requires_power_of_two(self):
        with pytest.raises(CacheError):
            PseudoLRUReplacement(3)

    def test_prefers_empty_way(self):
        policy = PseudoLRUReplacement(4)
        assert policy.victim([0, 1]) in {2, 3}

    def test_most_recently_touched_not_immediately_evicted(self):
        policy = PseudoLRUReplacement(4)
        for way in (0, 1, 2, 3):
            policy.touch(way)
        policy.touch(2)
        assert policy.victim([0, 1, 2, 3]) != 2

    @given(st.lists(st.integers(0, 3), min_size=1, max_size=40))
    def test_victim_valid(self, touches):
        policy = PseudoLRUReplacement(4)
        for way in touches:
            policy.touch(way)
        assert policy.victim([0, 1, 2, 3]) in {0, 1, 2, 3}

    def test_reset(self):
        policy = PseudoLRUReplacement(4)
        policy.touch(3)
        policy.reset()
        assert policy.victim([0, 1, 2, 3]) in {0, 1, 2, 3}


class TestRandom:
    def test_deterministic_with_seed(self):
        a = RandomReplacement(4, seed=1)
        b = RandomReplacement(4, seed=1)
        occupied = [0, 1, 2, 3]
        assert [a.victim(occupied) for _ in range(10)] == \
            [b.victim(occupied) for _ in range(10)]

    def test_prefers_empty_way(self):
        assert RandomReplacement(4).victim([0]) in {1, 2, 3}

    def test_victim_from_occupied(self):
        policy = RandomReplacement(2)
        assert policy.victim([0, 1]) in {0, 1}
