"""Tests for the set-associative cache tag store."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cache.cache import CacheConfig, SetAssociativeCache
from repro.errors import CacheError
from repro.sim.stats import StatsRegistry


def make_cache(size=1024, assoc=2, line=64, name="c", stats=None):
    return SetAssociativeCache(CacheConfig(size_bytes=size, associativity=assoc,
                                           line_size=line, hit_latency_ps=100,
                                           name=name), stats=stats)


class TestConfigValidation:
    def test_num_sets(self):
        assert CacheConfig(size_bytes=1024, associativity=2, line_size=64).num_sets == 8

    def test_rejects_non_divisible_size(self):
        with pytest.raises(CacheError):
            CacheConfig(size_bytes=1000, associativity=2, line_size=64)

    def test_rejects_non_power_of_two_sets(self):
        with pytest.raises(CacheError):
            CacheConfig(size_bytes=3 * 64 * 2, associativity=2, line_size=64)

    def test_rejects_bad_line_size(self):
        with pytest.raises(CacheError):
            CacheConfig(size_bytes=1024, associativity=2, line_size=60)

    def test_table2_geometries_valid(self):
        CacheConfig(size_bytes=64 * 1024, associativity=4)    # CPU L1
        CacheConfig(size_bytes=16 * 1024, associativity=4)    # MTTOP L1
        CacheConfig(size_bytes=1024 * 1024, associativity=16)  # L2 bank


class TestLookupInsert:
    def test_miss_then_hit(self):
        cache = make_cache()
        assert cache.lookup(0x100) is None
        cache.insert(0x100)
        assert cache.lookup(0x100) is not None

    def test_lookup_matches_any_address_in_line(self):
        cache = make_cache()
        cache.insert(0x100)
        assert cache.lookup(0x13F) is not None
        assert cache.lookup(0x140) is None

    def test_double_insert_rejected(self):
        cache = make_cache()
        cache.insert(0x100)
        with pytest.raises(CacheError):
            cache.insert(0x108)

    def test_insert_carries_state_and_dirty(self):
        cache = make_cache()
        block, _ = cache.insert(0x200, state="M", dirty=True)
        assert block.state == "M" and block.dirty

    def test_peek_does_not_count_stats(self):
        stats = StatsRegistry()
        cache = make_cache(stats=stats, name="c")
        cache.insert(0x100)
        cache.peek(0x100)
        assert stats["c.hits"] == 0

    def test_hit_miss_stats(self):
        stats = StatsRegistry()
        cache = make_cache(stats=stats, name="c")
        cache.lookup(0)
        cache.insert(0)
        cache.lookup(0)
        assert stats["c.misses"] == 1 and stats["c.hits"] == 1


class TestEviction:
    def test_victim_returned_when_set_full(self):
        cache = make_cache(size=256, assoc=2, line=64)  # 2 sets
        conflicting = [0x000, 0x080, 0x100]  # all map to set 0
        cache.insert(conflicting[0])
        cache.insert(conflicting[1])
        _, victim = cache.insert(conflicting[2])
        assert victim is not None
        assert victim.line_address in (0x000, 0x080)
        assert len(cache) == 2

    def test_lru_order_respected(self):
        cache = make_cache(size=256, assoc=2, line=64)
        cache.insert(0x000)
        cache.insert(0x080)
        cache.lookup(0x000)              # 0x080 becomes LRU
        _, victim = cache.insert(0x100)
        assert victim.line_address == 0x080

    def test_explicit_evict(self):
        cache = make_cache()
        cache.insert(0x100)
        block = cache.evict(0x100)
        assert block is not None
        assert 0x100 not in cache

    def test_evict_absent_returns_none(self):
        assert make_cache().evict(0x100) is None

    def test_flush_all(self):
        cache = make_cache()
        cache.insert(0x000)
        cache.insert(0x040, dirty=True)
        blocks = cache.flush_all()
        assert len(blocks) == 2 and len(cache) == 0
        assert sum(1 for block in blocks if block.dirty) == 1


class TestGeometry:
    def test_capacity_and_occupancy(self):
        cache = make_cache(size=512, assoc=2, line=64)
        assert cache.capacity_lines == 8
        cache.insert(0)
        assert cache.occupancy() == pytest.approx(1 / 8)

    def test_set_index_wraps(self):
        cache = make_cache(size=512, assoc=2, line=64)  # 4 sets
        assert cache.set_index(0x000) == cache.set_index(0x100)
        assert cache.set_index(0x000) != cache.set_index(0x040)

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.integers(0, 1 << 16), min_size=1, max_size=200))
    def test_occupancy_never_exceeds_capacity(self, addresses):
        cache = make_cache(size=512, assoc=2, line=64)
        for addr in addresses:
            if cache.lookup(addr) is None:
                cache.insert(addr)
        assert len(cache) <= cache.capacity_lines
        # Every resident line must be findable through lookup.
        for block in cache.blocks():
            assert cache.peek(block.line_address) is block
