"""Tests for network topologies."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import InterconnectError
from repro.interconnect.topology import CrossbarTopology, Torus2DTopology


class TestTorus:
    def test_fit_builds_roughly_square_grid(self):
        torus = Torus2DTopology.fit([f"n{i}" for i in range(19)])
        assert torus.width * torus.height >= 19
        assert abs(torus.width - torus.height) <= 1

    def test_self_distance_zero(self):
        torus = Torus2DTopology(["a", "b", "c", "d"], 2, 2)
        assert torus.hops("a", "a") == 0

    def test_neighbour_distance_one(self):
        torus = Torus2DTopology(["a", "b", "c", "d"], 2, 2)
        assert torus.hops("a", "b") == 1
        assert torus.hops("a", "c") == 1

    def test_wraparound_shortens_path(self):
        names = [f"n{i}" for i in range(16)]
        torus = Torus2DTopology(names, 4, 4)
        # n0 at (0,0), n3 at (3,0): distance 1 thanks to wraparound.
        assert torus.hops("n0", "n3") == 1

    def test_symmetry(self):
        names = [f"n{i}" for i in range(12)]
        torus = Torus2DTopology(names, 4, 3)
        for a in names[:6]:
            for b in names[6:]:
                assert torus.hops(a, b) == torus.hops(b, a)

    def test_route_endpoints_and_length(self):
        names = [f"n{i}" for i in range(16)]
        torus = Torus2DTopology(names, 4, 4)
        route = torus.route("n0", "n10")
        assert route[0] == torus.coordinate("n0")
        assert route[-1] == torus.coordinate("n10")
        assert len(route) - 1 == torus.hops("n0", "n10")

    def test_unknown_node_rejected(self):
        torus = Torus2DTopology(["a"], 1, 1)
        with pytest.raises(InterconnectError):
            torus.hops("a", "zzz")

    def test_too_many_nodes_rejected(self):
        with pytest.raises(InterconnectError):
            Torus2DTopology(["a", "b", "c"], 1, 2)

    def test_duplicate_names_rejected(self):
        with pytest.raises(InterconnectError):
            Torus2DTopology(["a", "a"], 2, 2)

    @given(st.integers(2, 6), st.integers(2, 6))
    def test_triangle_inequality(self, width, height):
        names = [f"n{i}" for i in range(width * height)]
        torus = Torus2DTopology(names, width, height)
        a, b, c = names[0], names[len(names) // 2], names[-1]
        assert torus.hops(a, c) <= torus.hops(a, b) + torus.hops(b, c)


class TestCrossbar:
    def test_all_pairs_one_hop(self):
        xbar = CrossbarTopology(["a", "b", "c"])
        assert xbar.hops("a", "b") == 1
        assert xbar.hops("b", "c") == 1

    def test_self_zero(self):
        assert CrossbarTopology(["a", "b"]).hops("a", "a") == 0

    def test_unknown_rejected(self):
        with pytest.raises(InterconnectError):
            CrossbarTopology(["a"]).hops("a", "b")
