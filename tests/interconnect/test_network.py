"""Tests for the network timing model."""

from repro.interconnect.network import CONTROL_MESSAGE_BYTES, DATA_MESSAGE_BYTES, NetworkModel
from repro.interconnect.topology import Torus2DTopology
from repro.sim.stats import StatsRegistry


def make_network(stats=None):
    names = [f"n{i}" for i in range(9)]
    return NetworkModel(Torus2DTopology(names, 3, 3), link_bandwidth_gbps=12.0,
                        per_hop_latency_ns=1.0, stats=stats)


class TestTiming:
    def test_latency_grows_with_hops(self):
        network = make_network()
        near = network.send("n0", "n1")
        far = network.send("n0", "n4")
        assert far.hops > near.hops
        assert far.latency_ps > near.latency_ps

    def test_serialisation_depends_on_size(self):
        network = make_network()
        small = network.send("n0", "n1", size_bytes=8)
        large = network.send("n0", "n1", size_bytes=72)
        assert large.latency_ps > small.latency_ps

    def test_self_message_pays_only_serialisation(self):
        network = make_network()
        message = network.send("n0", "n0", size_bytes=72)
        assert message.hops == 0
        assert message.latency_ps == network._serialisation_ps(72)

    def test_control_and_data_sizes(self):
        network = make_network()
        assert network.control("n0", "n1").size_bytes == CONTROL_MESSAGE_BYTES
        assert network.data("n0", "n1").size_bytes == DATA_MESSAGE_BYTES

    def test_round_trip_is_sum(self):
        network = make_network()
        total = network.round_trip("n0", "n4")
        assert total > 0

    def test_zero_bandwidth_means_no_serialisation(self):
        names = ["a", "b"]
        network = NetworkModel(Torus2DTopology(names, 2, 1), link_bandwidth_gbps=0)
        assert network.send("a", "b", size_bytes=1000).latency_ps == \
            network.per_hop_latency_ps


class TestAccounting:
    def test_messages_and_bytes_counted(self):
        stats = StatsRegistry()
        network = make_network(stats)
        network.send("n0", "n1", size_bytes=64, kind="data")
        network.send("n1", "n2", size_bytes=8, kind="inv")
        assert network.total_messages == 2
        assert network.total_bytes == 72
        assert stats["network.messages_data"] == 1
        assert stats["network.messages_inv"] == 1
        assert stats["network.hops"] == 2
