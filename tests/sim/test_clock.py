"""Tests for the time base and clock domains."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import ConfigurationError
from repro.sim.clock import (
    ClockDomain,
    PS_PER_NS,
    hz_to_period_ps,
    ns_to_ps,
    ps_to_ns,
    ps_to_seconds,
)


class TestConversions:
    def test_ns_to_ps(self):
        assert ns_to_ps(1.0) == 1_000

    def test_ns_to_ps_fractional(self):
        assert ns_to_ps(0.5) == 500

    def test_ns_to_ps_rounds(self):
        assert ns_to_ps(0.3448) == 345

    def test_ps_to_ns(self):
        assert ps_to_ns(2_500) == 2.5

    def test_ps_to_seconds(self):
        assert ps_to_seconds(1_000_000_000_000) == 1.0

    def test_ps_per_ns_constant(self):
        assert PS_PER_NS == 1_000

    @given(st.floats(min_value=0.001, max_value=1e6))
    def test_roundtrip_within_rounding(self, nanoseconds):
        assert abs(ps_to_ns(ns_to_ps(nanoseconds)) - nanoseconds) <= 0.001


class TestHzToPeriod:
    def test_one_ghz(self):
        assert hz_to_period_ps(1e9) == 1_000

    def test_cpu_clock_period(self):
        # 2.9 GHz -> about 345 ps.
        assert hz_to_period_ps(2.9e9) == 345

    def test_mttop_clock_period(self):
        # 600 MHz -> about 1667 ps.
        assert hz_to_period_ps(600e6) == 1_667

    def test_rejects_non_positive(self):
        with pytest.raises(ConfigurationError):
            hz_to_period_ps(0)

    def test_never_returns_zero(self):
        assert hz_to_period_ps(1e15) >= 1


class TestClockDomain:
    def test_from_ghz(self):
        clock = ClockDomain.from_ghz("cpu", 2.9)
        assert clock.frequency_hz == pytest.approx(2.9e9)

    def test_from_mhz(self):
        clock = ClockDomain.from_mhz("mttop", 600)
        assert clock.frequency_hz == pytest.approx(600e6)

    def test_period(self):
        assert ClockDomain.from_ghz("c", 1.0).period_ps == 1_000

    def test_cycles_to_ps(self):
        clock = ClockDomain.from_ghz("c", 1.0)
        assert clock.cycles_to_ps(10) == 10_000

    def test_fractional_cycles(self):
        clock = ClockDomain.from_ghz("c", 1.0)
        assert clock.cycles_to_ps(0.5) == 500

    def test_ps_to_cycles(self):
        clock = ClockDomain.from_ghz("c", 2.0)
        assert clock.ps_to_cycles(1_000) == pytest.approx(2.0)

    def test_rejects_bad_frequency(self):
        with pytest.raises(ConfigurationError):
            ClockDomain("bad", 0.0)

    @given(st.integers(min_value=1, max_value=10_000))
    def test_cycles_roundtrip(self, cycles):
        clock = ClockDomain.from_mhz("m", 600)
        assert clock.ps_to_cycles(clock.cycles_to_ps(cycles)) == pytest.approx(
            cycles, rel=0.01)
