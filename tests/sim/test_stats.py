"""Tests for the statistics registry."""

from hypothesis import given, strategies as st

from repro.sim.stats import StatsRegistry, diff


class TestCounters:
    def test_unknown_counter_reads_zero(self):
        assert StatsRegistry().get("nope") == 0

    def test_add_creates_counter(self):
        stats = StatsRegistry()
        stats.add("a.b")
        assert stats.get("a.b") == 1

    def test_add_amount(self):
        stats = StatsRegistry()
        stats.add("x", 5)
        stats.add("x", 2)
        assert stats["x"] == 7

    def test_negative_amount(self):
        stats = StatsRegistry()
        stats.add("x", 5)
        stats.add("x", -2)
        assert stats["x"] == 3

    def test_set_overwrites(self):
        stats = StatsRegistry()
        stats.add("x", 5)
        stats.set("x", 1)
        assert stats["x"] == 1

    def test_max_keeps_largest(self):
        stats = StatsRegistry()
        stats.max("m", 3)
        stats.max("m", 1)
        assert stats["m"] == 3

    def test_contains_and_len(self):
        stats = StatsRegistry()
        stats.add("x")
        assert "x" in stats and "y" not in stats
        assert len(stats) == 1

    def test_reset(self):
        stats = StatsRegistry()
        stats.add("x")
        stats.reset()
        assert stats["x"] == 0 and len(stats) == 0

    def test_items_sorted(self):
        stats = StatsRegistry()
        stats.add("b")
        stats.add("a")
        assert [name for name, _ in stats.items()] == ["a", "b"]


class TestAggregation:
    def test_sum_by_prefix(self):
        stats = StatsRegistry()
        stats.add("dram.reads", 3)
        stats.add("dram.writes", 2)
        stats.add("net.messages", 7)
        assert stats.sum("dram.") == 5

    def test_sum_by_suffix(self):
        stats = StatsRegistry()
        stats.add("l1.cpu0.hits", 3)
        stats.add("l1.cpu1.hits", 2)
        stats.add("l1.cpu0.misses", 9)
        assert stats.sum(suffix=".hits") == 5

    def test_group_strips_prefix(self):
        stats = StatsRegistry()
        stats.add("dram.reads", 3)
        assert stats.group("dram.") == {"reads": 3}

    def test_ratio(self):
        stats = StatsRegistry()
        stats.add("hits", 3)
        stats.add("total", 4)
        assert stats.ratio("hits", "total") == 0.75

    def test_ratio_zero_denominator(self):
        assert StatsRegistry().ratio("a", "b") == 0.0

    def test_merge(self):
        a, b = StatsRegistry(), StatsRegistry()
        a.add("x", 1)
        b.add("x", 2)
        b.add("y", 3)
        a.merge(b)
        assert a["x"] == 3 and a["y"] == 3

    def test_to_dict_snapshot_is_copy(self):
        stats = StatsRegistry()
        stats.add("x")
        snapshot = stats.to_dict()
        stats.add("x")
        assert snapshot["x"] == 1 and stats["x"] == 2


class TestRendering:
    def test_render_empty(self):
        assert StatsRegistry().render() == "(no counters)"

    def test_render_contains_values(self):
        stats = StatsRegistry()
        stats.add("alpha", 42)
        rendered = stats.render()
        assert "alpha" in rendered and "42" in rendered

    def test_render_prefix_filter(self):
        stats = StatsRegistry()
        stats.add("keep.x", 1)
        stats.add("drop.y", 2)
        assert "drop.y" not in stats.render("keep.")


class TestDiff:
    def test_diff_reports_deltas(self):
        assert diff({"a": 1}, {"a": 3, "b": 2}) == {"a": 2, "b": 2}

    def test_diff_drops_zero(self):
        assert diff({"a": 1}, {"a": 1}) == {}

    def test_diff_handles_removed(self):
        assert diff({"a": 2}, {}) == {"a": -2}

    @given(st.dictionaries(st.text(min_size=1, max_size=5),
                           st.integers(-100, 100), max_size=5))
    def test_diff_of_identical_is_empty(self, counters):
        assert diff(counters, dict(counters)) == {}
