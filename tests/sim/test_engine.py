"""Tests for the event-ordered engine."""

import pytest

from repro.errors import DeadlockError, SimulationError
from repro.sim.engine import Agent, Engine, StepOutcome


class CountingAgent(Agent):
    """Runs a fixed number of steps, each advancing by a fixed duration."""

    def __init__(self, name, steps, step_ps=100):
        super().__init__(name)
        self.remaining = steps
        self.step_ps = step_ps
        self.trace = []

    def step(self):
        if self.remaining == 0:
            return self.finish()
        self.remaining -= 1
        self.trace.append(self.local_time_ps)
        self.advance(self.step_ps)
        return StepOutcome.RAN


class BlockingAgent(Agent):
    """Blocks immediately and stays blocked."""

    def step(self):
        return self.block()


class TestAgentBasics:
    def test_new_agent_is_runnable(self):
        assert CountingAgent("a", 1).runnable

    def test_finish_makes_unrunnable(self):
        agent = CountingAgent("a", 0)
        agent.step()
        assert agent.finished and not agent.runnable

    def test_wake_never_moves_clock_backwards(self):
        agent = CountingAgent("a", 1)
        agent.local_time_ps = 500
        agent.wake(100)
        assert agent.local_time_ps == 500

    def test_wake_moves_clock_forward(self):
        agent = CountingAgent("a", 1)
        agent.block()
        agent.wake(800)
        assert agent.local_time_ps == 800 and not agent.blocked

    def test_advance_rejects_negative(self):
        with pytest.raises(SimulationError):
            CountingAgent("a", 1).advance(-1)


class TestEngine:
    def test_single_agent_runs_to_completion(self):
        engine = Engine()
        agent = engine.add_agent(CountingAgent("a", 5))
        final = engine.run()
        assert agent.finished
        assert final == 500

    def test_duplicate_names_rejected(self):
        engine = Engine()
        engine.add_agent(CountingAgent("a", 1))
        with pytest.raises(SimulationError):
            engine.add_agent(CountingAgent("a", 1))

    def test_agent_lookup(self):
        engine = Engine()
        agent = engine.add_agent(CountingAgent("a", 1))
        assert engine.agent("a") is agent
        with pytest.raises(SimulationError):
            engine.agent("missing")

    def test_agents_stepped_in_time_order(self):
        engine = Engine()
        fast = engine.add_agent(CountingAgent("fast", 4, step_ps=100))
        slow = engine.add_agent(CountingAgent("slow", 2, step_ps=1000))
        engine.run()
        # The fast agent should complete all its early steps before the slow
        # agent's second step at t=1000.
        assert fast.trace == [0, 100, 200, 300]
        assert slow.trace == [0, 1000]

    def test_global_time_is_max_local_time(self):
        engine = Engine()
        engine.add_agent(CountingAgent("a", 1, step_ps=300))
        engine.add_agent(CountingAgent("b", 2, step_ps=500))
        assert engine.run() == 1000

    def test_deadlock_detected(self):
        engine = Engine()
        engine.add_agent(BlockingAgent("stuck"))
        with pytest.raises(DeadlockError):
            engine.run()

    def test_blocked_agent_can_be_woken_externally(self):
        engine = Engine()
        stuck = engine.add_agent(BlockingAgent("stuck"))
        worker = engine.add_agent(CountingAgent("worker", 1))
        # Run one step at a time; after the worker finishes, unstick the
        # blocked agent by finishing it directly.
        engine.run_step()
        engine.run_step()
        stuck.finish()
        assert engine.run() >= 0

    def test_step_limit_enforced(self):
        class Livelock(Agent):
            def step(self):
                self.advance(1)
                return StepOutcome.RAN

        engine = Engine(max_steps=100)
        engine.add_agent(Livelock("loop"))
        with pytest.raises(SimulationError):
            engine.run()

    def test_zero_time_step_forced_forward(self):
        class Sticky(Agent):
            def __init__(self):
                super().__init__("sticky")
                self.count = 0

            def step(self):
                self.count += 1
                if self.count >= 3:
                    return self.finish()
                return StepOutcome.RAN  # does not advance time

        engine = Engine()
        sticky = engine.add_agent(Sticky())
        engine.run()
        # The engine forces a minimal time advance to avoid spinning forever.
        assert sticky.local_time_ps >= 2

    def test_run_until_time_bound(self):
        engine = Engine()
        engine.add_agent(CountingAgent("a", 1000, step_ps=10))
        engine.run(until_ps=50)
        assert engine.now_ps <= 60

    def test_run_step_returns_none_when_done(self):
        engine = Engine()
        agent = engine.add_agent(CountingAgent("a", 0))
        engine.run()
        assert engine.run_step() is None
        assert agent.finished

    def test_run_step_applies_zero_time_guard(self):
        """run_step forces the clock forward on zero-time RAN outcomes, like run."""
        class Sticky(Agent):
            def step(self):
                return StepOutcome.RAN  # never advances its clock

        engine = Engine()
        sticky = engine.add_agent(Sticky("sticky"))
        for expected in (1, 2, 3):
            assert engine.run_step() is sticky
            assert sticky.local_time_ps == expected


class HandoffAgent(Agent):
    """Produces irregular clock advances and blocks until a peer wakes it.

    Each agent advances by a deterministic pseudo-random stride, blocks every
    third step (to be woken by whichever peer steps next), and wakes every
    currently-blocked peer when it runs — a dense exercise of the
    block/wake/advance callback paths.
    """

    def __init__(self, name, index, steps, peers, log):
        super().__init__(name)
        self.index = index
        self.remaining = steps
        self.peers = peers
        self.log = log
        self.state = index * 2654435761 % 2 ** 32

    def _next_stride(self):
        self.state = (self.state * 1103515245 + 12345) % 2 ** 31
        return 1 + self.state % 997

    def step(self):
        self.log.append((self.name, self.local_time_ps))
        for peer in self.peers:
            if peer is not self and peer.blocked:
                peer.wake(self.local_time_ps)
        if self.remaining == 0:
            return self.finish()
        self.remaining -= 1
        self.advance(self._next_stride())
        if self.remaining % 3 == 0 and any(
                p is not self and p.runnable for p in self.peers):
            return self.block()
        return StepOutcome.RAN


def _run_handoff_trace(scheduler, agents=6, steps=40):
    engine = Engine(scheduler=scheduler)
    log = []
    peers = []
    for index in range(agents):
        peers.append(HandoffAgent(f"agent{index}", index, steps, peers, log))
    for agent in peers:
        engine.add_agent(agent)
    final = engine.run()
    return log, final


class TestSchedulerEquivalence:
    def test_heap_rejects_unknown_scheduler(self):
        with pytest.raises(SimulationError):
            Engine(scheduler="random")

    def test_determinism_across_runs(self):
        """Two identical heap-scheduled runs produce the identical step trace."""
        first, final1 = _run_handoff_trace("heap")
        second, final2 = _run_handoff_trace("heap")
        assert first == second
        assert final1 == final2

    def test_heap_matches_linear_scan_on_recorded_trace(self):
        """The heap scheduler replays the linear scan's exact total order."""
        heap_log, heap_final = _run_handoff_trace("heap")
        linear_log, linear_final = _run_handoff_trace("linear")
        assert heap_log == linear_log
        assert heap_final == linear_final

    def test_heap_matches_linear_for_simple_agents(self):
        for scheduler in ("heap", "linear"):
            engine = Engine(scheduler=scheduler)
            fast = engine.add_agent(CountingAgent("fast", 4, step_ps=100))
            slow = engine.add_agent(CountingAgent("slow", 2, step_ps=1000))
            engine.run()
            assert fast.trace == [0, 100, 200, 300]
            assert slow.trace == [0, 1000]

    def test_ties_break_by_registration_order(self):
        """Agents with equal clocks step in the order they were registered."""
        engine = Engine()
        b = engine.add_agent(CountingAgent("b", 3, step_ps=100))
        a = engine.add_agent(CountingAgent("a", 3, step_ps=100))
        order = []
        while True:
            stepped = engine.run_step()
            if stepped is None:
                break
            order.append(stepped.name)
        # At every shared timestamp, "b" (registered first) steps before "a",
        # regardless of names.
        ran = [name for name in order][:6]
        assert ran == ["b", "a", "b", "a", "b", "a"]
        assert b.finished and a.finished

    def test_wake_never_rewinds_clock_under_heap(self):
        """A stale (earlier) heap entry never steps an agent at a rewound time."""
        engine = Engine()
        worker = engine.add_agent(CountingAgent("worker", 2, step_ps=50))
        sleeper = engine.add_agent(BlockingAgent("sleeper"))
        engine.run_step()   # worker @0
        engine.run_step()   # sleeper blocks @0
        sleeper.local_time_ps = 1000
        sleeper.wake(10)    # earlier wake must not rewind the clock
        assert sleeper.local_time_ps == 1000
        stepped = engine.run_step()
        # The worker (t=50) must be chosen over the sleeper (t=1000), even
        # though the sleeper once had an entry at t=0.
        assert stepped is worker

    def test_externally_mutated_state_reaches_the_ready_queue(self):
        """Direct attribute writes (tests, cores) keep the heap consistent."""
        engine = Engine()
        agent = engine.add_agent(CountingAgent("a", 1, step_ps=100))
        agent.blocked = True
        assert engine.run_step() is None
        agent.blocked = False
        assert engine.run_step() is agent

    def test_steps_executed_identical_across_schedulers(self):
        counts = {}
        for scheduler in ("heap", "linear"):
            engine = Engine(scheduler=scheduler)
            engine.add_agent(CountingAgent("a", 10, step_ps=7))
            engine.add_agent(CountingAgent("b", 5, step_ps=13))
            engine.run()
            counts[scheduler] = engine.steps_executed
        assert counts["heap"] == counts["linear"]
