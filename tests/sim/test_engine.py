"""Tests for the event-ordered engine."""

import pytest

from repro.errors import DeadlockError, SimulationError
from repro.sim.engine import Agent, Engine, StepOutcome


class CountingAgent(Agent):
    """Runs a fixed number of steps, each advancing by a fixed duration."""

    def __init__(self, name, steps, step_ps=100):
        super().__init__(name)
        self.remaining = steps
        self.step_ps = step_ps
        self.trace = []

    def step(self):
        if self.remaining == 0:
            return self.finish()
        self.remaining -= 1
        self.trace.append(self.local_time_ps)
        self.advance(self.step_ps)
        return StepOutcome.RAN


class BlockingAgent(Agent):
    """Blocks immediately and stays blocked."""

    def step(self):
        return self.block()


class TestAgentBasics:
    def test_new_agent_is_runnable(self):
        assert CountingAgent("a", 1).runnable

    def test_finish_makes_unrunnable(self):
        agent = CountingAgent("a", 0)
        agent.step()
        assert agent.finished and not agent.runnable

    def test_wake_never_moves_clock_backwards(self):
        agent = CountingAgent("a", 1)
        agent.local_time_ps = 500
        agent.wake(100)
        assert agent.local_time_ps == 500

    def test_wake_moves_clock_forward(self):
        agent = CountingAgent("a", 1)
        agent.block()
        agent.wake(800)
        assert agent.local_time_ps == 800 and not agent.blocked

    def test_advance_rejects_negative(self):
        with pytest.raises(SimulationError):
            CountingAgent("a", 1).advance(-1)


class TestEngine:
    def test_single_agent_runs_to_completion(self):
        engine = Engine()
        agent = engine.add_agent(CountingAgent("a", 5))
        final = engine.run()
        assert agent.finished
        assert final == 500

    def test_duplicate_names_rejected(self):
        engine = Engine()
        engine.add_agent(CountingAgent("a", 1))
        with pytest.raises(SimulationError):
            engine.add_agent(CountingAgent("a", 1))

    def test_agent_lookup(self):
        engine = Engine()
        agent = engine.add_agent(CountingAgent("a", 1))
        assert engine.agent("a") is agent
        with pytest.raises(SimulationError):
            engine.agent("missing")

    def test_agents_stepped_in_time_order(self):
        engine = Engine()
        fast = engine.add_agent(CountingAgent("fast", 4, step_ps=100))
        slow = engine.add_agent(CountingAgent("slow", 2, step_ps=1000))
        engine.run()
        # The fast agent should complete all its early steps before the slow
        # agent's second step at t=1000.
        assert fast.trace == [0, 100, 200, 300]
        assert slow.trace == [0, 1000]

    def test_global_time_is_max_local_time(self):
        engine = Engine()
        engine.add_agent(CountingAgent("a", 1, step_ps=300))
        engine.add_agent(CountingAgent("b", 2, step_ps=500))
        assert engine.run() == 1000

    def test_deadlock_detected(self):
        engine = Engine()
        engine.add_agent(BlockingAgent("stuck"))
        with pytest.raises(DeadlockError):
            engine.run()

    def test_blocked_agent_can_be_woken_externally(self):
        engine = Engine()
        stuck = engine.add_agent(BlockingAgent("stuck"))
        worker = engine.add_agent(CountingAgent("worker", 1))
        # Run one step at a time; after the worker finishes, unstick the
        # blocked agent by finishing it directly.
        engine.run_step()
        engine.run_step()
        stuck.finish()
        assert engine.run() >= 0

    def test_step_limit_enforced(self):
        class Livelock(Agent):
            def step(self):
                self.advance(1)
                return StepOutcome.RAN

        engine = Engine(max_steps=100)
        engine.add_agent(Livelock("loop"))
        with pytest.raises(SimulationError):
            engine.run()

    def test_zero_time_step_forced_forward(self):
        class Sticky(Agent):
            def __init__(self):
                super().__init__("sticky")
                self.count = 0

            def step(self):
                self.count += 1
                if self.count >= 3:
                    return self.finish()
                return StepOutcome.RAN  # does not advance time

        engine = Engine()
        sticky = engine.add_agent(Sticky())
        engine.run()
        # The engine forces a minimal time advance to avoid spinning forever.
        assert sticky.local_time_ps >= 2

    def test_run_until_time_bound(self):
        engine = Engine()
        engine.add_agent(CountingAgent("a", 1000, step_ps=10))
        engine.run(until_ps=50)
        assert engine.now_ps <= 60

    def test_run_step_returns_none_when_done(self):
        engine = Engine()
        agent = engine.add_agent(CountingAgent("a", 0))
        engine.run()
        assert engine.run_step() is None
        assert agent.finished
