"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.cache.cache import CacheConfig, SetAssociativeCache
from repro.coherence.directory import Directory
from repro.coherence.protocol import CoherentMemorySystem, L2Bank
from repro.config import small_ccsvm_system, tiny_caches_ccsvm_system
from repro.core.chip import CCSVMChip
from repro.interconnect.network import NetworkModel
from repro.interconnect.topology import Torus2DTopology
from repro.memory.dram import DRAMModel
from repro.memory.physical import FrameAllocator, PhysicalMemory
from repro.sim.stats import StatsRegistry
from repro.vm.manager import VirtualMemoryManager


@pytest.fixture
def stats():
    """A fresh statistics registry."""
    return StatsRegistry()


@pytest.fixture
def physical_memory():
    """16 MiB of physical memory."""
    return PhysicalMemory(16 * 1024 * 1024)


@pytest.fixture
def frame_allocator(physical_memory):
    """Frame allocator covering the physical memory fixture."""
    return FrameAllocator(physical_memory.size_bytes)


@pytest.fixture
def vm_manager(physical_memory, frame_allocator, stats):
    """Virtual-memory manager over the physical-memory fixtures."""
    return VirtualMemoryManager(physical_memory, frame_allocator, stats=stats)


def build_coherent_system(node_names, stats, banks=2, l1_bytes=1024,
                          l2_bytes=8192, line_size=64):
    """Construct a small coherent memory system for protocol tests."""
    l2_nodes = [f"l2b{i}" for i in range(banks)]
    topology = Torus2DTopology.fit(list(node_names) + l2_nodes + ["mem0"])
    network = NetworkModel(topology, stats=stats)
    dram = DRAMModel(100.0, stats=stats)
    l2_banks = []
    for index, node in enumerate(l2_nodes):
        cache = SetAssociativeCache(
            CacheConfig(size_bytes=l2_bytes, associativity=4, line_size=line_size,
                        hit_latency_ps=3000, name=f"l2.bank{index}"),
            stats=stats)
        l2_banks.append(L2Bank(name=node, cache=cache,
                               directory=Directory(f"dir{index}"),
                               hit_latency_ps=3000))
    system = CoherentMemorySystem(network, dram, l2_banks, "mem0", stats=stats)
    for node in node_names:
        l1 = SetAssociativeCache(
            CacheConfig(size_bytes=l1_bytes, associativity=2, line_size=line_size,
                        hit_latency_ps=700, name=f"l1d.{node}"),
            stats=stats)
        system.register_l1(node, l1, 700)
    return system


@pytest.fixture
def coherent_system(stats):
    """A 3-node coherent memory system with small caches."""
    return build_coherent_system(["cpu0", "mttop0", "mttop1"], stats)


@pytest.fixture
def small_chip():
    """A small CCSVM chip (1 CPU core, 2 MTTOP cores) with SC checking."""
    return CCSVMChip(small_ccsvm_system(), check_sc=True)


@pytest.fixture
def tiny_cache_chip():
    """A CCSVM chip with tiny caches, for eviction/writeback paths."""
    return CCSVMChip(tiny_caches_ccsvm_system(), check_sc=True)
