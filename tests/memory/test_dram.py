"""Tests for the DRAM timing/accounting model."""

import pytest

from repro.mem.levels import CacheLevel, LevelSpec
from repro.mem.private import PrivateHierarchy
from repro.memory.dram import DRAMModel
from repro.sim.clock import ns_to_ps
from repro.sim.stats import StatsRegistry


class TestDRAMModel:
    def test_read_latency(self):
        dram = DRAMModel(latency_ns=100.0)
        assert dram.read() == 100_000

    def test_write_latency(self):
        dram = DRAMModel(latency_ns=72.0)
        assert dram.write() == 72_000

    def test_access_counts(self):
        stats = StatsRegistry()
        dram = DRAMModel(100.0, stats=stats)
        dram.read()
        dram.read()
        dram.write()
        assert stats["dram.reads"] == 2
        assert stats["dram.writes"] == 1
        assert dram.total_accesses == 3

    def test_bytes_counted(self):
        dram = DRAMModel(100.0)
        dram.read(64)
        dram.write(128)
        assert dram.total_bytes == 192

    def test_access_dispatches_on_is_write(self):
        stats = StatsRegistry()
        dram = DRAMModel(100.0, stats=stats)
        dram.access(is_write=True)
        dram.access(is_write=False)
        assert stats["dram.reads"] == 1 and stats["dram.writes"] == 1

    def test_bandwidth_adds_serialisation(self):
        slow = DRAMModel(100.0, bandwidth_bytes_per_ns=1.0)
        fast = DRAMModel(100.0)
        assert slow.read(64) == 100_000 + 64_000
        assert fast.read(64) == 100_000

    def test_write_pays_serialisation_too(self):
        dram = DRAMModel(100.0, bandwidth_bytes_per_ns=2.0)
        assert dram.write(64) == 100_000 + 32_000

    @pytest.mark.parametrize("size,expected_extra_ps", [
        (64, 128_000),     # 64 B / 0.5 B/ns = 128 ns
        (128, 256_000),
        (8, 16_000),
    ])
    def test_serialisation_scales_with_access_size(self, size,
                                                   expected_extra_ps):
        dram = DRAMModel(100.0, bandwidth_bytes_per_ns=0.5)
        assert dram.read(size) == 100_000 + expected_extra_ps

    def test_fractional_serialisation_rounds_like_the_clock(self):
        # 64 B / 12 B/ns is not integral; the model must round exactly the
        # way ns_to_ps does, not truncate.
        dram = DRAMModel(100.0, bandwidth_bytes_per_ns=12.0)
        assert dram.read(64) == 100_000 + ns_to_ps(64 / 12.0)

    @pytest.mark.parametrize("bandwidth", [None, 0, 0.0])
    def test_unset_or_zero_bandwidth_means_no_serialisation(self, bandwidth):
        dram = DRAMModel(100.0, bandwidth_bytes_per_ns=bandwidth)
        assert dram.read(1 << 20) == 100_000
        assert dram.write(1 << 20) == 100_000

    def test_access_dispatch_includes_serialisation(self):
        dram = DRAMModel(100.0, bandwidth_bytes_per_ns=1.0)
        assert dram.access(is_write=False, size_bytes=64) == 164_000
        assert dram.access(is_write=True, size_bytes=64) == 164_000

    def test_hierarchy_misses_pay_the_serialisation_term(self):
        # End to end through a repro.mem stack: a line fill from a
        # bandwidth-limited DRAM is slower by exactly size/bandwidth.
        def miss_latency(bandwidth):
            stats = StatsRegistry()
            dram = DRAMModel(100.0, stats=stats,
                             bandwidth_bytes_per_ns=bandwidth)
            level = CacheLevel(LevelSpec("l1", 4 * 64, 2, hit_latency_ps=0,
                                         line_size=64), "h.l1", stats=stats)
            hierarchy = PrivateHierarchy("h", dram, [level], stats=stats,
                                         line_size=64)
            return hierarchy.access(0x1000, is_write=False)

        assert miss_latency(1.0) - miss_latency(None) == 64_000

    def test_custom_name_isolates_counters(self):
        stats = StatsRegistry()
        a = DRAMModel(100.0, stats=stats, name="dram_a")
        b = DRAMModel(100.0, stats=stats, name="dram_b")
        a.read()
        b.write()
        assert stats["dram_a.reads"] == 1
        assert stats["dram_b.writes"] == 1
        assert stats["dram_a.writes"] == 0
