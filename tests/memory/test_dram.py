"""Tests for the DRAM timing/accounting model."""

from repro.memory.dram import DRAMModel
from repro.sim.stats import StatsRegistry


class TestDRAMModel:
    def test_read_latency(self):
        dram = DRAMModel(latency_ns=100.0)
        assert dram.read() == 100_000

    def test_write_latency(self):
        dram = DRAMModel(latency_ns=72.0)
        assert dram.write() == 72_000

    def test_access_counts(self):
        stats = StatsRegistry()
        dram = DRAMModel(100.0, stats=stats)
        dram.read()
        dram.read()
        dram.write()
        assert stats["dram.reads"] == 2
        assert stats["dram.writes"] == 1
        assert dram.total_accesses == 3

    def test_bytes_counted(self):
        dram = DRAMModel(100.0)
        dram.read(64)
        dram.write(128)
        assert dram.total_bytes == 192

    def test_access_dispatches_on_is_write(self):
        stats = StatsRegistry()
        dram = DRAMModel(100.0, stats=stats)
        dram.access(is_write=True)
        dram.access(is_write=False)
        assert stats["dram.reads"] == 1 and stats["dram.writes"] == 1

    def test_bandwidth_adds_serialisation(self):
        slow = DRAMModel(100.0, bandwidth_bytes_per_ns=1.0)
        fast = DRAMModel(100.0)
        assert slow.read(64) == 100_000 + 64_000
        assert fast.read(64) == 100_000

    def test_custom_name_isolates_counters(self):
        stats = StatsRegistry()
        a = DRAMModel(100.0, stats=stats, name="dram_a")
        b = DRAMModel(100.0, stats=stats, name="dram_b")
        a.read()
        b.write()
        assert stats["dram_a.reads"] == 1
        assert stats["dram_b.writes"] == 1
        assert stats["dram_a.writes"] == 0
