"""Tests for address arithmetic helpers."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import AlignmentError
from repro.memory import address


class TestAlignment:
    def test_align_down(self):
        assert address.align_down(0x1234, 0x100) == 0x1200

    def test_align_up(self):
        assert address.align_up(0x1234, 0x100) == 0x1300

    def test_align_up_already_aligned(self):
        assert address.align_up(0x1200, 0x100) == 0x1200

    def test_is_aligned(self):
        assert address.is_aligned(4096, 4096)
        assert not address.is_aligned(4097, 4096)

    def test_rejects_non_power_of_two(self):
        with pytest.raises(AlignmentError):
            address.align_down(100, 3)

    @given(st.integers(0, 2**48), st.sampled_from([8, 64, 4096]))
    def test_align_down_le_address(self, addr, alignment):
        aligned = address.align_down(addr, alignment)
        assert aligned <= addr and aligned % alignment == 0

    @given(st.integers(0, 2**48), st.sampled_from([8, 64, 4096]))
    def test_align_up_ge_address(self, addr, alignment):
        aligned = address.align_up(addr, alignment)
        assert aligned >= addr and aligned % alignment == 0


class TestPageHelpers:
    def test_page_number(self):
        assert address.page_number(4096 * 3 + 5) == 3

    def test_page_offset(self):
        assert address.page_offset(4096 * 3 + 5) == 5

    def test_page_address(self):
        assert address.page_address(4096 * 3 + 5) == 4096 * 3

    def test_constants(self):
        assert address.PAGE_SIZE == 4096
        assert address.CACHE_LINE_SIZE == 64
        assert address.WORD_SIZE == 8


class TestLineHelpers:
    def test_line_address(self):
        assert address.line_address(0x1234) == 0x1200

    def test_line_offset(self):
        assert address.line_offset(0x1234) == 0x34

    def test_lines_in_range_single(self):
        assert list(address.lines_in_range(0, 8)) == [0]

    def test_lines_in_range_straddles(self):
        assert list(address.lines_in_range(60, 8)) == [0, 64]

    def test_lines_in_range_empty(self):
        assert list(address.lines_in_range(100, 0)) == []

    def test_words_in_range(self):
        assert list(address.words_in_range(0, 24)) == [0, 8, 16]

    def test_words_in_range_unaligned_start(self):
        assert list(address.words_in_range(4, 8)) == [0, 8]

    @given(st.integers(0, 1 << 30), st.integers(1, 1024))
    def test_lines_cover_range(self, start, length):
        lines = list(address.lines_in_range(start, length))
        assert lines[0] <= start
        assert lines[-1] + address.CACHE_LINE_SIZE >= start + length
        assert all(b - a == address.CACHE_LINE_SIZE for a, b in zip(lines, lines[1:]))
