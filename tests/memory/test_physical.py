"""Tests for the physical memory backing store and frame allocator."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import AlignmentError, OutOfPhysicalMemoryError, UnmappedAddressError
from repro.memory.address import PAGE_SIZE
from repro.memory.physical import FrameAllocator, PhysicalMemory, to_signed, to_unsigned


class TestWordEncoding:
    def test_signed_roundtrip_negative(self):
        assert to_signed(to_unsigned(-5)) == -5

    def test_signed_roundtrip_positive(self):
        assert to_signed(to_unsigned(123456789)) == 123456789

    @given(st.integers(min_value=-(2**63), max_value=2**63 - 1))
    def test_roundtrip_any_64bit(self, value):
        assert to_signed(to_unsigned(value)) == value


class TestFrameAllocator:
    def test_allocates_distinct_page_aligned_frames(self):
        allocator = FrameAllocator(16 * PAGE_SIZE)
        frames = {allocator.allocate() for _ in range(16)}
        assert len(frames) == 16
        assert all(frame % PAGE_SIZE == 0 for frame in frames)

    def test_exhaustion(self):
        allocator = FrameAllocator(2 * PAGE_SIZE)
        allocator.allocate()
        allocator.allocate()
        with pytest.raises(OutOfPhysicalMemoryError):
            allocator.allocate()

    def test_free_and_reuse(self):
        allocator = FrameAllocator(PAGE_SIZE)
        frame = allocator.allocate()
        allocator.free(frame)
        assert allocator.allocate() == frame

    def test_double_free_rejected(self):
        allocator = FrameAllocator(2 * PAGE_SIZE)
        frame = allocator.allocate()
        allocator.free(frame)
        with pytest.raises(UnmappedAddressError):
            allocator.free(frame)

    def test_free_unaligned_rejected(self):
        allocator = FrameAllocator(2 * PAGE_SIZE)
        allocator.allocate()
        with pytest.raises(AlignmentError):
            allocator.free(12)

    def test_counts(self):
        allocator = FrameAllocator(4 * PAGE_SIZE)
        assert allocator.total_frames == 4
        allocator.allocate()
        assert allocator.allocated_frames == 1
        assert allocator.free_frames == 3

    def test_reserved_region_not_allocated(self):
        allocator = FrameAllocator(4 * PAGE_SIZE, reserved_bytes=2 * PAGE_SIZE)
        assert allocator.total_frames == 2
        assert allocator.allocate() >= 2 * PAGE_SIZE

    def test_rejects_unaligned_size(self):
        with pytest.raises(AlignmentError):
            FrameAllocator(PAGE_SIZE + 1)

    def test_is_allocated(self):
        allocator = FrameAllocator(2 * PAGE_SIZE)
        frame = allocator.allocate()
        assert allocator.is_allocated(frame)
        assert not allocator.is_allocated(frame + PAGE_SIZE)


class TestPhysicalMemory:
    def test_unwritten_reads_zero(self):
        assert PhysicalMemory(4096).read_word(128) == 0

    def test_write_read_roundtrip(self):
        memory = PhysicalMemory(4096)
        memory.write_word(64, 42)
        assert memory.read_word(64) == 42

    def test_negative_values(self):
        memory = PhysicalMemory(4096)
        memory.write_word(0, -17)
        assert memory.read_word(0) == -17
        assert memory.read_unsigned(0) == (1 << 64) - 17

    def test_subword_addresses_alias_word(self):
        memory = PhysicalMemory(4096)
        memory.write_word(8, 1)
        assert memory.read_word(12) == 1

    def test_out_of_range_rejected(self):
        memory = PhysicalMemory(4096)
        with pytest.raises(UnmappedAddressError):
            memory.read_word(4096)
        with pytest.raises(UnmappedAddressError):
            memory.write_word(-8, 0)

    def test_bulk_roundtrip(self):
        memory = PhysicalMemory(4096)
        memory.write_words(0, [1, 2, 3])
        assert memory.read_words(0, 3) == [1, 2, 3]

    def test_copy(self):
        memory = PhysicalMemory(4096)
        memory.write_words(0, [5, 6])
        memory.copy(0, 256, 16)
        assert memory.read_words(256, 2) == [5, 6]

    def test_copy_rejects_unaligned_length(self):
        with pytest.raises(AlignmentError):
            PhysicalMemory(4096).copy(0, 64, 12)

    def test_zero_page(self):
        memory = PhysicalMemory(2 * PAGE_SIZE)
        memory.write_word(10, 99)
        memory.zero_page(0)
        assert memory.read_word(10) == 0

    def test_words_written_tracking(self):
        memory = PhysicalMemory(4096)
        memory.write_word(0, 1)
        memory.write_word(8, 1)
        memory.write_word(0, 2)
        assert memory.words_written == 2

    @given(st.lists(st.integers(-(2**62), 2**62), min_size=1, max_size=32))
    def test_array_roundtrip_property(self, values):
        memory = PhysicalMemory(64 * 1024)
        memory.write_words(512, values)
        assert memory.read_words(512, len(values)) == values
