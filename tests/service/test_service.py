"""Integration tests for ``repro serve``: real sockets, real workers.

Each test boots a :class:`~repro.service.server.SweepService` on an
ephemeral localhost port inside a dedicated event-loop thread; workers
are threads running the same ``run_worker`` loop the ``repro worker``
subcommand runs, so the full v3 wire path (hello -> welcome negotiation,
job-scoped task ids, credit flow, requeue) is exercised end to end.
"""

import asyncio
import json
import socket
import threading
import time

import pytest

from repro.api import JobSpec, JobState
from repro.harness import (
    PointResult,
    SerialBackend,
    SweepPoint,
    SweepRunner,
    run_worker,
)
from repro.harness.cli import main as cli_main
from repro.harness.wire import (
    decode_result,
    parse_address,
    recv_frame,
    send_frame,
)
from repro.harness.worker import execute_task
from repro.service import (
    ServiceBackend,
    ServiceClient,
    ServiceError,
    SweepService,
)


def square_point(value):
    return PointResult(rows=[{"value": value, "square": value * value}],
                       stats={"points.computed": 1})


def slow_square_point(value):
    time.sleep(0.2)
    return square_point(value)


def _points(values, spec="svc", func=square_point):
    return [SweepPoint(spec=spec, point_id=f"value={v}", func=func,
                       kwargs={"value": v}) for v in values]


def _job(values, *, name="svc", submitter="tester", priority=0):
    return JobSpec.from_points(_points(values), name=name,
                               submitter=submitter, priority=priority)


class _LiveService:
    """A SweepService running on its own event-loop thread."""

    def __init__(self, max_retries=3):
        self.service = SweepService(bind="127.0.0.1:0",
                                    max_retries=max_retries, quiet=True)
        self.loop = asyncio.new_event_loop()
        self._ready = threading.Event()
        self.thread = threading.Thread(target=self._run, daemon=True)
        self.thread.start()
        if not self._ready.wait(10):
            raise RuntimeError("service did not start")

    def _run(self):
        asyncio.set_event_loop(self.loop)
        self.loop.run_until_complete(self.service.start())
        self._ready.set()
        try:
            self.loop.run_until_complete(self.service.serve())
        finally:
            self.loop.close()

    @property
    def address(self):
        host, port = self.service.address
        return f"{host}:{port}"

    def signal(self, callback):
        """Run ``callback`` on the service's loop (signal-handler stand-in)."""
        self.loop.call_soon_threadsafe(callback)

    def stop(self, timeout=10):
        try:
            self.signal(self.service.request_stop)
        except RuntimeError:
            pass  # loop already closed (the service drained on its own)
        self.thread.join(timeout)


@pytest.fixture()
def live():
    harness = _LiveService()
    yield harness
    harness.stop()


def _start_worker(address, jobs=1):
    thread = threading.Thread(target=run_worker, args=(address,),
                              kwargs={"retry_seconds": 10.0, "jobs": jobs},
                              daemon=True)
    thread.start()
    return thread


# --------------------------------------------------------------------------- #
# Wire v3: negotiation and job-scoped task ids
# --------------------------------------------------------------------------- #
class TestProtocol:
    def test_v2_worker_negotiates_and_serves_job_scoped_ids(self, live):
        # A hand-rolled v2 worker: v2 hello in, welcome with min(3, 2) out,
        # then a point whose task id is the v3 job-scoped string — which a
        # v2 worker echoes back opaquely, exactly like the real ones do.
        sock = socket.create_connection(parse_address(live.address),
                                        timeout=10.0)
        try:
            send_frame(sock, {"type": "hello", "pid": 1, "proto": 2,
                              "slots": 1})
            assert recv_frame(sock) == {"type": "welcome", "proto": 2,
                                        "role": "worker"}
            with ServiceClient(live.address) as client:
                job_id = client.submit(_job([3]))
                frame = recv_frame(sock)
                assert frame["type"] == "point"
                assert frame["task_id"] == f"{job_id}/0"
                send_frame(sock, execute_task(frame["task_id"],
                                              str(frame["point"])))
                reply = client.result(job_id)
            assert reply["state"] == "done"
            result = decode_result(reply["points"][0]["result"])
            assert result.rows == [{"value": 3, "square": 9}]
        finally:
            sock.close()

    def test_v1_hello_counts_as_one_slot_lockstep(self, live):
        sock = socket.create_connection(parse_address(live.address),
                                        timeout=10.0)
        try:
            send_frame(sock, {"type": "hello", "pid": 1})  # no proto, no slots
            assert recv_frame(sock) == {"type": "welcome", "proto": 1,
                                        "role": "worker"}
            with ServiceClient(live.address) as client:
                job_id = client.submit(_job([1, 2]))
                first = recv_frame(sock)
                assert first["type"] == "point"
                # one slot -> exactly one point outstanding; the second
                # frame only arrives after the first result goes back.
                send_frame(sock, execute_task(first["task_id"],
                                              str(first["point"])))
                second = recv_frame(sock)
                assert second["task_id"] == f"{job_id}/1"
                send_frame(sock, execute_task(second["task_id"],
                                              str(second["point"])))
                assert client.result(job_id)["state"] == "done"
        finally:
            sock.close()

    def test_non_worker_garbage_is_rejected(self, live):
        sock = socket.create_connection(parse_address(live.address),
                                        timeout=10.0)
        try:
            send_frame(sock, {"type": "gibberish"})
            reply = recv_frame(sock)
            assert reply["type"] == "error"
        finally:
            sock.close()


# --------------------------------------------------------------------------- #
# Concurrent submitters over one fleet
# --------------------------------------------------------------------------- #
class TestConcurrentSweeps:
    def test_two_submitters_byte_identical_to_serial(self, live):
        _start_worker(live.address)
        _start_worker(live.address)
        points_a = _points(range(6), spec="sweep-a")
        points_b = _points(range(100, 108), spec="sweep-b")

        outcomes = {}

        def _submit(key, points):
            backend = ServiceBackend(connect=live.address, submitter=key)
            runner = SweepRunner(backend=backend)
            outcomes[key] = runner.run_points(list(points), spec_name=key)

        threads = [threading.Thread(target=_submit, args=("a", points_a)),
                   threading.Thread(target=_submit, args=("b", points_b))]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(60)
        assert set(outcomes) == {"a", "b"}

        serial = SweepRunner(backend=SerialBackend())
        ref_a = serial.run_points(list(points_a), spec_name="a")
        ref_b = serial.run_points(list(points_b), spec_name="b")
        assert outcomes["a"].result == ref_a.result
        assert outcomes["b"].result == ref_b.result
        assert outcomes["a"].stats.to_dict() == ref_a.stats.to_dict()
        assert outcomes["b"].stats.to_dict() == ref_b.stats.to_dict()

    def test_service_backend_fills_and_uses_the_point_cache(self, live,
                                                           tmp_path):
        _start_worker(live.address)
        cache_dir = str(tmp_path / "cache")
        points = _points(range(4), spec="svc-cached")
        service_runner = SweepRunner(
            cache_dir=cache_dir, backend=ServiceBackend(connect=live.address))
        first = service_runner.run_points(list(points), spec_name="svc-cached")
        assert first.points_from_cache == 0
        # a later *serial* run is served entirely from the cache the
        # service-backed run wrote — the cache contract is backend-agnostic
        serial_runner = SweepRunner(cache_dir=cache_dir,
                                    backend=SerialBackend())
        second = serial_runner.run_points(list(points),
                                         spec_name="svc-cached")
        assert second.points_from_cache == 4
        assert second.result == first.result
        # The coordinator-side store attributes each point to the worker
        # the service reported in its point_result frame.
        from repro.store import FileStore, point_cache_key

        store = FileStore(cache_dir)
        assert store.verify().ok
        for point in points:
            record = store.load("svc-cached",
                                point_cache_key(point)).provenance
            assert record.backend == "service"
            assert record.worker and "pid=" in record.worker

    def test_service_records_provenance_in_its_own_store(self, live,
                                                         tmp_path):
        from repro.store import FileStore, point_cache_key

        store = FileStore(str(tmp_path / "serve-store"))
        live.service.store = store
        _start_worker(live.address)
        points = _points(range(3), spec="svc-stored")
        spec = JobSpec.from_points(points, name="svc-stored",
                                   submitter="alice@laptop")
        with ServiceClient(live.address) as client:
            job_id = client.submit(spec)
            reply = client.result(job_id)
        assert reply.get("state") == "done"
        # Every point is in the service's store, attributed to the job.
        assert store.verify().ok
        for point in points:
            entry = store.load("svc-stored", point_cache_key(point))
            record = entry.provenance
            assert record.job_id == job_id
            assert record.submitter == "alice@laptop"
            assert record.backend == "service"
            assert record.worker and "pid=" in record.worker
            assert record.duration_s is not None
        # A coordinator pointed at the same store re-runs for free.
        outcome = SweepRunner(store=store).run_points(list(points),
                                                      spec_name="svc-stored")
        assert outcome.points_from_cache == 3


# --------------------------------------------------------------------------- #
# Fleet churn and shutdown
# --------------------------------------------------------------------------- #
class TestResilience:
    def test_killed_worker_mid_job_loses_no_points(self, live):
        # A saboteur "worker" accepts one point and vanishes without a
        # reply; the job must still finish completely once a real worker
        # joins, via requeue of the lost point.
        saboteur = socket.create_connection(parse_address(live.address),
                                            timeout=10.0)
        send_frame(saboteur, {"type": "hello", "pid": 666, "proto": 3,
                              "slots": 1})
        recv_frame(saboteur)  # welcome
        with ServiceClient(live.address) as client:
            job_id = client.submit(_job([1, 2, 3, 4]))
            taken = recv_frame(saboteur)
            assert taken["type"] == "point"
            saboteur.close()  # dies mid-job, holding one point
            _start_worker(live.address)
            reply = client.result(job_id)
        assert reply["state"] == "done"
        values = sorted(decode_result(entry["result"]).rows[0]["square"]
                        for entry in reply["points"])
        assert values == [1, 4, 9, 16]

    def test_backend_cancel_mid_run_iter_is_clean_and_resettable(self, live):
        # The DSE early-stop contract on the service backend: results
        # yielded before cancel() are real and correctly indexed, the
        # stream ends without yielding the abandoned tail, and reset()
        # re-arms the same backend for a complete, correct rerun.
        _start_worker(live.address)
        values = list(range(6))
        backend = ServiceBackend(connect=live.address, submitter="dse")
        points = _points(values, func=slow_square_point)
        iterator = backend.run_iter(points)
        pairs = [next(iterator)]
        backend.cancel()
        pairs.extend(iterator)
        assert len(pairs) < len(values)  # the tail was abandoned
        for index, result in pairs:
            assert isinstance(result, PointResult)
            assert result.rows == [{"value": values[index],
                                    "square": values[index] ** 2}]
        backend.reset()
        replay = backend.run(points)
        assert [r.rows for r in replay] == \
            [r.rows for r in SerialBackend().run(points)]

    def test_cancel_settles_job_without_workers(self, live):
        with ServiceClient(live.address) as client:
            job_id = client.submit(_job([1, 2, 3]))
            assert client.status(job_id)[0].state is JobState.QUEUED
            status = client.cancel(job_id)
            assert status.state is JobState.CANCELLED
            reply = client.result(job_id)  # already terminal: no blocking
        assert reply["state"] == "cancelled"
        assert all(not entry["ok"] for entry in reply["points"])
        assert "cancelled before it ran" in reply["points"][0]["error"]

    def test_unknown_job_is_an_error(self, live):
        with ServiceClient(live.address) as client:
            with pytest.raises(ServiceError, match="unknown job"):
                client.result("job-404")

    def test_drain_refuses_submissions_finishes_jobs_then_exits(self):
        harness = _LiveService()
        try:
            client = ServiceClient(harness.address)
            job_id = client.submit(_job([5, 6]))  # queued; no workers yet
            harness.signal(harness.service.request_drain)  # SIGTERM path
            with pytest.raises(ServiceError, match="draining"):
                client.submit(_job([7]))
            assert client.status_payload().get("draining") is True
            # the accepted job still runs to completion on a late worker ...
            _start_worker(harness.address)
            reply = client.result(job_id)
            assert reply["state"] == "done"
            client.close()
            # ... and with every job settled the drain completes by itself
            harness.thread.join(15)
            assert not harness.thread.is_alive()
        finally:
            harness.stop()


# --------------------------------------------------------------------------- #
# CLI wiring: submit / status / result against a live service
# --------------------------------------------------------------------------- #
class TestServiceCli:
    def test_submit_status_result_matches_local_sweep(self, live, capsys):
        _start_worker(live.address)
        base = ["--connect", live.address]
        assert cli_main(["submit", "matmul", "--system", "cpu",
                         "--grid", "size=4", *base]) == 0
        job_id = capsys.readouterr().out.strip()
        assert job_id.startswith("job-")

        assert cli_main(["result", job_id, *base]) == 0
        service_out = capsys.readouterr().out
        # the same scenario swept locally renders byte-identically
        assert cli_main(["sweep", "matmul", "--system", "cpu",
                         "--grid", "size=4", "--no-cache"]) == 0
        assert capsys.readouterr().out == service_out

        assert cli_main(["status", "--json", *base]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["jobs"][0]["state"] == "done"
        assert payload["jobs"][0]["total"] == 1
        assert payload["workers"], "the worker fleet should be listed"

        assert cli_main(["status", *base]) == 0
        assert job_id in capsys.readouterr().out

    def test_result_of_failed_job_names_the_point(self, live, capsys):
        _start_worker(live.address)
        spec = JobSpec.from_points(
            [SweepPoint(spec="bad", point_id="p0",
                        func="tests_no_such_module:missing", kwargs={})],
            name="bad", submitter="cli-test")
        with ServiceClient(live.address) as client:
            job_id = client.submit(spec)
        assert cli_main(["result", job_id, "--connect", live.address]) == 2
        err = capsys.readouterr().err
        assert "bad:p0" in err and "failed" in err
