"""Unit tests for the service job queue and the typed job vocabulary.

Everything here drives :class:`~repro.service.jobs.JobQueue` directly —
no sockets, no event loop — because the queue owns every scheduling
policy decision (priorities, fair share, requeue, drain) and those must
be assertable deterministically.
"""

import pytest

from repro.api import JobSpec, JobState, JobStatus
from repro.harness import PointResult, SweepPoint
from repro.service.jobs import JobQueue, ServiceError


def square_point(value):
    return PointResult(rows=[{"value": value, "square": value * value}])


def _points(values, spec="test"):
    return [SweepPoint(spec=spec, point_id=f"value={v}", func=square_point,
                       kwargs={"value": v}) for v in values]


def _spec(n, *, name="job", submitter="alice", priority=0):
    return JobSpec.from_points(_points(range(n)), name=name,
                               submitter=submitter, priority=priority)


def _ok(index=0):
    return {"ok": True, "result": f"blob-{index}"}


# --------------------------------------------------------------------------- #
# JobSpec / JobStatus / JobState round trips
# --------------------------------------------------------------------------- #
class TestJobTypes:
    def test_job_state_round_trip(self):
        for state in JobState:
            assert JobState.from_json(state.value) is state
        with pytest.raises(ValueError, match="known states"):
            JobState.from_json("exploded")

    def test_terminal_states(self):
        assert not JobState.QUEUED.terminal
        assert not JobState.RUNNING.terminal
        assert JobState.DONE.terminal
        assert JobState.FAILED.terminal
        assert JobState.CANCELLED.terminal

    def test_job_spec_round_trip(self):
        spec = _spec(3, name="fig", submitter="bob", priority=7)
        again = JobSpec.from_json(spec.to_json())
        assert again == spec
        # from_points forced the function to its reference string: the
        # encoded payloads must be derivable without pickling a callable.
        entry = again.points[0]
        assert set(entry) == {"spec", "point_id", "group", "point"}

    def test_job_spec_from_json_validates(self):
        with pytest.raises(ValueError, match="JSON object"):
            JobSpec.from_json("nope")
        with pytest.raises(ValueError, match="'points' list"):
            JobSpec.from_json({"name": "x"})
        with pytest.raises(ValueError, match="string 'spec'"):
            JobSpec.from_json({"points": [{"spec": 1}]})
        with pytest.raises(ValueError, match="priority"):
            JobSpec.from_json({"points": [], "priority": "high"})

    def test_job_status_round_trip(self):
        status = JobStatus(job_id="job-1", name="fig", submitter="alice",
                           priority=2, state=JobState.RUNNING, total=5,
                           completed=2, failed=1, error="boom")
        again = JobStatus.from_json(status.to_json())
        assert again == status
        assert again.settled == 3


# --------------------------------------------------------------------------- #
# Scheduling policy
# --------------------------------------------------------------------------- #
class TestScheduling:
    def test_fair_share_interleaves_two_submitters(self):
        queue = JobQueue()
        queue.submit(_spec(4, submitter="alice"))
        queue.submit(_spec(4, submitter="bob"))
        order = []
        for _ in range(8):
            job, index = queue.next_assignment("w1")
            order.append((job.spec.submitter, index))
        # Cumulative fair share: strict alternation, not job order.
        assert [submitter for submitter, _ in order] == \
            ["alice", "bob"] * 4
        # ... and each job's points still dispatch in declaration order.
        assert [i for s, i in order if s == "alice"] == [0, 1, 2, 3]

    def test_priority_preempts_queue(self):
        queue = JobQueue()
        low = queue.submit(_spec(2, submitter="alice", priority=0))
        queue.next_assignment("w1")  # one low-priority point is in flight
        high = queue.submit(_spec(2, submitter="bob", priority=5))
        # The high-priority job's points all dispatch before the low
        # job's remaining point ...
        assert queue.next_assignment("w1")[0] is high
        assert queue.next_assignment("w1")[0] is high
        # ... but the already-dispatched low point was not recalled.
        assert low.inflight
        assert queue.next_assignment("w1")[0] is low

    def test_fifo_within_submitter_and_priority(self):
        queue = JobQueue()
        first = queue.submit(_spec(1, submitter="alice"))
        second = queue.submit(_spec(1, submitter="alice"))
        assert queue.next_assignment("w")[0] is first
        assert queue.next_assignment("w")[0] is second
        assert queue.next_assignment("w") is None

    def test_lifecycle_and_completion(self):
        queue = JobQueue()
        job = queue.submit(_spec(2))
        assert job.state is JobState.QUEUED
        _, index = queue.next_assignment("w")
        assert job.state is JobState.RUNNING
        assert queue.complete(job, index, _ok(index))
        assert job.state is JobState.RUNNING
        _, index2 = queue.next_assignment("w")
        assert queue.complete(job, index2, _ok(index2))
        assert job.state is JobState.DONE
        assert job.status().settled == 2
        # late duplicate replies are dropped, not double-counted
        assert not queue.complete(job, index, _ok(index))

    def test_point_failure_fails_job_with_named_point(self):
        queue = JobQueue()
        job = queue.submit(_spec(1, name="fig"))
        _, index = queue.next_assignment("w")
        assert queue.complete(job, index, {"ok": False, "error": "boom"})
        assert job.state is JobState.FAILED
        assert "test:value=0" in job.error and "boom" in job.error

    def test_empty_job_is_immediately_done(self):
        queue = JobQueue()
        job = queue.submit(JobSpec(name="empty", submitter="alice"))
        assert job.state is JobState.DONE


# --------------------------------------------------------------------------- #
# Worker loss, cancel, drain
# --------------------------------------------------------------------------- #
class TestRecovery:
    def test_requeue_puts_lost_points_first_in_order(self):
        queue = JobQueue()
        job = queue.submit(_spec(4))
        assert queue.next_assignment("dying")[1] == 0
        assert queue.next_assignment("dying")[1] == 1
        assert queue.requeue_worker("dying") == []  # retried, not settled
        assert list(job.pending) == [0, 1, 2, 3]
        assert not job.inflight

    def test_requeue_only_touches_that_workers_points(self):
        queue = JobQueue()
        job = queue.submit(_spec(3))
        queue.next_assignment("dying")
        queue.next_assignment("healthy")
        queue.requeue_worker("dying")
        assert job.inflight == {1: "healthy"}
        assert list(job.pending) == [0, 2]

    def test_point_exhausts_retries(self):
        queue = JobQueue(max_retries=2)
        job = queue.submit(_spec(1))
        for round_ in range(2):
            queue.next_assignment("dying")
            assert queue.requeue_worker("dying") == [], round_
        queue.next_assignment("dying")
        settled = queue.requeue_worker("dying")
        assert [(j.job_id, i) for j, i, _ in settled] == [(job.job_id, 0)]
        assert job.state is JobState.FAILED
        assert "lost 3 times" in job.error

    def test_cancel_drops_pending_and_late_results(self):
        queue = JobQueue()
        job = queue.submit(_spec(3))
        _, index = queue.next_assignment("w")
        assert queue.cancel(job.job_id) is job
        assert job.state is JobState.CANCELLED
        assert not job.pending
        # a result for the in-flight point arriving after cancel is dropped
        assert not queue.complete(job, index, _ok(index))
        assert queue.cancel(job.job_id) is None  # idempotent
        assert queue.cancel("job-99") is None    # unknown

    def test_drain_refuses_new_submissions_but_finishes_accepted(self):
        queue = JobQueue()
        job = queue.submit(_spec(1))
        queue.draining = True
        with pytest.raises(ServiceError, match="draining"):
            queue.submit(_spec(1))
        assert queue.unfinished() == 1
        _, index = queue.next_assignment("w")  # accepted work still runs
        queue.complete(job, index, _ok(index))
        assert queue.unfinished() == 0

    def test_statuses_in_submission_order(self):
        queue = JobQueue()
        queue.submit(_spec(1, name="a"))
        queue.submit(_spec(1, name="b"))
        assert [status.name for status in queue.statuses()] == ["a", "b"]
        assert queue.statuses("job-2")[0].name == "b"
        with pytest.raises(ServiceError, match="unknown job"):
            queue.statuses("job-9")
