"""Tests for the experiment harness (report rendering and small sweeps)."""

import pytest

from repro.config import small_ccsvm_system
from repro.experiments import figure5, figure6, figure7, figure8, figure9, table2
from repro.experiments.report import render_table, rows_to_csv

SMALL = small_ccsvm_system()


class TestReport:
    def test_render_table_alignment_and_values(self):
        rows = [{"a": 1, "b": 2.5}, {"a": 10, "b": 0.001}]
        text = render_table(rows, title="T")
        assert "T" in text and "a" in text and "10" in text

    def test_render_empty(self):
        assert "(no data)" in render_table([])

    def test_csv(self):
        rows = [{"a": 1, "b": 2}]
        assert rows_to_csv(rows) == "a,b\n1,2"

    def test_csv_empty(self):
        assert rows_to_csv([]) == ""

    def test_csv_escapes_commas_and_quotes(self):
        rows = [{"a": "x,y", "b": 'he said "hi"'}]
        assert rows_to_csv(rows) == 'a,b\n"x,y","he said ""hi"""'

    def test_csv_round_trips_through_csv_reader(self):
        import csv
        import io
        rows = [{"parameter": "4 cores, 2.9 GHz", "value": 12}]
        parsed = list(csv.reader(io.StringIO(rows_to_csv(rows))))
        assert parsed == [["parameter", "value"], ["4 cores, 2.9 GHz", "12"]]


class TestTable2:
    def test_rows_cover_both_systems(self):
        rows = table2.rows()
        assert len(rows) >= 8
        assert all(set(row) == set(table2.COLUMNS) for row in rows)

    def test_render_mentions_key_numbers(self):
        text = table2.render()
        assert "2.9" in text and "600" in text and "torus" in text.lower()


class TestFigureSweeps:
    """Single-point sweeps with the small chip keep these fast but real."""

    def test_figure5_row_contents(self):
        rows = figure5.run(sizes=(6,), ccsvm_config=SMALL)
        row = rows[0]
        assert set(figure5.COLUMNS) <= set(row)
        assert row["rel_apu_opencl"] > row["rel_apu_nosetup"]
        assert "Figure 5" in figure5.render(rows)

    def test_figure6_row_contents(self):
        rows = figure6.run(sizes=(6,), ccsvm_config=SMALL)
        assert rows[0]["rel_apu_opencl"] > 1
        assert "Figure 6" in figure6.render(rows)

    def test_figure7_row_contents(self):
        rows = figure7.run(body_counts=(12,), timesteps=1, ccsvm_config=SMALL)
        row = rows[0]
        assert row["speedup_vs_cpu"] > 0
        assert "Figure 7" in figure7.render(rows)

    def test_figure8_panels(self):
        panels = {
            "by_size": figure8.run_size_sweep(sizes=(12,), ccsvm_config=SMALL),
            "by_density": figure8.run_density_sweep(densities=(0.1,), size=12,
                                                    ccsvm_config=SMALL),
        }
        assert panels["by_size"][0]["mttop_mallocs"] > 0
        assert "Figure 8" in figure8.render(panels)

    def test_figure9_row_contents(self):
        rows = figure9.run(sizes=(6,), ccsvm_config=SMALL)
        row = rows[0]
        assert row["apu_opencl_dram_accesses"] > row["ccsvm_xthreads_dram_accesses"]
        assert "Figure 9" in figure9.render(rows)
