"""Byte-identity of every paper sweep against pre-port golden output.

``tests/experiments/golden/all_sweeps_default.txt`` was captured from
``repro run all --no-cache --backend serial`` *before* the experiments were
ported onto the ``repro.api`` scenario registry (PR 4).  The port must not
change a single rendered byte: the scenario machinery re-derives exactly
the rows the hand-wired ``_point`` functions used to build.
"""

import os

from repro.harness import SweepRunner, get_spec, spec_names

GOLDEN = os.path.join(os.path.dirname(__file__), "golden",
                      "all_sweeps_default.txt")


def test_all_sweeps_render_byte_identical_to_pre_port_golden():
    runner = SweepRunner()  # serial, no cache — same as the capture run
    rendered = []
    for name in spec_names():
        spec = get_spec(name)
        outcome = runner.run_spec(spec, full=False)
        rendered.append(spec.render(outcome.result))
    produced = "\n\n".join(rendered) + "\n"
    with open(GOLDEN, encoding="utf-8") as handle:
        golden = handle.read()
    assert produced == golden
