"""Tests for the system preset registry and dotted-path config overrides."""

import pytest

from repro.config import (
    CCSVMSystemConfig,
    MTTOPCoreConfig,
    OverrideError,
    amd_apu_system,
    apply_overrides,
    ccsvm_system,
    override_applies,
    parse_size,
)
from repro.errors import ConfigurationError
from repro.systems import (
    SystemRegistryError,
    get_system,
    overrides_applicable,
    system_config,
    system_names,
)


class TestParseSize:
    @pytest.mark.parametrize("text,expected", [
        ("64", 64),
        ("8MiB", 8 * 1024 * 1024),
        ("16 KiB", 16 * 1024),
        ("1GiB", 1 << 30),
        ("2k", 2048),
        ("1.5MiB", 3 * 512 * 1024),
        ("4MB", 4_000_000),
    ])
    def test_sizes(self, text, expected):
        assert parse_size(text) == expected

    def test_garbage_raises(self):
        with pytest.raises(ValueError):
            parse_size("lots")


class TestApplyOverrides:
    def test_nested_field_replaced_rest_untouched(self):
        base = ccsvm_system()
        rebuilt = apply_overrides(base, {"mttop.count": 20})
        assert rebuilt.mttop.count == 20
        # Everything else — including siblings of the replaced field and
        # the untouched sections — carries over.
        assert rebuilt.mttop.simd_width == base.mttop.simd_width
        assert rebuilt.cpu == base.cpu
        assert rebuilt.l2 == base.l2
        assert isinstance(rebuilt, CCSVMSystemConfig)
        assert base.mttop.count == 10  # original frozen config untouched

    def test_multiple_overrides_and_string_coercion(self):
        rebuilt = apply_overrides(ccsvm_system(), {
            "mttop.count": "20",
            "l2.total_size_bytes": "8MiB",
            "cpu.max_ipc": "2",
            "mttop.write_through": "true",
        })
        assert rebuilt.mttop.count == 20
        assert rebuilt.l2.total_size_bytes == 8 * 1024 * 1024
        assert rebuilt.cpu.max_ipc == 2.0
        assert rebuilt.mttop.write_through is True

    def test_top_level_scalar_field(self):
        rebuilt = apply_overrides(ccsvm_system(), {"spin_poll_ns": 500})
        assert rebuilt.spin_poll_ns == 500.0

    def test_unknown_path_lists_fields(self):
        with pytest.raises(OverrideError, match="available fields"):
            apply_overrides(ccsvm_system(), {"mttop.bogus": 1})
        with pytest.raises(OverrideError, match="has no field"):
            apply_overrides(ccsvm_system(), {"nope.count": 1})

    def test_type_mismatch_raises(self):
        with pytest.raises(OverrideError, match="expected an integer"):
            apply_overrides(ccsvm_system(), {"mttop.count": "many"})
        with pytest.raises(OverrideError, match="expected a number"):
            apply_overrides(ccsvm_system(), {"cpu.max_ipc": "fast"})
        with pytest.raises(OverrideError, match="expected a boolean"):
            apply_overrides(ccsvm_system(), {"mttop.write_through": "maybe"})
        with pytest.raises(OverrideError, match="expected an integer"):
            apply_overrides(ccsvm_system(), {"mttop.count": 2.5})

    def test_section_needs_field_or_instance(self):
        with pytest.raises(OverrideError, match="nested .* section"):
            apply_overrides(ccsvm_system(), {"mttop": 5})
        # ... but a whole replacement dataclass of the right type works.
        rebuilt = apply_overrides(ccsvm_system(),
                                  {"mttop": MTTOPCoreConfig(count=2)})
        assert rebuilt.mttop.count == 2

    def test_path_through_scalar_rejected(self):
        with pytest.raises(OverrideError, match="not a nested section"):
            apply_overrides(ccsvm_system(), {"mttop.count.extra": 1})

    def test_dataclass_validation_still_runs(self):
        # 4 MiB does not divide across 3 banks: the section's own
        # __post_init__ must still veto the rebuilt config.
        with pytest.raises(ConfigurationError):
            apply_overrides(ccsvm_system(), {"l2.banks": 3})

    def test_override_applies(self):
        assert override_applies(ccsvm_system(), "mttop.count")
        assert not override_applies(amd_apu_system(), "mttop.count")
        assert override_applies(amd_apu_system(), "gpu.simd_units")

    def test_override_applies_walks_the_whole_path(self):
        # Both configs have a 'cpu' section, but only the CCSVM one has
        # l1_hit_cycles — a root-only check would wrongly claim the
        # override applies to the APU and fail the sweep mid-run.
        assert override_applies(ccsvm_system(), "cpu.l1_hit_cycles")
        assert not override_applies(amd_apu_system(), "cpu.l1_hit_cycles")
        assert not override_applies(ccsvm_system(), "mttop.bogus")
        assert not override_applies(ccsvm_system(), "mttop.count.extra")
        # Replacing a whole section with a dataclass instance resolves too.
        assert override_applies(ccsvm_system(), "mttop")


class TestSystemRegistry:
    def test_builtin_presets_registered(self):
        assert {"cpu", "apu", "ccsvm", "ccsvm-small", "pthreads"} <= \
            set(system_names())

    def test_presets_map_to_variants(self):
        assert get_system("ccsvm-small").variant == "ccsvm"
        assert get_system("apu").variant == "apu"
        assert get_system("cpu").variant == "cpu"

    def test_unknown_preset_rejected(self):
        with pytest.raises(SystemRegistryError, match="known systems"):
            get_system("gpu9000")

    def test_system_config_applies_applicable_overrides_only(self):
        overrides = {"mttop.count": 4, "cpu.max_ipc": 1.0}
        ccsvm = system_config("ccsvm", overrides)
        assert ccsvm.mttop.count == 4 and ccsvm.cpu.max_ipc == 1.0
        # The APU config has no mttop section; the shared override set is
        # filtered down to the paths that exist on it.
        apu = system_config("apu", overrides)
        assert apu.cpu.max_ipc == 1.0
        assert overrides_applicable("apu", overrides) == ["cpu.max_ipc"]

    def test_system_config_skips_same_root_different_leaf(self):
        # 'cpu' exists on both system families, but l1_hit_cycles is a
        # CCSVM-only field: the APU presets must skip it, not crash.
        overrides = {"cpu.l1_hit_cycles": 3}
        assert system_config("ccsvm", overrides).cpu.l1_hit_cycles == 3
        apu = system_config("cpu", overrides)  # APU-config preset
        assert apu == system_config("cpu")
        assert overrides_applicable("cpu", overrides) == []

    def test_small_preset_builds_small_chip(self):
        config = system_config("ccsvm-small")
        assert config.mttop.count < ccsvm_system().mttop.count

    def test_hierarchy_shape_presets_registered(self):
        assert {"ccsvm-l3", "ccsvm-no-tlb", "apu-shared-l2"} <= \
            set(system_names())
        assert system_config("ccsvm-l3").l3.enabled
        assert not system_config("ccsvm-no-tlb").tlb_enabled
        assert system_config("apu-shared-l2").cpu.l2_shared

    def test_shape_fields_reachable_by_overrides(self):
        config = system_config("ccsvm", {"l3.enabled": True,
                                         "l3.total_size_bytes": "8MiB",
                                         "tlb_enabled": False,
                                         "l2.replacement": "plru"})
        assert config.l3.enabled
        assert config.l3.total_size_bytes == 8 * 1024 * 1024
        assert not config.tlb_enabled
        assert config.l2.replacement == "plru"
        apu = system_config("apu-shared-l2", {"cpu.l2_shared": "false"})
        assert not apu.cpu.l2_shared
