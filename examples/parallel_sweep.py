#!/usr/bin/env python3
"""Driving the sweep harness from Python: parallel runs, caching, custom sweeps.

Three things the :mod:`repro.harness` subsystem gives every experiment:

1. run any registered sweep (``figure5`` ... ``table2``, ``ablations``)
   with per-point process parallelism,
2. cache completed points on disk so re-runs only simulate what changed,
3. declare a brand-new sweep in ~10 lines and get both for free.

Run with::

    python examples/parallel_sweep.py [jobs]
"""

import sys
import tempfile
import time

from repro.config import small_ccsvm_system
from repro.harness import PointResult, SweepPoint, SweepRunner, spec_names
from repro.workloads import vector_add


def registered_sweep(jobs: int) -> None:
    """1 + 2: figure5 through the runner, twice, with a point cache."""
    print(f"registered sweeps: {', '.join(spec_names())}\n")
    with tempfile.TemporaryDirectory() as cache_dir:
        runner = SweepRunner(jobs=jobs, cache_dir=cache_dir)
        for attempt in ("cold", "warm"):
            started = time.monotonic()
            outcome = runner.run("figure5", sizes=(8, 12, 16, 24))
            elapsed = time.monotonic() - started
            print(f"figure5 ({attempt}, jobs={jobs}): "
                  f"{outcome.points_total} points, "
                  f"{outcome.points_from_cache} from cache, {elapsed:.1f}s")
        print(f"merged stats: {outcome.stats.get('dram.reads')} DRAM reads "
              f"across the whole sweep\n")


# --------------------------------------------------------------------------- #
# 3: a custom sweep — vector-add scaling on a small CCSVM chip
# --------------------------------------------------------------------------- #
def vector_add_point(size):
    """One sweep point: vector add of ``size`` elements on the small chip."""
    result = vector_add.run_ccsvm(size=size, config=small_ccsvm_system())
    row = {"size": size, "time_us": result.time_ns / 1e3,
           "dram_accesses": result.dram_accesses, "verified": result.verified}
    return PointResult(rows=[row], stats=dict(result.counters))


def custom_sweep(jobs: int) -> None:
    # The small chip has 2 MTTOP cores x 32 thread contexts, and vector add
    # launches one thread per element, so sweep sizes up to 64.
    points = [SweepPoint(spec="vector_add_scaling", point_id=f"size={size}",
                         func=vector_add_point, kwargs={"size": size})
              for size in (8, 16, 32, 64)]
    outcome = SweepRunner(jobs=jobs).run_points(points,
                                                spec_name="vector_add_scaling")
    print("custom sweep — vector add scaling on the small CCSVM chip:")
    for row in outcome.rows:
        print(f"  size={row['size']:4d}  {row['time_us']:8.1f} us  "
              f"{row['dram_accesses']:5d} DRAM accesses  "
              f"verified={row['verified']}")


def main() -> None:
    jobs = int(sys.argv[1]) if len(sys.argv) > 1 else 4
    registered_sweep(jobs)
    custom_sweep(jobs)


if __name__ == "__main__":
    main()
