#!/usr/bin/env python3
"""Dynamically allocated, pointer-based results on the MTTOP (Figure 8).

Sparse matrix multiplication where both inputs are per-row linked lists and
every MTTOP thread builds its output row as a linked list whose nodes it
allocates with ``mttop_malloc`` — the CPU services each allocation on the
MTTOP thread's behalf.  As density grows, the number of result non-zeros
(and therefore CPU-serviced allocations) grows, and the speedup collapses:
exactly the trade-off the paper's Figure 8 documents.

Run with::

    python examples/sparse_dynamic_allocation.py [size]
"""

import sys

from repro.experiments import figure8


def main() -> None:
    size = int(sys.argv[1]) if len(sys.argv) > 1 else figure8.RIGHT_PANEL_SIZE

    panels = {
        "by_size": figure8.run_size_sweep(),
        "by_density": figure8.run_density_sweep(size=size),
    }
    print(figure8.render(panels))
    density_rows = panels["by_density"]
    first, last = density_rows[0], density_rows[-1]
    print()
    print(f"At {first['density']:.0%} density the CCSVM run needs "
          f"{first['mttop_mallocs']} mttop_malloc calls; at {last['density']:.0%} "
          f"it needs {last['mttop_mallocs']}, and the speedup moves from "
          f"{first['speedup_vs_cpu']:.2f}x to {last['speedup_vs_cpu']:.2f}x — "
          "the CPU-serviced allocator becomes the bottleneck.")


if __name__ == "__main__":
    main()
