#!/usr/bin/env python3
"""Multi-host sweep execution: a coordinator plus two multi-slot workers.

The :class:`~repro.harness.backends.DistributedBackend` streams sweep
points over TCP to ``repro worker`` processes — here both workers run on
localhost, but ``--connect HOST:PORT`` works just as well across machines
sharing the repository.  Each worker is started with ``--jobs 2``, so it
executes two points at once on a local process pool and replies out of
order as they finish; the coordinator pipelines up to ``slots`` points per
connection and matches replies back by task id.  The coordinator keeps the
point cache and the declaration-order row merge, so the result is
identical to a serial run no matter how many workers (or slots per
worker) serve it — this script checks exactly that.

Run with::

    PYTHONPATH=src python examples/distributed_sweep.py
"""

import os
import subprocess
import sys
import time

from repro.config import small_ccsvm_system
from repro.harness import DistributedBackend, SweepRunner

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SIZES = (6, 8, 12)


def spawn_worker(address: str, jobs: int = 2) -> "subprocess.Popen[bytes]":
    """Start one ``repro worker --jobs N`` subprocess aimed at ``address``."""
    env = dict(os.environ)
    src = os.path.join(REPO_ROOT, "src")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = src + (os.pathsep + existing if existing else "")
    return subprocess.Popen(
        [sys.executable, "-m", "repro", "worker", "--connect", address,
         "--jobs", str(jobs)],
        env=env)


def main() -> int:
    small = small_ccsvm_system()

    # Baseline: the same sweep, serially in this process.
    serial = SweepRunner().run("figure5", sizes=SIZES, ccsvm_config=small)

    # Distributed: bind an ephemeral port, point two workers at it.
    backend = DistributedBackend(bind="127.0.0.1:0", min_workers=2,
                                 start_timeout=60.0)
    host, port = backend.listen()
    print(f"coordinator listening on {host}:{port}; "
          f"spawning 2 workers with 2 slots each")
    workers = [spawn_worker(f"{host}:{port}", jobs=2) for _ in range(2)]
    try:
        started = time.monotonic()
        with backend:  # close() sends the workers 'shutdown' on exit
            runner = SweepRunner(backend=backend)
            outcome = runner.run("figure5", sizes=SIZES, ccsvm_config=small)
        elapsed = time.monotonic() - started
    finally:
        for worker in workers:
            worker.wait(timeout=30)

    print(f"\nfigure5 over 2 workers x 2 slots: {outcome.points_total} "
          f"points in {elapsed:.1f}s")
    for row in outcome.rows:
        print(f"  size={row['size']:3d}  "
              f"ccsvm={row['ccsvm_xthreads_ms']:.3f} ms  "
              f"rel_ccsvm={row['rel_ccsvm']:.3f}")

    identical = outcome.rows == serial.rows
    print(f"\nrows identical to the serial run: {identical}")
    return 0 if identical else 1


if __name__ == "__main__":
    sys.exit(main())
