#!/usr/bin/env python3
"""Quickstart: the paper's vector-add example on both systems.

Runs the Figure 4 xthreads program on the simulated CCSVM chip and the
Figure 3 OpenCL program on the APU baseline, prints both runtimes and DRAM
access counts, and prints the Table 2 configuration summary.

Run with::

    python examples/quickstart.py [vector_size]

To regenerate the paper's full evaluation (Figures 5-9, Table 2 and the
ablation grid) with process parallelism and point caching, use the sweep
harness CLI instead::

    python -m repro run all --jobs 4
"""

import sys

from repro.experiments import table2
from repro.workloads import vector_add


def main() -> None:
    size = int(sys.argv[1]) if len(sys.argv) > 1 else 256

    print(table2.render())
    print()

    ccsvm = vector_add.run_ccsvm(size=size)
    opencl = vector_add.run_opencl(size=size)
    cpu = vector_add.run_cpu(size=size)

    print(f"vector_add, {size} elements (all runs verified against the reference):")
    print(f"  CCSVM / xthreads : {ccsvm.time_ns / 1e3:10.1f} us   "
          f"{ccsvm.dram_accesses:6d} DRAM accesses  verified={ccsvm.verified}")
    print(f"  APU / OpenCL     : {opencl.time_ns / 1e3:10.1f} us   "
          f"{opencl.dram_accesses:6d} DRAM accesses  verified={opencl.verified}")
    without_setup = (opencl.time_without_setup_ps or 0) / 1e6
    print(f"    (without compile + init: {without_setup:10.1f} us)")
    print(f"  one AMD CPU core : {cpu.time_ns / 1e3:10.1f} us   "
          f"{cpu.dram_accesses:6d} DRAM accesses  verified={cpu.verified}")
    print()
    print("The APU pays a large fixed cost (OpenCL compilation, context setup, "
          "per-launch driver overhead) and moves data through off-chip DRAM; "
          "the CCSVM chip launches the same work with a write syscall and "
          "communicates through the coherent on-chip cache hierarchy.")


if __name__ == "__main__":
    main()
