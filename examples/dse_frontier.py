#!/usr/bin/env python3
"""Design-space exploration through ``repro.dse``: a tiny Pareto frontier.

The paper's CCSVM chip is one point in a large memory-hierarchy space;
``repro.dse`` searches that space.  This script explores a deliberately
tiny slice of it — MTTOP L1 size x shared-L2 size on the scaled-down
``ccsvm-small`` preset, running a small matmul — under an SRAM budget,
and prints the (time, SRAM) Pareto frontier:

* the **space** is pure data: two typed axes over dotted config paths,
  a fidelity ladder over the matmul size (successive halving's rungs);
* the **budget** prunes the biggest shapes before any simulation;
* **successive halving** measures every surviving shape at the low
  fidelity rung, keeps the better half, and cancels in-flight points of
  eliminated shapes the moment the cut is decided;
* the **frontier** is the set of shapes nothing else beats on both time
  and SRAM at once.

The equivalent shell form (spaces usually live in TOML files)::

    python -m repro dse --space shapes.toml --strategy halving \
        --budget sram=256KiB --objective time --cost sram

Run with::

    PYTHONPATH=src python examples/dse_frontier.py
"""

from repro.dse import (
    Budget,
    CategoricalAxis,
    Explorer,
    Fidelity,
    ShapeSpace,
    SuccessiveHalving,
)

KB = 1024

space = ShapeSpace(
    name="dse-example",
    workload="matmul",
    system="ccsvm-small",
    axes=(
        CategoricalAxis("mttop.l1_size_bytes", (4 * KB, 8 * KB)),
        CategoricalAxis("l2.total_size_bytes", (64 * KB, 128 * KB, 256 * KB)),
    ),
    fidelity=Fidelity(param="size", values=(4, 8)),
)

# 6 shapes declared; the budget prunes those whose total on-chip SRAM
# (L1s + L2 + TLBs) cannot fit — without simulating them.
explorer = Explorer(space,
                    budget=Budget(sram_bytes=256 * KB),
                    objective="time_ms", cost="sram_bytes")
exploration = explorer.explore(SuccessiveHalving(eta=2))

print(exploration.result.render(
    title="matmul on ccsvm-small: time vs on-chip SRAM"))
stats = exploration.stats
print(f"\n{stats.shapes_total} shapes declared, "
      f"{stats.shapes_pruned} pruned by the budget, "
      f"{stats.points_simulated} points simulated, "
      f"{stats.points_cancelled} cancelled early")
for pruned in exploration.pruned:
    print(f"  pruned {pruned.shape.shape_id}: {pruned.reason}")
