#!/usr/bin/env python3
"""Offloading small matrix multiplies (Figures 5 and 9).

Sweeps matrix sizes, running the same dense matrix multiplication on
(a) one AMD CPU core, (b) the APU through OpenCL, and (c) the CCSVM chip
through xthreads, then prints the paper's Figure 5 (runtime relative to the
CPU core) and Figure 9 (off-chip DRAM accesses) tables.

Run with::

    python examples/matmul_offload.py [size [size ...]]

Sizes default to a fast sweep; pass larger sizes (e.g. 48 64) to see the APU
catch up as its raw GPU throughput starts to dominate.
"""

import sys

from repro.experiments import figure5, figure9


def main() -> None:
    sizes = tuple(int(argument) for argument in sys.argv[1:]) or (8, 16, 24, 32)

    rows5 = figure5.run(sizes=sizes)
    print(figure5.render(rows5))
    print()
    rows9 = figure9.run(sizes=sizes)
    print(figure9.render(rows9))
    print()
    smallest = rows5[0]
    print(f"At {smallest['size']}x{smallest['size']}, the APU spends "
          f"{smallest['rel_apu_opencl']:.0f}x the CPU core's runtime (mostly "
          "OpenCL compilation, initialisation and launch overhead), while "
          f"CCSVM/xthreads needs only {smallest['rel_ccsvm']:.2f}x — tight "
          "coupling makes offloading small tasks worthwhile.")


if __name__ == "__main__":
    main()
