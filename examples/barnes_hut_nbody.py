#!/usr/bin/env python3
"""Pointer chasing on an accelerator: Barnes-Hut n-body (Figure 7).

Each timestep the CPU rebuilds a pointer-based octree (a sequential phase),
the MTTOP threads traverse it to compute forces (a parallel phase), and the
CPU integrates positions — the kind of frequent sequential/parallel toggling
that is hopeless on a loosely-coupled chip but cheap under CCSVM.

Runs the CCSVM/xthreads version against one APU CPU core and the 4-thread
pthreads version, like the paper's Figure 7.

Run with::

    python examples/barnes_hut_nbody.py [bodies [timesteps]]
"""

import sys

from repro.experiments import figure7


def main() -> None:
    bodies = int(sys.argv[1]) if len(sys.argv) > 1 else 64
    timesteps = int(sys.argv[2]) if len(sys.argv) > 2 else 2

    rows = figure7.run(body_counts=(bodies,), timesteps=timesteps)
    print(figure7.render(rows))
    row = rows[0]
    print()
    print(f"With {bodies} bodies and {timesteps} timesteps, CCSVM/xthreads runs "
          f"{row['speedup_vs_cpu']:.2f}x the single-core speed and "
          f"{row['speedup_vs_pthreads']:.2f}x the 4-thread pthreads speed. "
          "Every value was verified against a functional execution of the same "
          "fixed-point algorithm.")


if __name__ == "__main__":
    main()
