#!/usr/bin/env python3
"""Near-free shape evaluation: DSE over a captured trace, no cores.

A fixed-workload design-space sweep asks one question per shape — "how
does the memory hierarchy behave under this exact reference stream?" —
yet full simulation re-runs the whole machine (cores, engine, scheduler)
to answer it.  This script does it the cache-only way:

1. **capture** one ``mem_stream`` reference stream to a trace file
   (20k mixed ops over a 32 KiB footprint);
2. **explore** an L1-size x L2-size space where every candidate shape is
   scored by ``cache_replay`` — :mod:`repro.mem.replay` walking the
   captured stream through a bare assembled hierarchy (TLBs, private
   levels, MOESI directory), producing the identical hierarchy counters
   full simulation would;
3. **compare** the per-point cost of both evaluators, so the speedup is
   measured rather than asserted.

The equivalent shell form (spaces usually live in TOML files)::

    python -m repro dse --space shapes.toml --replay ms.trace.json

Run with::

    PYTHONPATH=src python examples/cache_replay_dse.py
"""

import tempfile
import time
from pathlib import Path

from repro.dse import Budget, CategoricalAxis, Explorer, RandomSearch, ShapeSpace
from repro.mem.replay import replay_trace
from repro.systems import system_config
from repro.workloads.trace_replay import capture_trace, run_replay

KB = 1024

workdir = Path(tempfile.mkdtemp(prefix="cache_replay_dse_"))
trace_path = str(workdir / "mem_stream.trace.json")

# 1. Capture: one deterministic mixed reference stream (loads, stores,
# vectors, atomics, malloc/free), verified against its software shadow.
trace = capture_trace("mem_stream", seed=1, path=trace_path,
                      ops=20_000, words=4096, locality=0.95, atomics=0.0)
assert trace.meta["verified"]
print(f"captured {trace.operation_count} operations -> {trace_path}")

# 2. Explore: every shape is evaluated by cache-only replay of that one
# trace.  No fidelity ladder — the trace is the (fixed) workload.
space = ShapeSpace(
    name="cache-replay-example",
    workload="cache_replay",
    system="ccsvm-small",
    axes=(
        CategoricalAxis("cpu.l1_size_bytes", (16 * KB, 32 * KB)),
        CategoricalAxis("l2.total_size_bytes", (64 * KB, 128 * KB, 256 * KB)),
    ),
    params={"trace": trace_path},
)
explorer = Explorer(space, budget=Budget(sram_bytes=512 * KB),
                    objective="time_ms", cost="sram_bytes")
exploration = explorer.explore(RandomSearch(samples=6, seed=0))
print(exploration.result.render(
    title="mem_stream replay on ccsvm-small: time vs on-chip SRAM"))

# 3. Honest accounting: time one warm design point through each
# evaluator (best of three), on the paper's full ccsvm preset.


def _best_of(evaluate, runs=3):
    evaluate()  # warm imports and the trace/program caches
    samples = []
    for _ in range(runs):
        started = time.perf_counter()
        evaluate()
        samples.append(time.perf_counter() - started)
    return min(samples)


config = system_config("ccsvm")
full_s = _best_of(lambda: run_replay(trace_path, config=config))
fast_s = _best_of(lambda: replay_trace(trace_path, config))
print(f"\nper-point cost: full simulation {full_s * 1e3:.1f} ms, "
      f"cache-only replay {fast_s * 1e3:.1f} ms "
      f"({full_s / fast_s:.1f}x) — identical hierarchy counters "
      f"(gated by tests/mem/test_replay_equivalence.py)")
