#!/usr/bin/env python3
"""A non-paper scenario through ``repro.api``: Barnes-Hut MTTOP core scaling.

The paper fixes the CCSVM chip at 10 MTTOP cores; this script asks a
question the paper never did — how does Barnes-Hut scale as the chip's
MTTOP core count grows? — without writing a new experiment module.  A
:class:`~repro.api.Scenario` composes it from registered parts:

* the ``barnes_hut`` workload from the workload registry,
* the ``ccsvm-small`` system preset (fast to simulate),
* a grid over a *dotted-path configuration override* ``mttop.count``,
* the distributed execution backend, fed by two spawned workers.

Each MTTOP core count is its own scenario (overrides are per-scenario
configuration, grids are workload parameters), so the script builds the
point list by concatenating one scenario per core count — still pure data,
and every point travels to the workers as registry names, never as pickled
functions or config objects.

The equivalent shell one-liner for a single core count is::

    python -m repro sweep barnes_hut --system ccsvm-small \
        --grid bodies=16,32 --param timesteps=1 --set mttop.count=4

Run with::

    PYTHONPATH=src python examples/custom_scenario.py
"""

import os
import subprocess
import sys
import time

from repro.api import ResultSet, Scenario
from repro.harness import DistributedBackend, SweepRunner

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

MTTOP_COUNTS = (1, 2, 4, 8)
BODIES = 32
TIMESTEPS = 1


def spawn_worker(address: str, jobs: int = 2) -> "subprocess.Popen[bytes]":
    """Start one ``repro worker --jobs N`` subprocess aimed at ``address``."""
    env = dict(os.environ)
    src = os.path.join(REPO_ROOT, "src")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = src + (os.pathsep + existing if existing else "")
    return subprocess.Popen(
        [sys.executable, "-m", "repro", "worker", "--connect", address,
         "--jobs", str(jobs)],
        env=env)


def core_scaling_points():
    """One scenario per MTTOP core count, concatenated in declared order."""
    points = []
    for count in MTTOP_COUNTS:
        scenario = Scenario(
            workload="barnes_hut",
            systems=("ccsvm-small",),
            grid={"bodies": (BODIES,)},
            params={"timesteps": TIMESTEPS},
            overrides={"mttop.count": count},
            seed=5,
            name="bh-core-scaling",
        )
        points.extend(scenario.points())
    return points


def main() -> int:
    points = core_scaling_points()

    backend = DistributedBackend(bind="127.0.0.1:0", min_workers=2,
                                 start_timeout=60.0)
    host, port = backend.listen()
    print(f"coordinator listening on {host}:{port}; spawning 2 workers")
    workers = [spawn_worker(f"{host}:{port}") for _ in range(2)]
    try:
        started = time.monotonic()
        with backend:  # close() sends the workers 'shutdown' on exit
            runner = SweepRunner(backend=backend)
            outcome = runner.run_points(points, spec_name="bh-core-scaling")
        elapsed = time.monotonic() - started
    finally:
        for worker in workers:
            worker.wait(timeout=30)

    results = ResultSet.from_outcome(outcome)
    print(f"\n{outcome.points_total} points in {elapsed:.1f}s over "
          f"2 distributed workers\n")
    # The rows don't record the override (it is chip configuration, not a
    # workload parameter), so zip the core counts back in for the table.
    scaling = ResultSet(groups={"rows": [
        {"mttop_cores": count, "bodies": row["bodies"],
         "time_ms": row["time_ms"], "dram_accesses": row["dram_accesses"]}
        for count, row in zip(MTTOP_COUNTS, results.rows)]})
    print(scaling.render(
        title=f"Barnes-Hut ({BODIES} bodies) vs CCSVM MTTOP core count"))

    times = scaling.column("time_ms")
    monotone = all(later <= earlier * 1.05
                   for earlier, later in zip(times, times[1:]))
    print(f"\nruntime non-increasing with core count: {monotone}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
