"""Regenerates Table 2 and checks the presets against the paper's numbers."""

from __future__ import annotations

from conftest import run_once

from repro.config import amd_apu_system, ccsvm_system
from repro.experiments import table2


def test_table2_system_configurations(benchmark, record_figure):
    rows = run_once(benchmark, table2.rows)
    text = table2.render()
    record_figure("table2_configs", text)
    print("\n" + text)

    assert len(rows) >= 8

    ccsvm = ccsvm_system()
    apu = amd_apu_system()
    # Key Table 2 parameters.
    assert ccsvm.cpu.count == 4 and ccsvm.cpu.max_ipc == 0.5
    assert ccsvm.mttop.count == 10 and ccsvm.mttop.simd_width == 8
    assert ccsvm.mttop.max_operations_per_cycle == 80
    assert ccsvm.l2.total_size_bytes == 4 * 1024 * 1024 and ccsvm.l2.banks == 4
    assert ccsvm.dram.latency_ns == 100.0
    assert ccsvm.noc.link_bandwidth_gbps == 12.0
    assert apu.cpu.count == 4 and apu.cpu.max_ipc == 4.0
    assert apu.gpu.simd_units == 5 and apu.gpu.vliw_lanes == 16
    assert apu.dram.latency_ns == 72.0
