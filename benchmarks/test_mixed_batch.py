"""Microbenchmark: mixed-kind batches through the vectorized dispatch.

PR 6's columnar engine made *homogeneous* batches (all loads, all stores)
fast; real streams are mixed.  The vectorized mixed-stream path splits a
``(kind, vaddr, a, b)`` batch into columns with one numpy transpose,
trims permission segments with vector compares, and moves data with
per-kind sub-vector gathers — falling back to the stdlib transpose and
the per-op loop when numpy is unavailable (``REPRO_NO_NUMPY=1``).

This benchmark drives a steady-state 3:1 load:store mixed stream through
one CPU core's :meth:`~repro.mem.port.CoreMemoryPort.run_batch` under
both columnar kernels and against the scalar per-op dispatch, records
the rates to ``benchmarks/results/mixed_batch.{txt,json}`` (plus the
trajectory), and asserts the numpy kernel clears a 3.5x floor (measured
~5x standalone, ~4.4x inside the full suite; the floor leaves margin for
noisy CI hosts — the pre-vectorization path sat at ~2.8x on the same
stream).  Values, latencies and every
statistics counter are asserted bit-identical to the scalar oracle —
the speedup is pure host wall-clock.
"""

from __future__ import annotations

import time

from conftest import run_once

from repro.config import small_ccsvm_system
from repro.core.chip import CCSVMChip
from repro.mem.batch import OP_ATOMIC_ADD, OP_ATOMIC_CAS, OP_LOAD, OP_STORE
from repro.sim import columnar

ACCESSES = 120_000
WORKING_SET_WORDS = 256  # resident in one page and the 8 KiB L1
BATCH_WORDS = 4096
REPEATS = 3


def _build_port():
    chip = CCSVMChip(small_ccsvm_system())
    chip.create_process("mixed_batch_bench")
    port = chip.cpu_cores[0].memory_port
    base = chip.malloc(WORKING_SET_WORDS * 8)
    for index in range(WORKING_SET_WORDS):
        port.store(base + index * 8, index)
    return chip, port, base


def _mixed_ops(count: int, base: int, atomics: bool = False):
    """A 3:1 load:store stream; optionally spiked with atomics."""
    ops = []
    for index in range(count):
        vaddr = base + (index % WORKING_SET_WORDS) * 8
        slot = index & 15
        if atomics and slot == 7:
            ops.append((OP_ATOMIC_ADD, vaddr, 1, 0))
        elif atomics and slot == 11:
            ops.append((OP_ATOMIC_CAS, vaddr, 0, index))
        elif index & 3:
            ops.append((OP_LOAD, vaddr, 0, 0))
        else:
            ops.append((OP_STORE, vaddr, index, 0))
    return ops


def _mixed_rate(kernel: str, batched: bool = True,
                accesses: int = ACCESSES, repeats: int = REPEATS) -> float:
    """Best-of-``repeats`` mixed ops/second under one columnar kernel."""
    if kernel == "numpy":
        if not columnar.use_numpy_kernel():
            raise RuntimeError("numpy kernel unavailable")
    else:
        columnar.use_python_kernel()
    try:
        best = 0.0
        for _ in range(repeats):
            _chip, port, base = _build_port()
            port.batch_enabled = batched
            ops = _mixed_ops(BATCH_WORDS, base)
            run_batch = port.run_batch
            started = time.perf_counter()
            for _chunk in range(accesses // BATCH_WORDS):
                run_batch(ops)
            elapsed = time.perf_counter() - started
            best = max(best, accesses / elapsed)
        return best
    finally:
        if not columnar.use_numpy_kernel():
            columnar.use_python_kernel()


def test_mixed_batch_speedup(benchmark, record_figure, record_results):
    """The vectorized mixed path is >=3.5x scalar dispatch (numpy kernel)."""
    have_numpy = columnar.USING_NUMPY
    rates = {"stdlib": run_once(benchmark, _mixed_rate, "python")
             if not have_numpy else _mixed_rate("python")}
    if have_numpy:
        rates["numpy"] = run_once(benchmark, _mixed_rate, "numpy")
    scalar_rate = _mixed_rate("python", batched=False)
    headline = rates.get("numpy", rates["stdlib"])
    ratio = headline / scalar_rate
    floor = 3.5 if have_numpy else 2.0
    lines = [
        f"Mixed-batch microbenchmark — {ACCESSES} warm accesses in "
        f"{BATCH_WORDS}-op mixed vectors ({WORKING_SET_WORDS}-word "
        f"working set, 3:1 load:store)",
    ]
    for kernel in sorted(rates):
        lines.append(f"batched, {kernel:6s} kernel: "
                     f"{rates[kernel]:12,.0f} accesses/s")
    lines.append(f"scalar per-op dispatch: {scalar_rate:12,.0f} accesses/s")
    lines.append(f"speedup ({'numpy' if have_numpy else 'stdlib'} kernel): "
                 f"{ratio:.2f}x")
    text = "\n".join(lines)
    record_figure("mixed_batch", text)
    record_results("mixed_batch", {
        "accesses": ACCESSES,
        "batch_words": BATCH_WORDS,
        "working_set_words": WORKING_SET_WORDS,
        "numpy_available": have_numpy,
        "stdlib_accesses_per_s": rates["stdlib"],
        **({"numpy_accesses_per_s": rates["numpy"]} if have_numpy else {}),
        "scalar_accesses_per_s": scalar_rate,
        "speedup": ratio,
    })
    print("\n" + text)
    assert ratio >= floor, (
        f"mixed batch path only {ratio:.2f}x the scalar dispatch "
        f"(floor {floor}x)"
    )


def test_mixed_batch_is_bit_identical_to_scalar():
    """Same mixed stream (atomics included): identical values, latencies
    and statistics under every kernel x batching combination."""
    outcomes = {}
    modes = [("python", True), ("python", False)]
    if columnar.USING_NUMPY:
        modes.append(("numpy", True))
    for kernel, batched in modes:
        if kernel == "numpy":
            columnar.use_numpy_kernel()
        else:
            columnar.use_python_kernel()
        try:
            chip, port, base = _build_port()
            port.batch_enabled = batched
            ops = _mixed_ops(4096, base, atomics=True)
            checksum = 0
            total_latency = 0
            for start in range(0, len(ops), 512):
                values, latencies = port.run_batch(ops[start:start + 512])
                checksum += sum(v for v in values if v is not None)
                total_latency += sum(latencies)
            outcomes[(kernel, batched)] = (checksum, total_latency,
                                           chip.stats_snapshot())
        finally:
            if not columnar.use_numpy_kernel():
                columnar.use_python_kernel()
    reference = outcomes[("python", False)]
    for mode, outcome in outcomes.items():
        assert outcome == reference, f"{mode} diverged from the scalar oracle"
