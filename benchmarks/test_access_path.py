"""Microbenchmark: the combined TLB-hit + L1-hit access fast path.

Every instruction a simulated workload executes pays the per-word
translate → coherence → data path, so its Python overhead bounds the whole
simulator's throughput.  The fast path serves the overwhelmingly common
TLB-hit + L1-hit case without allocating an ``AccessResult``, without enum
dispatch and without per-access f-string counter names; this benchmark
drives a steady-state working set (everything resident in the TLB and L1)
through one CPU core's :class:`~repro.mem.port.CoreMemoryPort` with the
fast path on and off and records the accesses/second ratio to
``benchmarks/results/access_path.txt``.

Timing, data values and statistics are bit-identical between the two
paths (asserted here on the counters, and by
``tests/mem/test_fast_path.py`` on whole-workload runs); only the host
wall-clock differs.
"""

from __future__ import annotations

import time

from conftest import run_once

from repro.config import small_ccsvm_system
from repro.core.chip import CCSVMChip

ACCESSES = 120_000
WORKING_SET_WORDS = 256  # fits one page and a fraction of the 8 KiB L1
REPEATS = 3


def _build_port(fast_path: bool):
    chip = CCSVMChip(small_ccsvm_system())
    chip.create_process("access_path_bench")
    port = chip.cpu_cores[0].memory_port
    port.fast_path = fast_path
    base = chip.malloc(WORKING_SET_WORDS * 8)
    # Warm the TLB and fill the L1 so the measured loop is pure hits —
    # the steady state the fast path exists for.
    for index in range(WORKING_SET_WORDS):
        port.store(base + index * 8, index)
    return chip, port, base


def _accesses_per_second(fast_path: bool, accesses: int = ACCESSES,
                         repeats: int = REPEATS) -> float:
    """Best of ``repeats`` timings (3 loads : 1 store, like real kernels)."""
    best = 0.0
    for _ in range(repeats):
        _chip, port, base = _build_port(fast_path)
        addresses = [base + (index % WORKING_SET_WORDS) * 8
                     for index in range(accesses)]
        load, store = port.load, port.store
        started = time.perf_counter()
        for index, address in enumerate(addresses):
            if index & 3:
                load(address)
            else:
                store(address, index)
        elapsed = time.perf_counter() - started
        best = max(best, accesses / elapsed)
    return best


def test_access_fast_path_speedup(benchmark, record_figure):
    """The fast path is measurably faster at steady-state TLB+L1 hits."""
    fast_rate = run_once(benchmark, _accesses_per_second, True)
    slow_rate = _accesses_per_second(False)
    ratio = fast_rate / slow_rate
    text = (
        f"Access-path microbenchmark — {ACCESSES} warm accesses "
        f"({WORKING_SET_WORDS}-word working set, 3:1 load:store)\n"
        f"fast path (TLB-hit + L1-hit combined): {fast_rate:12,.0f} accesses/s\n"
        f"legacy path (AccessResult per access): {slow_rate:12,.0f} accesses/s\n"
        f"speedup: {ratio:.2f}x"
    )
    record_figure("access_path", text)
    print("\n" + text)
    assert ratio >= 1.2, (
        f"access fast path only {ratio:.2f}x the legacy path"
    )


def test_access_paths_produce_identical_counters():
    """Both paths retire identical latencies and statistics."""
    outcomes = {}
    for fast_path in (True, False):
        chip, port, base = _build_port(fast_path)
        total_latency = 0
        checksum = 0
        for index in range(2048):
            address = base + (index % WORKING_SET_WORDS) * 8
            if index & 3:
                value, latency = port.load(address)
                checksum += value
            else:
                latency = port.store(address, index)
            total_latency += latency
        outcomes[fast_path] = (total_latency, checksum, chip.stats_snapshot())
    assert outcomes[True] == outcomes[False]
