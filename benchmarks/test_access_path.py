"""Microbenchmark: the combined TLB-hit + L1-hit access fast path.

Every instruction a simulated workload executes pays the per-word
translate → coherence → data path, so its Python overhead bounds the whole
simulator's throughput.  The fast path serves the overwhelmingly common
TLB-hit + L1-hit case without allocating an ``AccessResult``, without enum
dispatch and without per-access f-string counter names; this benchmark
drives a steady-state working set (everything resident in the TLB and L1)
through one CPU core's :class:`~repro.mem.port.CoreMemoryPort` with the
fast path on and off and records the accesses/second ratio to
``benchmarks/results/access_path.txt``.

The second half benchmarks the batched/columnar engine on top of the
fast path: the same access stream handed to :meth:`run_batch` in
4096-op batches, with the columnar TLB+cache hit kernel on
(``batch_enabled=True``) and off (the scalar fast-path loop).  Batching
amortises the per-access Python dispatch across whole batches, which is
where the next order of magnitude comes from.

Timing, data values and statistics are bit-identical between all the
paths (asserted here on the counters, and by ``tests/mem/test_fast_path.py``
and ``tests/mem/test_batch.py`` on whole-workload and randomized streams);
only the host wall-clock differs.  Both tests also emit machine-readable
``benchmarks/results/*.json`` documents (rates, ratio, host, git sha).
"""

from __future__ import annotations

import time

from conftest import run_once

from repro.config import small_ccsvm_system
from repro.core.chip import CCSVMChip
from repro.mem.batch import OP_LOAD, OP_STORE
from repro.sim import columnar

ACCESSES = 120_000
WORKING_SET_WORDS = 256  # fits one page and a fraction of the 8 KiB L1
REPEATS = 3
BATCH_WORDS = 4096  # ops per run_batch call in the batched benchmark


def _build_port(fast_path: bool):
    chip = CCSVMChip(small_ccsvm_system())
    chip.create_process("access_path_bench")
    port = chip.cpu_cores[0].memory_port
    port.fast_path = fast_path
    base = chip.malloc(WORKING_SET_WORDS * 8)
    # Warm the TLB and fill the L1 so the measured loop is pure hits —
    # the steady state the fast path exists for.
    for index in range(WORKING_SET_WORDS):
        port.store(base + index * 8, index)
    return chip, port, base


def _accesses_per_second(fast_path: bool, accesses: int = ACCESSES,
                         repeats: int = REPEATS) -> float:
    """Best of ``repeats`` timings (3 loads : 1 store, like real kernels)."""
    best = 0.0
    for _ in range(repeats):
        _chip, port, base = _build_port(fast_path)
        addresses = [base + (index % WORKING_SET_WORDS) * 8
                     for index in range(accesses)]
        load, store = port.load, port.store
        started = time.perf_counter()
        for index, address in enumerate(addresses):
            if index & 3:
                load(address)
            else:
                store(address, index)
        elapsed = time.perf_counter() - started
        best = max(best, accesses / elapsed)
    return best


def _benchmark_ops(accesses: int, base: int):
    """The benchmark access stream as ``(kind, vaddr, a, b)`` batch ops."""
    ops = []
    for index in range(accesses):
        vaddr = base + (index % WORKING_SET_WORDS) * 8
        if index & 3:
            ops.append((OP_LOAD, vaddr, 0, 0))
        else:
            ops.append((OP_STORE, vaddr, index, 0))
    return ops


def _batch_accesses_per_second(batched: bool, accesses: int = ACCESSES,
                               repeats: int = REPEATS) -> float:
    """Best of ``repeats`` timings of 3:1 load/store vector batches.

    Homogeneous ``BATCH_WORDS``-op vectors are what the engine's callers
    emit (``LoadVector``/``StoreVector``, MTTOP warp batches).  With
    ``batched=False`` the port runs the identical call sequence as a loop
    over the scalar fast path, so the ratio is columnar engine vs PR-5's
    per-op dispatch.
    """
    best = 0.0
    for _ in range(repeats):
        _chip, port, base = _build_port(True)
        port.batch_enabled = batched
        addrs = [base + (index % WORKING_SET_WORDS) * 8
                 for index in range(BATCH_WORDS)]
        vals = list(range(BATCH_WORDS))
        load_batch, store_batch = port.load_batch, port.store_batch
        started = time.perf_counter()
        for chunk in range(accesses // BATCH_WORDS):
            if chunk & 3:
                load_batch(addrs)
            else:
                store_batch(addrs, vals)
        elapsed = time.perf_counter() - started
        best = max(best, accesses / elapsed)
    return best


def test_access_fast_path_speedup(benchmark, record_figure, record_results):
    """The fast path is measurably faster at steady-state TLB+L1 hits."""
    fast_rate = run_once(benchmark, _accesses_per_second, True)
    slow_rate = _accesses_per_second(False)
    ratio = fast_rate / slow_rate
    text = (
        f"Access-path microbenchmark — {ACCESSES} warm accesses "
        f"({WORKING_SET_WORDS}-word working set, 3:1 load:store)\n"
        f"fast path (TLB-hit + L1-hit combined): {fast_rate:12,.0f} accesses/s\n"
        f"legacy path (AccessResult per access): {slow_rate:12,.0f} accesses/s\n"
        f"speedup: {ratio:.2f}x"
    )
    record_figure("access_path", text)
    record_results("access_path", {
        "accesses": ACCESSES,
        "working_set_words": WORKING_SET_WORDS,
        "fast_path_accesses_per_s": fast_rate,
        "legacy_path_accesses_per_s": slow_rate,
        "speedup": ratio,
    })
    print("\n" + text)
    assert ratio >= 1.2, (
        f"access fast path only {ratio:.2f}x the legacy path"
    )


def test_batch_engine_speedup(benchmark, record_figure, record_results):
    """The columnar batch engine is >=5x the scalar fast path (target 10x)."""
    batch_rate = run_once(benchmark, _batch_accesses_per_second, True)
    scalar_rate = _batch_accesses_per_second(False)
    ratio = batch_rate / scalar_rate
    kernel = "numpy" if columnar.USING_NUMPY else "python"
    # The pure-Python columnar kernel amortizes less of the per-op
    # dispatch, so the CI leg without numpy gets a lower floor.
    floor = 5.0 if columnar.USING_NUMPY else 2.5
    text = (
        f"Batch-engine microbenchmark — {ACCESSES} warm accesses in "
        f"{BATCH_WORDS}-op vectors ({WORKING_SET_WORDS}-word working set, "
        f"3:1 load:store vectors, columnar kernel: {kernel})\n"
        f"batch engine (columnar TLB+L1 hit lane): "
        f"{batch_rate:12,.0f} accesses/s\n"
        f"scalar fast path (per-op dispatch):      "
        f"{scalar_rate:12,.0f} accesses/s\n"
        f"speedup: {ratio:.2f}x"
    )
    record_figure("batch_engine", text)
    record_results("batch_engine", {
        "accesses": ACCESSES,
        "batch_words": BATCH_WORDS,
        "working_set_words": WORKING_SET_WORDS,
        "columnar_kernel": kernel,
        "batch_accesses_per_s": batch_rate,
        "scalar_accesses_per_s": scalar_rate,
        "speedup": ratio,
    })
    print("\n" + text)
    assert ratio >= floor, (
        f"batch engine only {ratio:.2f}x the scalar fast path "
        f"({kernel} kernel, floor {floor}x)"
    )


def test_batch_and_scalar_modes_produce_identical_results():
    """The benchmark stream retires bit-identical results in both modes."""
    outcomes = {}
    for batched in (True, False):
        chip, port, base = _build_port(True)
        port.batch_enabled = batched
        ops = _benchmark_ops(4096, base)
        checksum = 0
        total_latency = 0
        for start in range(0, len(ops), 512):
            values, latencies = port.run_batch(ops[start:start + 512])
            checksum += sum(v for v in values if v is not None)
            total_latency += sum(latencies)
        outcomes[batched] = (checksum, total_latency, chip.stats_snapshot())
    assert outcomes[True] == outcomes[False]


def test_access_paths_produce_identical_counters():
    """Both paths retire identical latencies and statistics."""
    outcomes = {}
    for fast_path in (True, False):
        chip, port, base = _build_port(fast_path)
        total_latency = 0
        checksum = 0
        for index in range(2048):
            address = base + (index % WORKING_SET_WORDS) * 8
            if index & 3:
                value, latency = port.load(address)
                checksum += value
            else:
                latency = port.store(address, index)
            total_latency += latency
        outcomes[fast_path] = (total_latency, checksum, chip.stats_snapshot())
    assert outcomes[True] == outcomes[False]
