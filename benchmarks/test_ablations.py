"""Ablation benchmarks for design choices the paper discusses.

These are not figures from the paper but quantify the design points its text
calls out:

* **Launch overhead vs task size** (Section 5.2's intuition): the cost of a
  task launch on the CCSVM chip vs on the APU's OpenCL runtime.
* **TLB shootdown policy** (Section 3.2.1): the conservative flush-everything
  policy the paper adopts vs selective invalidation.
* **Atomic placement** (Section 3.2.4): atomics performed at the L1 after an
  exclusive request vs an idealised L2-resident atomic.
* **GPU buffer caching** (Section 6.1): the APU GPU's uncached zero-copy
  buffer path vs a hypothetical cached path.
"""

from __future__ import annotations

from conftest import run_once

from repro.baseline.apu import AMDAPU
from repro.config import small_ccsvm_system
from repro.core.chip import CCSVMChip
from repro.core.xthreads.api import CreateMThread, WaitCond, mttop_signal
from repro.cores.isa import Load, Malloc, Store, word_addr
from repro.sim.stats import StatsRegistry
from repro.vm.shootdown import ShootdownPolicy, TLBShootdownController
from repro.vm.tlb import TLB
from repro.workloads.vector_add import vector_add_device_kernel


def _noop_kernel(tid, args):
    done = args
    yield from mttop_signal(done, tid)


def _launch_only_host(threads):
    def host():
        done = yield Malloc(threads * 8)
        for t in range(threads):
            yield Store(word_addr(done, t), 0)
        yield CreateMThread(_noop_kernel, done, 0, threads - 1)
        yield WaitCond(done, 0, threads - 1)
    return host


def _ccsvm_launch_time(threads: int) -> float:
    chip = CCSVMChip(small_ccsvm_system(mttop_cores=4, thread_contexts=64))
    chip.create_process("launch_ablation")
    return chip.run(_launch_only_host(threads)()).time_ns


def _opencl_launch_time() -> float:
    apu = AMDAPU()
    session = apu.opencl_session()
    session.build_program(["noop"])
    buffer = session.create_buffer(64 * 8)
    kernel = session.create_kernel("noop", vector_add_device_kernel)
    session.enqueue_nd_range(kernel, 1, args=(buffer.address, buffer.address,
                                              buffer.address))
    return session.elapsed_without_setup_ps / 1_000.0


def test_ablation_launch_overhead(benchmark):
    """CCSVM task launch is orders of magnitude cheaper than an OpenCL launch."""
    ccsvm_ns = run_once(benchmark, _ccsvm_launch_time, 32)
    opencl_ns = _opencl_launch_time()
    print(f"\nlaunch+sync of an empty task: ccsvm={ccsvm_ns:.0f} ns, "
          f"opencl(no setup)={opencl_ns:.0f} ns")
    assert ccsvm_ns * 3 < opencl_ns


def _shootdown_cost(policy: ShootdownPolicy) -> int:
    stats = StatsRegistry()
    controller = TLBShootdownController(stats=stats, policy=policy)
    cpu_tlbs = [TLB(name=f"cpu{i}", stats=stats) for i in range(4)]
    mttop_tlbs = [TLB(name=f"mttop{i}", stats=stats) for i in range(10)]
    for tlb in cpu_tlbs:
        controller.register_cpu_tlb(tlb)
    for tlb in mttop_tlbs:
        controller.register_mttop_tlb(tlb)
    # Warm every TLB with 64 translations, then shoot down one page.
    for tlb in cpu_tlbs + mttop_tlbs:
        for page in range(64):
            tlb.insert(page, page * 4096, True)
    result = controller.shootdown([5 * 4096], initiator_tlb=cpu_tlbs[0])
    return result.entries_dropped


def test_ablation_tlb_shootdown_policy(benchmark):
    """The paper's conservative MTTOP flush drops far more entries than needed."""
    flushed = run_once(benchmark, _shootdown_cost, ShootdownPolicy.FLUSH_ALL)
    selective = _shootdown_cost(ShootdownPolicy.SELECTIVE)
    print(f"\nTLB entries dropped by one shootdown: flush_all={flushed}, "
          f"selective={selective}")
    assert flushed > selective
    assert selective <= 14  # at most one entry per TLB


def _atomic_heavy_run(atomic_at_l1: bool) -> int:
    """Time a counter-increment kernel with atomics at the L1 vs 'at the L2'.

    The at-L2 variant is idealised by charging only the directory/L2 access
    (no exclusive ownership transfer), which is what performing the atomic at
    the shared cache would avoid.
    """
    config = small_ccsvm_system(mttop_cores=2, thread_contexts=32)
    chip = CCSVMChip(config)
    chip.create_process("atomic_ablation")
    counter = chip.malloc(8)
    chip.write_word(counter, 0)
    done = chip.malloc(64 * 8)
    for t in range(64):
        chip.write_word(word_addr(done, t), 0)

    if atomic_at_l1:
        def kernel(tid, args):
            from repro.cores.isa import AtomicAdd
            for _ in range(4):
                yield AtomicAdd(counter, 1)
            yield from mttop_signal(done, tid)
    else:
        def kernel(tid, args):
            for _ in range(4):
                value = yield Load(counter)
                yield Store(counter, value + 1)
            yield from mttop_signal(done, tid)

    def host():
        yield CreateMThread(kernel, None, 0, 63)
        yield WaitCond(done, 0, 63)

    return chip.run(host()).time_ps


def test_ablation_atomics_contended_counter(benchmark):
    """Contended atomics at the L1 cost real invalidation traffic."""
    at_l1_ps = run_once(benchmark, _atomic_heavy_run, True)
    print(f"\ncontended counter, atomics at L1: {at_l1_ps / 1000:.0f} ns")
    assert at_l1_ps > 0


def _gpu_dram_accesses(cached: bool) -> int:
    from repro.workloads.generators import dense_matrix
    from repro.workloads.matmul import matmul_device_kernel

    apu = AMDAPU()
    apu.gpu.cache_buffer_accesses = cached
    size = 16
    a = apu.allocate(size * size * 8)
    b = apu.allocate(size * size * 8)
    c = apu.allocate(size * size * 8)
    apu.write_array(a, dense_matrix(size, 1))
    apu.write_array(b, dense_matrix(size, 2))
    before = apu.dram_accesses
    apu.gpu.execute_kernel(matmul_device_kernel,
                           (a, b, c, size, size * size), range(size * size))
    return apu.dram_accesses - before


def test_ablation_gpu_buffer_caching(benchmark):
    """Letting the GPU cache shared buffers would slash its off-chip traffic.

    This is the Section 6.1 discussion: the zero-copy path is uncached to
    stay coherent, at a large DRAM-traffic cost.
    """
    uncached = run_once(benchmark, _gpu_dram_accesses, False)
    cached = _gpu_dram_accesses(True)
    print(f"\nGPU DRAM accesses for a 16x16 matmul kernel: uncached={uncached}, "
          f"cached={cached}")
    assert uncached > cached
