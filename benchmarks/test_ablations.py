"""Ablation benchmarks for design choices the paper discusses.

The ablation grid itself now lives in :mod:`repro.experiments.ablations` as
a registered sweep spec (``python -m repro run ablations``); these benchmarks
execute slices of the grid through the unified
:class:`~repro.harness.runner.SweepRunner` and assert the paper's qualitative
claims about each design point.
"""

from __future__ import annotations

from conftest import run_once

from repro.experiments import ablations
from repro.harness import SweepRunner


def _run_ablation(name: str):
    rows = ablations.run(ablations=(name,), runner=SweepRunner())
    return ablations.values(rows, name)


def test_ablation_launch_overhead(benchmark, record_figure):
    """CCSVM task launch is orders of magnitude cheaper than an OpenCL launch."""
    by_variant = run_once(benchmark, _run_ablation, "launch_overhead")
    ccsvm_ns = by_variant["ccsvm_32_threads"]
    opencl_ns = by_variant["opencl_nosetup"]
    print(f"\nlaunch+sync of an empty task: ccsvm={ccsvm_ns:.0f} ns, "
          f"opencl(no setup)={opencl_ns:.0f} ns")
    assert ccsvm_ns * 3 < opencl_ns


def test_ablation_tlb_shootdown_policy(benchmark):
    """The paper's conservative MTTOP flush drops far more entries than needed."""
    by_variant = run_once(benchmark, _run_ablation, "tlb_shootdown")
    flushed = by_variant["flush_all"]
    selective = by_variant["selective"]
    print(f"\nTLB entries dropped by one shootdown: flush_all={flushed}, "
          f"selective={selective}")
    assert flushed > selective
    assert selective <= 14  # at most one entry per TLB


def test_ablation_atomics_contended_counter(benchmark):
    """Contended atomics at the L1 cost real invalidation traffic."""
    by_variant = run_once(benchmark, _run_ablation, "atomics")
    at_l1_ps = by_variant["l1_atomic"]
    print(f"\ncontended counter, atomics at L1: {at_l1_ps / 1000:.0f} ns")
    assert at_l1_ps > 0


def test_ablation_gpu_buffer_caching(benchmark, record_figure):
    """Letting the GPU cache shared buffers would slash its off-chip traffic.

    This is the Section 6.1 discussion: the zero-copy path is uncached to
    stay coherent, at a large DRAM-traffic cost.
    """
    by_variant = run_once(benchmark, _run_ablation, "gpu_buffer_caching")
    uncached = by_variant["uncached"]
    cached = by_variant["cached"]
    print(f"\nGPU DRAM accesses for a 16x16 matmul kernel: uncached={uncached}, "
          f"cached={cached}")
    assert uncached > cached


def test_ablation_grid_renders(record_figure):
    """The full grid runs through the harness and records its table."""
    rows = ablations.run(runner=SweepRunner())
    text = ablations.render(rows)
    record_figure("ablations", text)
    assert {row["ablation"] for row in rows} == set(ablations.ABLATIONS)