"""Regenerates Figure 7: Barnes-Hut vs one CPU core and vs pthreads."""

from __future__ import annotations

from conftest import run_once

from repro.experiments import figure7

BODY_COUNTS = (16, 32, 64)


def test_figure7_barnes_hut(benchmark, record_figure):
    rows = run_once(benchmark, figure7.run, body_counts=BODY_COUNTS, timesteps=2)
    text = figure7.render(rows)
    record_figure("figure7_barnes_hut", text)
    print("\n" + text)

    # CCSVM's speedup over the single CPU core grows with the problem size
    # (launch and phase-toggle overheads amortise over more force work).
    speedups = [row["speedup_vs_cpu"] for row in rows]
    assert speedups == sorted(speedups)
    # At the largest size in the sweep CCSVM beats the 4-thread pthreads run.
    assert rows[-1]["speedup_vs_pthreads"] > 1.0
