"""Regenerates Figure 5: dense matrix multiply runtimes relative to the CPU."""

from __future__ import annotations

from conftest import run_once

from repro.experiments import figure5

SIZES = (8, 16, 24, 32)


def test_figure5_dense_matmul(benchmark, record_figure):
    rows = run_once(benchmark, figure5.run, sizes=SIZES)
    text = figure5.render(rows)
    record_figure("figure5_matmul", text)
    print("\n" + text)

    # Shape checks corresponding to the paper's observations.
    by_size = {row["size"]: row for row in rows}
    # The APU (full OpenCL runtime) is orders of magnitude slower than the
    # CPU core for small matrices.
    assert by_size[SIZES[0]]["rel_apu_opencl"] > 100
    # CCSVM/xthreads beats the APU at every size in the sweep ...
    for row in rows:
        assert row["ccsvm_xthreads_ms"] < row["apu_opencl_ms"]
        assert row["ccsvm_xthreads_ms"] < row["apu_opencl_nosetup_ms"]
    # ... and the APU's relative runtime falls as the matrices grow (its raw
    # GPU throughput starts to amortise the launch overhead).
    relative = [row["rel_apu_opencl"] for row in rows]
    assert relative == sorted(relative, reverse=True)
    # CCSVM's advantage over the CPU core improves with size as well.
    ccsvm_relative = [row["rel_ccsvm"] for row in rows]
    assert ccsvm_relative == sorted(ccsvm_relative, reverse=True)
