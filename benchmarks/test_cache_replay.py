"""Macrobenchmark: cache-only replay vs full trace-replay simulation.

The DSE engine's cost per design point is one full simulation of the
workload — cores, sim engine, scheduler and all.  The cache-only replayer
(:mod:`repro.mem.replay`) walks the captured reference stream straight
through an assembled hierarchy and nothing else, producing the identical
hierarchy counters (asserted here and gated by
``tests/mem/test_replay_equivalence.py``) at a fraction of the cost.

The stream is sized like a DSE sweep point (20k ops over a 32 KiB
footprint) and the replayer is measured warm — parsed trace and compiled
replay program cached, as in a sweep's steady state.  The floor is 2x;
measured is typically 2.5-4x.  The honest accounting for why it is not
more: the memory-system walk itself is shared between both evaluators
and dominates at ~1.5-2.5us/op, the engine/scheduler overhead that
replay removes is only ~2-4x of that, and hierarchy construction
(~6 ms/point, 80% per-set replacement-policy objects) is paid by both.
Raising the ratio further means attacking the walk or the build, not the
replay loop.
"""

from __future__ import annotations

import json
import time

from conftest import run_once

from repro.mem.replay import replay_trace
from repro.systems import system_config
from repro.workloads.trace_replay import capture_trace, run_replay

OPS = 20_000
WORDS = 4096
LOCALITY = 0.95
ATOMICS = 0.0  # atomics serialize both evaluators identically; dial out
MIN_SECONDS = 1.0  # measure each evaluator for at least this long
_NON_HIERARCHY_PREFIXES = ("cpu", "mttop", "engine.", "xthreads.", "mifd.",
                           "sched")


def _points_per_second(evaluate, min_seconds: float = MIN_SECONDS) -> float:
    """Evaluations/second of one design-point evaluator, >=1s of samples."""
    evaluate()  # warm imports, allocator paths and caches outside the timing
    points = 0
    elapsed = 0.0
    started = time.perf_counter()
    while elapsed < min_seconds:
        evaluate()
        points += 1
        elapsed = time.perf_counter() - started
    return points / elapsed


def _hierarchy(counters):
    return {name: value for name, value in counters.items()
            if not name.startswith(_NON_HIERARCHY_PREFIXES)}


def test_cache_replay_points_per_second(benchmark, tmp_path, record_figure,
                                        record_results):
    """Cache-only replay clears 2x full-simulation points/s (typ. 2.5-4x)."""
    trace_path = str(tmp_path / "mem_stream.trace.json")
    capture_trace("mem_stream", seed=7, path=trace_path, ops=OPS,
                  words=WORDS, locality=LOCALITY, atomics=ATOMICS)
    config = system_config("ccsvm")

    full = run_replay(trace_path, config=config)
    fast = replay_trace(trace_path, config)
    assert json.dumps(_hierarchy(full.counters), sort_keys=True) == \
        json.dumps(_hierarchy(fast.stats_snapshot()), sort_keys=True), \
        "cache-only replay diverged from full simulation"

    fast_rate = run_once(benchmark, _points_per_second,
                         lambda: replay_trace(trace_path, config))
    full_rate = _points_per_second(lambda: run_replay(trace_path,
                                                      config=config))
    ratio = fast_rate / full_rate
    text = (
        f"Cache-replay macrobenchmark — mem_stream trace "
        f"({OPS} ops over {WORDS} words, locality {LOCALITY}, no atomics), "
        f"ccsvm preset\n"
        f"cache-only replay (repro.mem.replay): {fast_rate:10.2f} points/s\n"
        f"full simulation (trace_replay):       {full_rate:10.2f} points/s\n"
        f"speedup: {ratio:.1f}x"
    )
    record_figure("cache_replay", text)
    record_results("cache_replay", {
        "trace_ops": OPS,
        "trace_words": WORDS,
        "locality": LOCALITY,
        "atomics": ATOMICS,
        "system": "ccsvm",
        "cache_replay_points_per_s": fast_rate,
        "full_simulation_points_per_s": full_rate,
        "speedup": ratio,
    })
    print("\n" + text)
    assert ratio >= 2.0, (
        f"cache-only replay only {ratio:.1f}x full simulation (floor 2x)"
    )
