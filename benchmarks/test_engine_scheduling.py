"""Microbenchmark: heap-scheduled ready queue vs the historical linear scan.

Runs the same 16-agent configuration (the CCSVM chip's agent count: 4 CPU +
10 MTTOP cores, rounded up) under both engine schedulers and compares
steps/second.  The heap scheduler replaces an O(n) scan per engine step with
an O(log n) pop/push, which shows up directly in the simulator's hot loop.
The measured ratio is recorded to ``benchmarks/results/`` alongside the
figure tables.
"""

from __future__ import annotations

import time

from conftest import run_once

from repro.sim.engine import Agent, Engine, StepOutcome

AGENTS = 16
STEPS_PER_AGENT = 20_000


class BusyAgent(Agent):
    """Advances by a fixed per-agent stride until its step budget runs out."""

    def __init__(self, name: str, steps: int, stride_ps: int) -> None:
        super().__init__(name)
        self.remaining = steps
        self.stride_ps = stride_ps

    def step(self) -> StepOutcome:
        if self.remaining == 0:
            return self.finish()
        self.remaining -= 1
        self.advance(self.stride_ps)
        return StepOutcome.RAN


def _steps_per_second(scheduler: str, agents: int = AGENTS,
                      steps: int = STEPS_PER_AGENT, repeats: int = 3) -> float:
    """Best of ``repeats`` timings, to keep noisy CI runners from flaking."""
    best = 0.0
    for _ in range(repeats):
        engine = Engine(scheduler=scheduler)
        for index in range(agents):
            # Coprime-ish strides keep the agents interleaving rather than
            # stepping in long same-agent bursts.
            engine.add_agent(BusyAgent(f"agent{index}", steps, 97 + 13 * index))
        started = time.perf_counter()
        engine.run()
        elapsed = time.perf_counter() - started
        best = max(best, engine.steps_executed / elapsed)
    return best


def test_engine_heap_scheduler_speedup(benchmark, record_figure, record_results):
    """The heap ready queue is >=2x faster than the linear scan at 16 agents."""
    heap_rate = run_once(benchmark, _steps_per_second, "heap")
    linear_rate = _steps_per_second("linear")
    ratio = heap_rate / linear_rate
    text = (
        f"Engine scheduling microbenchmark — {AGENTS} agents x "
        f"{STEPS_PER_AGENT} steps\n"
        f"heap   scheduler: {heap_rate:12,.0f} steps/s\n"
        f"linear scheduler: {linear_rate:12,.0f} steps/s\n"
        f"speedup: {ratio:.2f}x"
    )
    record_figure("engine_scheduling", text)
    record_results("engine_scheduling", {
        "agents": AGENTS,
        "steps_per_agent": STEPS_PER_AGENT,
        "heap_steps_per_s": heap_rate,
        "linear_steps_per_s": linear_rate,
        "speedup": ratio,
    })
    print("\n" + text)
    assert ratio >= 2.0, (
        f"heap scheduler only {ratio:.2f}x the linear scan at {AGENTS} agents"
    )


def test_engine_schedulers_agree_on_final_state():
    """Both schedulers retire the identical step count and final time."""
    outcomes = {}
    for scheduler in ("heap", "linear"):
        engine = Engine(scheduler=scheduler)
        for index in range(AGENTS):
            engine.add_agent(BusyAgent(f"agent{index}", 500, 97 + 13 * index))
        final = engine.run()
        outcomes[scheduler] = (final, engine.steps_executed)
    assert outcomes["heap"] == outcomes["linear"]