"""Regenerates Figure 6: all-pairs shortest path runtimes relative to the CPU."""

from __future__ import annotations

from conftest import run_once

from repro.experiments import figure6

SIZES = (8, 12, 16, 24)


def test_figure6_all_pairs_shortest_path(benchmark, record_figure):
    rows = run_once(benchmark, figure6.run, sizes=SIZES)
    text = figure6.render(rows)
    record_figure("figure6_apsp", text)
    print("\n" + text)

    # The APU never beats the CPU core on this benchmark (per-iteration
    # kernel launches and slow synchronisation), even ignoring setup costs.
    for row in rows:
        assert row["rel_apu_opencl"] > 1.0
        assert row["rel_apu_nosetup"] > 1.0
    # CCSVM outperforms the APU by a large factor at every size (the paper
    # reports roughly two orders of magnitude after removing setup).
    for row in rows:
        assert row["apu_opencl_nosetup_ms"] / row["ccsvm_xthreads_ms"] > 10
    # CCSVM's runtime relative to the CPU improves monotonically with size.
    ccsvm_relative = [row["rel_ccsvm"] for row in rows]
    assert ccsvm_relative == sorted(ccsvm_relative, reverse=True)
