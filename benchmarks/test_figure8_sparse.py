"""Regenerates Figure 8: sparse matrix multiply speedups (size and density sweeps)."""

from __future__ import annotations

from conftest import run_once

from repro.experiments import figure8


def test_figure8_sparse_matmul(benchmark, record_figure):
    panels = run_once(benchmark, figure8.run)
    text = figure8.render(panels)
    record_figure("figure8_sparse_matmul", text)
    print("\n" + text)

    by_size = panels["by_size"]
    by_density = panels["by_density"]

    # Left panel: at fixed density the speedup over the CPU stays roughly
    # flat across sizes at simulator-tractable scales (the paper's rising
    # trend needs hardware-scale matrices; see EXPERIMENTS.md).  Guard that
    # it neither collapses nor explodes.
    speedups = [row["speedup_vs_cpu"] for row in by_size]
    assert max(speedups) / min(speedups) < 2.0
    # The amount of dynamic allocation grows with the matrix size.
    size_mallocs = [row["mttop_mallocs"] for row in by_size]
    assert size_mallocs == sorted(size_mallocs)

    # Right panel: at fixed size the speedup degrades as density (and with it
    # the number of CPU-serviced mttop_malloc calls) increases.
    density_speedups = [row["speedup_vs_cpu"] for row in by_density]
    assert density_speedups == sorted(density_speedups, reverse=True)
    mallocs = [row["mttop_mallocs"] for row in by_density]
    assert mallocs == sorted(mallocs)
