"""Shared fixtures for the benchmark harness.

Each benchmark regenerates one of the paper's tables or figures.  They run
the full simulators, so every sweep is executed exactly once per benchmark
(``rounds=1``); pytest-benchmark still records the wall-clock cost, and the
rendered table for each figure is attached to the benchmark's ``extra_info``
and written to ``benchmarks/results/`` so the numbers can be inspected after
the run.
"""

from __future__ import annotations

import os

import pytest

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


@pytest.fixture
def record_figure():
    """Return a helper that saves a rendered figure/table to disk."""
    def _record(name: str, text: str) -> str:
        os.makedirs(RESULTS_DIR, exist_ok=True)
        path = os.path.join(RESULTS_DIR, f"{name}.txt")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
        return path

    return _record


def run_once(benchmark, function, *args, **kwargs):
    """Run ``function`` exactly once under pytest-benchmark and return its value."""
    return benchmark.pedantic(function, args=args, kwargs=kwargs,
                              rounds=1, iterations=1)
