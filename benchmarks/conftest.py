"""Shared fixtures for the benchmark harness.

Each benchmark regenerates one of the paper's tables or figures.  They run
the full simulators, so every sweep is executed exactly once per benchmark
(``rounds=1``); pytest-benchmark still records the wall-clock cost, and the
rendered table for each figure is attached to the benchmark's ``extra_info``
and written to ``benchmarks/results/`` so the numbers can be inspected after
the run.
"""

from __future__ import annotations

import json
import os
import platform
import subprocess

import pytest

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def _git_sha() -> str:
    try:
        return subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=os.path.dirname(__file__), capture_output=True, text=True,
            check=True,
        ).stdout.strip()
    except Exception:
        return "unknown"


@pytest.fixture
def record_figure():
    """Return a helper that saves a rendered figure/table to disk."""
    def _record(name: str, text: str) -> str:
        os.makedirs(RESULTS_DIR, exist_ok=True)
        path = os.path.join(RESULTS_DIR, f"{name}.txt")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
        return path

    return _record


TRAJECTORY_PATH = os.path.join(RESULTS_DIR, "trajectory.jsonl")


def _append_trajectory(document: dict) -> None:
    """Append one provenance-stamped record to ``trajectory.jsonl``.

    The trajectory is the long-lived, append-only history of benchmark
    numbers: one JSON line per recorded result, stamped like the result
    store's provenance (release, git sha, host, timestamp), so rates can
    be plotted across commits from the accumulated CI artifacts.
    """
    import repro
    from repro.store import current_git_sha, utc_now_iso

    record = dict(document)
    record["repro_version"] = repro.__version__
    record["git_sha"] = current_git_sha()
    record["created_at"] = utc_now_iso()
    with open(TRAJECTORY_PATH, "a", encoding="utf-8") as handle:
        handle.write(json.dumps(record, sort_keys=True) + "\n")


@pytest.fixture
def record_results():
    """Return a helper that saves machine-readable results to disk.

    Writes ``benchmarks/results/<name>.json`` next to the rendered text
    tables and appends a provenance-stamped line to
    ``benchmarks/results/trajectory.jsonl``.  Every document carries the
    host fingerprint and the git revision so numbers archived from
    different runners (CI artifacts, laptops) stay attributable and
    comparable.
    """
    def _record(name: str, payload: dict) -> str:
        os.makedirs(RESULTS_DIR, exist_ok=True)
        document = dict(payload)
        document.setdefault("benchmark", name)
        document["host"] = {
            "platform": platform.platform(),
            "python": platform.python_version(),
            "implementation": platform.python_implementation(),
            "machine": platform.machine(),
        }
        document["git_sha"] = _git_sha()
        path = os.path.join(RESULTS_DIR, f"{name}.json")
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(document, handle, indent=2, sort_keys=True)
            handle.write("\n")
        _append_trajectory(document)
        return path

    return _record


def run_once(benchmark, function, *args, **kwargs):
    """Run ``function`` exactly once under pytest-benchmark and return its value."""
    return benchmark.pedantic(function, args=args, kwargs=kwargs,
                              rounds=1, iterations=1)
