"""Regenerates Figure 9: off-chip DRAM accesses for dense matrix multiply."""

from __future__ import annotations

from conftest import run_once

from repro.experiments import figure9

SIZES = (8, 16, 24, 32)


def test_figure9_dram_accesses(benchmark, record_figure):
    rows = run_once(benchmark, figure9.run, sizes=SIZES)
    text = figure9.render(rows)
    record_figure("figure9_dram", text)
    print("\n" + text)

    for row in rows:
        # The APU requires far more off-chip accesses than the CCSVM chip at
        # every size (the paper reports one to two orders of magnitude).
        assert row["apu_over_ccsvm"] > 10
        # The CCSVM chip also stays at or below the lone CPU core + its own
        # compulsory traffic (its communication is on-chip).
        assert row["ccsvm_xthreads_dram_accesses"] < row["apu_opencl_dram_accesses"]
    # CCSVM's DRAM accesses grow with the footprint (compulsory misses only).
    ccsvm = [row["ccsvm_xthreads_dram_accesses"] for row in rows]
    assert ccsvm == sorted(ccsvm)
