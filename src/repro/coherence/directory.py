"""Directory state embedded in the shared L2.

Each L2 bank keeps one directory entry per line it tracks.  An entry records
which private cache (if any) owns the line (holds it in M, O or E) and which
caches share it (hold it in S).  The single-writer/multiple-reader invariant
is enforced at this level: an *exclusive* owner excludes all sharers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, Optional, Set

from repro.errors import CoherenceError


@dataclass
class DirectoryEntry:
    """Tracking state for one cache line.

    ``owner`` is the node name of the private cache holding the line in an
    ownership state (M, O or E), or ``None``.  ``owner_exclusive`` is True
    when the owner's state is M or E (so no sharers may exist).  ``sharers``
    are caches holding the line in S.
    """

    line_address: int
    owner: Optional[str] = None
    owner_exclusive: bool = False
    sharers: Set[str] = field(default_factory=set)

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    @property
    def has_copies(self) -> bool:
        """True when any private cache holds the line."""
        return self.owner is not None or bool(self.sharers)

    def holders(self) -> Set[str]:
        """Every private cache currently holding the line."""
        result = set(self.sharers)
        if self.owner is not None:
            result.add(self.owner)
        return result

    def is_holder(self, node: str) -> bool:
        """True when ``node`` holds the line in any valid state."""
        return node == self.owner or node in self.sharers

    # ------------------------------------------------------------------ #
    # Mutation (validated)
    # ------------------------------------------------------------------ #
    def set_exclusive_owner(self, node: str) -> None:
        """Record that ``node`` now holds the line in M or E, alone."""
        self.owner = node
        self.owner_exclusive = True
        self.sharers.clear()

    def set_shared_owner(self, node: str) -> None:
        """Record that ``node`` holds the line in O (sharers may exist)."""
        self.owner = node
        self.owner_exclusive = False
        self.sharers.discard(node)

    def add_sharer(self, node: str) -> None:
        """Record that ``node`` obtained a shared copy."""
        if node == self.owner:
            raise CoherenceError(
                f"line {self.line_address:#x}: owner {node} cannot also be a sharer"
            )
        if self.owner is not None and self.owner_exclusive:
            raise CoherenceError(
                f"line {self.line_address:#x}: cannot add sharer {node} while "
                f"{self.owner} holds the line exclusively"
            )
        self.sharers.add(node)

    def remove(self, node: str) -> None:
        """Forget ``node``'s copy (invalidation or eviction)."""
        if node == self.owner:
            self.owner = None
            self.owner_exclusive = False
        else:
            self.sharers.discard(node)

    def clear(self) -> None:
        """Forget every copy (used when the L2 evicts the line)."""
        self.owner = None
        self.owner_exclusive = False
        self.sharers.clear()

    def check_invariant(self) -> None:
        """Raise :class:`CoherenceError` if SWMR is violated at this entry."""
        if self.owner is not None and self.owner in self.sharers:
            raise CoherenceError(
                f"line {self.line_address:#x}: owner {self.owner} listed as sharer"
            )
        if self.owner is not None and self.owner_exclusive and self.sharers:
            raise CoherenceError(
                f"line {self.line_address:#x}: exclusive owner {self.owner} "
                f"coexists with sharers {sorted(self.sharers)}"
            )


class Directory:
    """The per-bank collection of directory entries."""

    def __init__(self, name: str = "directory") -> None:
        self.name = name
        self._entries: Dict[int, DirectoryEntry] = {}

    def entry(self, line_address: int) -> DirectoryEntry:
        """Return (creating if needed) the entry for ``line_address``."""
        entry = self._entries.get(line_address)
        if entry is None:
            entry = DirectoryEntry(line_address=line_address)
            self._entries[line_address] = entry
        return entry

    def peek(self, line_address: int) -> Optional[DirectoryEntry]:
        """Return the entry for ``line_address`` if it exists."""
        return self._entries.get(line_address)

    def drop(self, line_address: int) -> None:
        """Remove the entry for ``line_address`` (after an L2 eviction)."""
        self._entries.pop(line_address, None)

    def entries(self) -> Iterator[DirectoryEntry]:
        """Iterate over every tracked entry."""
        return iter(self._entries.values())

    def __len__(self) -> int:
        return len(self._entries)

    def check_invariants(self) -> None:
        """Check SWMR at every entry."""
        for entry in self._entries.values():
            entry.check_invariant()
