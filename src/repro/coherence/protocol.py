"""The MOESI directory protocol over private L1s and a banked, inclusive L2.

:class:`CoherentMemorySystem` is the heart of the CCSVM chip's memory system.
Every load, store or atomic issued by a CPU or MTTOP core is resolved here:

* L1 hit with sufficient permission → local latency only;
* store hit without write permission → upgrade transaction (invalidate the
  other copies via the home directory);
* miss → GetS/GetM transaction at the home L2/directory bank, which may
  forward to the current owner, invalidate sharers, hit in the L2, or fill
  from off-chip DRAM (filling the inclusive L2 on the way).

Because the engine executes one memory operation at a time, each transaction
runs to completion atomically; the protocol therefore has only stable states,
but it performs and counts every message, invalidation, recall and writeback
a real implementation would, and it accumulates the latency of the messages
on the transaction's critical path.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional

from repro.cache.block import CacheBlock
from repro.cache.cache import SetAssociativeCache
from repro.coherence.directory import Directory, DirectoryEntry
from repro.coherence.messages import MessageType
from repro.coherence.states import MOESIState
from repro.errors import CoherenceError
from repro.interconnect.network import NetworkModel
from repro.memory.address import CACHE_LINE_SIZE
from repro.memory.dram import DRAMModel
from repro.sim.stats import StatsRegistry

if TYPE_CHECKING:  # pragma: no cover - annotation-only import (avoids cycle)
    from repro.mem.levels import CacheLevel as CacheLevelLike


class AccessType(enum.Enum):
    """The three memory operations cores issue to the coherent hierarchy."""

    LOAD = "load"
    STORE = "store"
    ATOMIC = "atomic"

    @property
    def needs_write_permission(self) -> bool:
        """True when the access requires an exclusive (writable) copy."""
        return self is not AccessType.LOAD


@dataclass(frozen=True)
class AccessResult:
    """Outcome of one coherent memory access."""

    latency_ps: int
    level: str               #: "l1", "l2", "remote_l1", "dram" or "upgrade"
    line_address: int
    access_type: AccessType

    @property
    def l1_hit(self) -> bool:
        """True when the access was satisfied entirely in the local L1."""
        return self.level == "l1"


@dataclass
class L2Bank:
    """One bank of the shared inclusive L2 with its slice of the directory."""

    name: str
    cache: SetAssociativeCache
    directory: Directory
    hit_latency_ps: int


@dataclass
class _L1Info:
    """Registration record for one core's private L1 data cache."""

    node: str
    cache: SetAssociativeCache
    hit_latency_ps: int


class CoherentMemorySystem:
    """MOESI directory coherence over registered L1s, L2 banks and DRAM.

    ``l3`` optionally stacks a shared memory-side cache (any object with a
    ``cache`` tag store and a ``hit_latency_ps``, i.e. a
    :class:`repro.mem.levels.CacheLevel`) between the L2 banks and DRAM:
    L2 fills check it before going off-chip and dirty L2 victims land in
    it instead of DRAM.  It sits at the memory controller, so no extra
    NoC node is involved and, when absent, the transaction paths are
    exactly the historical ones.
    """

    def __init__(self, network: NetworkModel, dram: DRAMModel,
                 banks: List[L2Bank], memory_node: str,
                 stats: Optional[StatsRegistry] = None,
                 line_size: int = CACHE_LINE_SIZE,
                 l3: Optional["CacheLevelLike"] = None) -> None:
        if not banks:
            raise CoherenceError("a coherent memory system needs at least one L2 bank")
        self.network = network
        self.dram = dram
        self.banks = banks
        self.memory_node = memory_node
        self.stats = stats if stats is not None else StatsRegistry()
        self.line_size = line_size
        self.l3 = l3
        self._line_mask = ~(line_size - 1)
        self._l1s: Dict[str, _L1Info] = {}

    # ------------------------------------------------------------------ #
    # Registration and address mapping
    # ------------------------------------------------------------------ #
    def register_l1(self, node: str, cache: SetAssociativeCache,
                    hit_latency_ps: int) -> None:
        """Register ``node``'s private L1 data cache as a coherence peer."""
        if node in self._l1s:
            raise CoherenceError(f"L1 for node {node!r} registered twice")
        self._l1s[node] = _L1Info(node=node, cache=cache, hit_latency_ps=hit_latency_ps)

    @property
    def nodes(self) -> List[str]:
        """Names of every registered private cache."""
        return list(self._l1s)

    def line_address(self, paddr: int) -> int:
        """Align a physical address to its cache line."""
        return paddr & ~(self.line_size - 1)

    def home_bank(self, line_address: int) -> L2Bank:
        """Return the L2/directory bank that is home for ``line_address``."""
        index = (line_address // self.line_size) % len(self.banks)
        return self.banks[index]

    # ------------------------------------------------------------------ #
    # Message helpers (latency + accounting)
    # ------------------------------------------------------------------ #
    def _msg(self, src: str, dst: str, mtype: MessageType) -> int:
        size = 72 if mtype.carries_data else 8
        message = self.network.send(src, dst, size_bytes=size, kind=mtype.counter_name)
        self.stats.add(f"coherence.msg.{mtype.counter_name}")
        return message.latency_ps

    # ------------------------------------------------------------------ #
    # Public access API
    # ------------------------------------------------------------------ #
    def access(self, node: str, paddr: int, access_type: AccessType,
               now_ps: int = 0) -> AccessResult:
        """Perform one coherent access by ``node`` to physical address ``paddr``."""
        info = self._l1s.get(node)
        if info is None:
            raise CoherenceError(f"node {node!r} has no registered L1")
        line = self.line_address(paddr)
        latency = info.hit_latency_ps
        self.stats.add(f"coherence.accesses.{access_type.value}")

        block = info.cache.lookup(line)
        if block is not None:
            state = block.state
            if not isinstance(state, MOESIState):
                raise CoherenceError(f"L1 {node} holds non-MOESI state {state!r}")
            if access_type is AccessType.LOAD and state.can_read:
                self.stats.add("coherence.l1_hits")
                return AccessResult(latency, "l1", line, access_type)
            if access_type.needs_write_permission and state.can_write:
                block.state = state.after_local_store()
                block.dirty = True
                self.stats.add("coherence.l1_hits")
                if access_type is AccessType.ATOMIC:
                    self.stats.add("coherence.atomics")
                return AccessResult(latency, "l1", line, access_type)
            if access_type.needs_write_permission and state in (MOESIState.SHARED,
                                                                MOESIState.OWNED):
                extra = self._upgrade(info, block, line, now_ps)
                if access_type is AccessType.ATOMIC:
                    self.stats.add("coherence.atomics")
                return AccessResult(latency + extra, "upgrade", line, access_type)
            raise CoherenceError(
                f"unexpected L1 state {state} for {access_type.value} at {node}"
            )

        # Full L1 miss.
        self.stats.add("coherence.l1_misses")
        if access_type is AccessType.LOAD:
            extra, level = self._get_shared(info, line, now_ps)
        else:
            extra, level = self._get_modified(info, line, now_ps)
            if access_type is AccessType.ATOMIC:
                self.stats.add("coherence.atomics")
        return AccessResult(latency + extra, level, line, access_type)

    # Convenience wrappers -------------------------------------------------
    def load(self, node: str, paddr: int, now_ps: int = 0) -> AccessResult:
        """Coherent load."""
        return self.access(node, paddr, AccessType.LOAD, now_ps)

    def store(self, node: str, paddr: int, now_ps: int = 0) -> AccessResult:
        """Coherent store."""
        return self.access(node, paddr, AccessType.STORE, now_ps)

    def atomic(self, node: str, paddr: int, now_ps: int = 0) -> AccessResult:
        """Coherent atomic read-modify-write (performed at the L1 after
        obtaining exclusive permission, per Section 3.2.4)."""
        return self.access(node, paddr, AccessType.ATOMIC, now_ps)

    # ------------------------------------------------------------------ #
    # L1-hit fast path (used by CoreMemoryPort)
    # ------------------------------------------------------------------ #
    def l1_load_hit_ps(self, node: str, paddr: int) -> Optional[int]:
        """Serve a load that hits in ``node``'s L1; return its latency.

        Returns ``None`` when the line is not resident, *without* recording
        a cache miss — the caller then takes the general :meth:`access`
        path, whose own lookup records it, so counters match the legacy
        path exactly.  State transitions, hit counters and replacement
        updates on a hit are identical to :meth:`access`; what is skipped
        is the per-access :class:`AccessResult` allocation and the enum
        dispatch, which dominate the simulator's hot loop.
        """
        info = self._l1s.get(node)
        if info is None:
            raise CoherenceError(f"node {node!r} has no registered L1")
        block = info.cache.probe(paddr & self._line_mask)
        if block is None:
            return None
        state = block.state
        if not isinstance(state, MOESIState):
            raise CoherenceError(f"L1 {node} holds non-MOESI state {state!r}")
        if not state.can_read:
            raise CoherenceError(
                f"unexpected L1 state {state} for load at {node}"
            )
        self.stats.add("coherence.accesses.load")
        self.stats.add("coherence.l1_hits")
        return info.hit_latency_ps

    def l1_store_hit_ps(self, node: str, paddr: int, now_ps: int = 0,
                        atomic: bool = False) -> Optional[int]:
        """Serve a store/atomic whose line is resident in ``node``'s L1.

        Covers both the write-permission hit and the SHARED/OWNED upgrade
        (which reuses the general :meth:`_upgrade` transaction, so the two
        paths cannot diverge).  Returns ``None`` — recording nothing — on
        a full miss; the caller falls back to :meth:`access`.
        """
        info = self._l1s.get(node)
        if info is None:
            raise CoherenceError(f"node {node!r} has no registered L1")
        line = paddr & self._line_mask
        block = info.cache.probe(line)
        if block is None:
            return None
        state = block.state
        if not isinstance(state, MOESIState):
            raise CoherenceError(f"L1 {node} holds non-MOESI state {state!r}")
        self.stats.add("coherence.accesses.atomic" if atomic
                       else "coherence.accesses.store")
        if state.can_write:
            block.state = state.after_local_store()
            block.dirty = True
            self.stats.add("coherence.l1_hits")
            if atomic:
                self.stats.add("coherence.atomics")
            return info.hit_latency_ps
        if state in (MOESIState.SHARED, MOESIState.OWNED):
            extra = self._upgrade(info, block, line, now_ps)
            if atomic:
                self.stats.add("coherence.atomics")
            return info.hit_latency_ps + extra
        raise CoherenceError(
            f"unexpected L1 state {state} for "
            f"{'atomic' if atomic else 'store'} at {node}"
        )

    # ------------------------------------------------------------------ #
    # Transactions
    # ------------------------------------------------------------------ #
    def _upgrade(self, info: _L1Info, block: CacheBlock, line: int,
                 now_ps: int) -> int:
        """Store hit on a SHARED/OWNED copy: invalidate the other copies."""
        bank = self.home_bank(line)
        entry = bank.directory.entry(line)
        latency = self._msg(info.node, bank.name, MessageType.UPGRADE)
        latency += bank.hit_latency_ps
        latency += self._invalidate_holders(bank, entry, exclude=info.node)
        latency += self._msg(bank.name, info.node, MessageType.ACK)
        entry.set_exclusive_owner(info.node)
        block.state = MOESIState.MODIFIED
        block.dirty = True
        self.stats.add("coherence.upgrades")
        return latency

    def _get_shared(self, info: _L1Info, line: int, now_ps: int) -> tuple[int, str]:
        """Load miss: obtain a readable copy (GetS)."""
        bank = self.home_bank(line)
        entry = bank.directory.entry(line)
        latency = self._msg(info.node, bank.name, MessageType.GET_SHARED)
        latency += bank.hit_latency_ps
        level = "l2"

        owner = entry.owner
        if owner is not None and owner != info.node:
            # Forward to the current owner, which supplies the data and
            # downgrades: M -> O (stays owner), E -> S (clean, ownership
            # returns to the L2/directory).
            latency += self._msg(bank.name, owner, MessageType.FWD_GET_SHARED)
            latency += self._msg(owner, info.node, MessageType.DATA)
            owner_block = self._l1s[owner].cache.peek(line)
            if owner_block is None:
                raise CoherenceError(
                    f"directory lists {owner} as owner of {line:#x} but its L1 "
                    "does not hold the line"
                )
            if owner_block.state is MOESIState.MODIFIED:
                owner_block.state = MOESIState.OWNED
                entry.set_shared_owner(owner)
            elif owner_block.state is MOESIState.EXCLUSIVE:
                owner_block.state = MOESIState.SHARED
                entry.remove(owner)
                entry.add_sharer(owner)
            elif owner_block.state is MOESIState.OWNED:
                entry.set_shared_owner(owner)
            else:
                raise CoherenceError(
                    f"owner {owner} of {line:#x} is in non-ownership state "
                    f"{owner_block.state}"
                )
            entry.add_sharer(info.node)
            new_state = MOESIState.SHARED
            self.stats.add("coherence.remote_l1_hits")
            level = "remote_l1"
        else:
            l2_block = bank.cache.lookup(line)
            if l2_block is None:
                latency += self._fill_l2_from_dram(bank, line, now_ps)
                l2_block = bank.cache.peek(line)
                level = "dram"
                self.stats.add("coherence.l2_misses")
            else:
                self.stats.add("coherence.l2_hits")
            latency += self._msg(bank.name, info.node, MessageType.DATA)
            if entry.has_copies:
                entry.add_sharer(info.node)
                new_state = MOESIState.SHARED
            else:
                # Exclusive grant: the requester is the only holder.
                entry.set_exclusive_owner(info.node)
                new_state = MOESIState.EXCLUSIVE

        self._l1_fill(info, line, new_state, dirty=False, now_ps=now_ps)
        return latency, level

    def _get_modified(self, info: _L1Info, line: int, now_ps: int) -> tuple[int, str]:
        """Store/atomic miss: obtain an exclusive copy (GetM)."""
        bank = self.home_bank(line)
        entry = bank.directory.entry(line)
        latency = self._msg(info.node, bank.name, MessageType.GET_MODIFIED)
        latency += bank.hit_latency_ps
        level = "l2"

        owner = entry.owner
        if owner is not None and owner != info.node:
            latency += self._msg(bank.name, owner, MessageType.FWD_GET_MODIFIED)
            latency += self._msg(owner, info.node, MessageType.DATA)
            owner_block = self._l1s[owner].cache.evict(line)
            if owner_block is None:
                raise CoherenceError(
                    f"directory lists {owner} as owner of {line:#x} but its L1 "
                    "does not hold the line"
                )
            entry.remove(owner)
            self.stats.add("coherence.remote_l1_hits")
            self.stats.add("coherence.invalidations")
            level = "remote_l1"
        else:
            l2_block = bank.cache.lookup(line)
            if l2_block is None:
                latency += self._fill_l2_from_dram(bank, line, now_ps)
                level = "dram"
                self.stats.add("coherence.l2_misses")
            else:
                self.stats.add("coherence.l2_hits")
            latency += self._msg(bank.name, info.node, MessageType.DATA_EXCLUSIVE)

        latency += self._invalidate_holders(bank, entry, exclude=info.node)
        entry.set_exclusive_owner(info.node)
        self._l1_fill(info, line, MOESIState.MODIFIED, dirty=True, now_ps=now_ps)
        return latency, level

    # ------------------------------------------------------------------ #
    # Shared protocol actions
    # ------------------------------------------------------------------ #
    def _invalidate_holders(self, bank: L2Bank, entry: DirectoryEntry,
                            exclude: str) -> int:
        """Invalidate every holder except ``exclude``; return the added latency.

        Invalidations are sent in parallel, so the latency contribution is
        the slowest single invalidation round-trip, not the sum.
        """
        worst = 0
        for holder in sorted(entry.holders()):
            if holder == exclude:
                continue
            inv = self._msg(bank.name, holder, MessageType.INVALIDATE)
            ack = self._msg(holder, bank.name, MessageType.ACK)
            worst = max(worst, inv + ack)
            holder_block = self._l1s[holder].cache.evict(entry.line_address)
            if holder_block is not None and holder_block.dirty:
                # A dirty (OWNED) copy being invalidated writes its data back
                # to the home L2 bank; off the critical path but counted.
                self._writeback_to_l2(holder, bank, entry.line_address)
            entry.remove(holder)
            self.stats.add("coherence.invalidations")
        return worst

    def _l1_fill(self, info: _L1Info, line: int, state: MOESIState,
                 dirty: bool, now_ps: int) -> None:
        """Insert a line into an L1, handling the victim it may push out."""
        _, victim = info.cache.insert(line, state=state, dirty=dirty, now_ps=now_ps)
        if victim is not None:
            self._handle_l1_eviction(info.node, victim)

    def _handle_l1_eviction(self, node: str, victim: CacheBlock) -> None:
        """Process an L1 capacity eviction (PutM for dirty, PutS for clean)."""
        line = victim.line_address
        bank = self.home_bank(line)
        entry = bank.directory.peek(line)
        state = victim.state
        if isinstance(state, MOESIState) and state.is_dirty:
            self._msg(node, bank.name, MessageType.PUT_MODIFIED)
            self._writeback_to_l2(node, bank, line)
        else:
            self._msg(node, bank.name, MessageType.PUT_CLEAN)
        if entry is not None:
            entry.remove(node)
        self.stats.add("coherence.l1_evictions")

    def _writeback_to_l2(self, node: str, bank: L2Bank, line: int) -> None:
        """Record dirty data arriving at the home L2 bank."""
        l2_block = bank.cache.peek(line)
        if l2_block is None:
            # Inclusion should prevent this; tolerate by re-inserting so the
            # dirty data is not lost, then let normal eviction handle it.
            l2_block, victim = bank.cache.insert(line, dirty=True)
            if victim is not None:
                self._handle_l2_eviction(bank, victim)
        l2_block.dirty = True
        self.stats.add("coherence.writebacks_to_l2")

    def _fill_l2_from_dram(self, bank: L2Bank, line: int, now_ps: int) -> int:
        """Fetch a line from the memory side (L3, then DRAM) into the L2.

        Returns the latency.  Without an L3 this is the historical
        straight-to-DRAM fill; with one, an L3 hit serves the line without
        an off-chip access (the whole point of the ``ccsvm-l3`` shape).
        """
        latency = self._msg(bank.name, self.memory_node, MessageType.GET_SHARED)
        if self.l3 is not None:
            latency += self.l3.hit_latency_ps
            if self.l3.cache.lookup(line) is not None:
                self.stats.add("coherence.l3_hits")
            else:
                self.stats.add("coherence.l3_misses")
                latency += self.dram.read(self.line_size)
                _, l3_victim = self.l3.cache.insert(line, now_ps=now_ps)
                if l3_victim is not None and l3_victim.dirty:
                    self.dram.write(self.line_size)
                    self.stats.add("coherence.l3_writebacks")
                self.stats.add("coherence.dram_fills")
        else:
            latency += self.dram.read(self.line_size)
            self.stats.add("coherence.dram_fills")
        latency += self._msg(self.memory_node, bank.name, MessageType.DATA)
        _, victim = bank.cache.insert(line, dirty=False, now_ps=now_ps)
        if victim is not None:
            self._handle_l2_eviction(bank, victim)
        return latency

    def _handle_l2_eviction(self, bank: L2Bank, victim: CacheBlock) -> None:
        """Evict a line from the inclusive L2: recall L1 copies, write back."""
        line = victim.line_address
        entry = bank.directory.peek(line)
        dirty = victim.dirty
        if entry is not None:
            for holder in sorted(entry.holders()):
                self._msg(bank.name, holder, MessageType.RECALL)
                holder_block = self._l1s[holder].cache.evict(line)
                if holder_block is not None and holder_block.dirty:
                    self._msg(holder, bank.name, MessageType.WRITEBACK)
                    dirty = True
                self.stats.add("coherence.recalls")
            bank.directory.drop(line)
        if dirty:
            self._msg(bank.name, self.memory_node, MessageType.WRITEBACK)
            if self.l3 is not None:
                # Dirty L2 victims land in the memory-side L3 instead of DRAM.
                l3_block = self.l3.cache.peek(line)
                if l3_block is None:
                    l3_block, l3_victim = self.l3.cache.insert(line, dirty=True)
                    if l3_victim is not None and l3_victim.dirty:
                        self.dram.write(self.line_size)
                        self.stats.add("coherence.l3_writebacks")
                l3_block.dirty = True
                self.stats.add("coherence.writebacks_to_l3")
            else:
                self.dram.write(self.line_size)
                self.stats.add("coherence.writebacks_to_dram")
        self.stats.add("coherence.l2_evictions")

    # ------------------------------------------------------------------ #
    # Maintenance and verification
    # ------------------------------------------------------------------ #
    def flush_l1(self, node: str) -> int:
        """Write back and invalidate every line in ``node``'s L1.

        Returns the number of dirty lines written back.  Used when an MTTOP
        core's cache is reconfigured for legacy/graphics mode
        (Section 3.5) and by tests.
        """
        info = self._l1s[node]
        written_back = 0
        for block in info.cache.flush_all():
            bank = self.home_bank(block.line_address)
            entry = bank.directory.peek(block.line_address)
            if isinstance(block.state, MOESIState) and block.state.is_dirty:
                self._msg(node, bank.name, MessageType.PUT_MODIFIED)
                self._writeback_to_l2(node, bank, block.line_address)
                written_back += 1
            if entry is not None:
                entry.remove(node)
        return written_back

    def check_invariants(self) -> None:
        """Verify SWMR, directory/cache agreement and L2 inclusion.

        Raises :class:`CoherenceError` on any violation.  Property-based
        tests drive random access sequences and call this after every step.
        """
        # Build the true holder map from the L1 tag stores.
        holders_by_line: Dict[int, Dict[str, MOESIState]] = {}
        for node, info in self._l1s.items():
            for block in info.cache.blocks():
                if isinstance(block.state, MOESIState) and block.state.can_read:
                    holders_by_line.setdefault(block.line_address, {})[node] = block.state

        for line, holders in holders_by_line.items():
            exclusive = [n for n, s in holders.items() if s.is_exclusive]
            owners = [n for n, s in holders.items() if s.is_ownership]
            if len(exclusive) > 1:
                raise CoherenceError(f"line {line:#x} has two exclusive holders {exclusive}")
            if exclusive and len(holders) > 1:
                raise CoherenceError(
                    f"line {line:#x} held exclusively by {exclusive[0]} but also by "
                    f"{sorted(set(holders) - set(exclusive))}"
                )
            if len(owners) > 1:
                raise CoherenceError(f"line {line:#x} has multiple owners {owners}")
            bank = self.home_bank(line)
            if bank.cache.peek(line) is None:
                raise CoherenceError(f"inclusion violated: {line:#x} in an L1 but not in L2")
            entry = bank.directory.peek(line)
            if entry is None:
                raise CoherenceError(f"line {line:#x} cached but untracked by directory")
            if entry.holders() != set(holders):
                raise CoherenceError(
                    f"directory holders {sorted(entry.holders())} disagree with caches "
                    f"{sorted(holders)} for line {line:#x}"
                )
            entry.check_invariant()

        # Directory must not list holders that do not actually hold the line.
        for bank in self.banks:
            for entry in bank.directory.entries():
                for holder in entry.holders():
                    block = self._l1s[holder].cache.peek(entry.line_address)
                    if block is None or not isinstance(block.state, MOESIState) \
                            or not block.state.can_read:
                        raise CoherenceError(
                            f"directory lists {holder} for line "
                            f"{entry.line_address:#x} but its L1 does not hold it"
                        )
