"""Coherence protocol message vocabulary.

Messages are not queued or raced in this model (transactions are atomic);
the enum exists so the protocol can tag every network traversal with what it
was, giving the experiments an exact breakdown of coherence traffic.
"""

from __future__ import annotations

import enum


class MessageType(enum.Enum):
    """Every message the MOESI directory protocol exchanges."""

    # Requests from an L1 controller to the home directory.
    GET_SHARED = "GetS"          #: load miss — request a readable copy
    GET_MODIFIED = "GetM"        #: store miss — request an exclusive copy
    UPGRADE = "Upg"              #: store hit in S/O — request ownership only
    PUT_MODIFIED = "PutM"        #: eviction of a dirty (M/O) block
    PUT_CLEAN = "PutS"           #: eviction of a clean (E/S) block

    # Directory-to-L1 traffic.
    FWD_GET_SHARED = "FwdGetS"   #: forward a read request to the owner
    FWD_GET_MODIFIED = "FwdGetM"  #: forward a write request to the owner
    INVALIDATE = "Inv"           #: invalidate a shared copy
    RECALL = "Recall"            #: inclusive-L2 eviction recalls L1 copies

    # Data and acknowledgements.
    DATA = "Data"                #: cache-line data transfer
    DATA_EXCLUSIVE = "DataE"     #: data granted with exclusive permission
    ACK = "Ack"                  #: invalidation / writeback acknowledgement
    WRITEBACK = "WB"             #: dirty data written back to L2 or memory

    @property
    def is_request(self) -> bool:
        """True for L1-to-directory request messages."""
        return self in (
            MessageType.GET_SHARED,
            MessageType.GET_MODIFIED,
            MessageType.UPGRADE,
            MessageType.PUT_MODIFIED,
            MessageType.PUT_CLEAN,
        )

    @property
    def carries_data(self) -> bool:
        """True when the message payload includes a full cache line."""
        return self in (
            MessageType.DATA,
            MessageType.DATA_EXCLUSIVE,
            MessageType.WRITEBACK,
            MessageType.PUT_MODIFIED,
        )

    @property
    def counter_name(self) -> str:
        """Stable stats-counter suffix for this message type."""
        return self.value.lower()
