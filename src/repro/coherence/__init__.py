"""MOESI directory cache coherence.

The paper's chip uses "a standard, unoptimized MOESI directory protocol in
which the directory state is embedded in the L2 blocks" (Section 3.2.2), with
an inclusive shared L2: an L2 miss implies no L1 holds the block, so it goes
off chip.  The protocol here mirrors that design.  Transactions are atomic
(the simulator steps one memory operation at a time), so transient states and
races are not modelled; what is modelled exactly is the set of copies, the
single-writer/multiple-reader invariant, every message/invalidation/writeback
the protocol generates, and the latency of each transaction's critical path.
"""

from repro.coherence.states import MOESIState
from repro.coherence.messages import MessageType
from repro.coherence.directory import Directory, DirectoryEntry
from repro.coherence.protocol import (
    AccessResult,
    AccessType,
    CoherentMemorySystem,
    L2Bank,
)

__all__ = [
    "AccessResult",
    "AccessType",
    "CoherentMemorySystem",
    "Directory",
    "DirectoryEntry",
    "L2Bank",
    "MessageType",
    "MOESIState",
]
