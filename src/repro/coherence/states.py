"""MOESI coherence states for private (L1) caches."""

from __future__ import annotations

import enum


class MOESIState(enum.Enum):
    """The five stable states of the MOESI protocol [Sweazey & Smith 1986].

    * ``MODIFIED``:  this cache has the only copy and it is dirty.
    * ``OWNED``:     this cache has a dirty copy but other caches may hold
      shared (clean) copies; this cache is responsible for supplying data.
    * ``EXCLUSIVE``: this cache has the only copy and it is clean.
    * ``SHARED``:    this cache has a clean copy; others may too.
    * ``INVALID``:   no valid copy.
    """

    MODIFIED = "M"
    OWNED = "O"
    EXCLUSIVE = "E"
    SHARED = "S"
    INVALID = "I"

    # ------------------------------------------------------------------ #
    # Permission helpers
    # ------------------------------------------------------------------ #
    @property
    def can_read(self) -> bool:
        """True when a load may be satisfied locally in this state."""
        return self is not MOESIState.INVALID

    @property
    def can_write(self) -> bool:
        """True when a store may be performed locally *without* a request.

        A store in EXCLUSIVE silently upgrades to MODIFIED; a store in
        OWNED or SHARED needs an upgrade request to invalidate other copies.
        """
        return self in (MOESIState.MODIFIED, MOESIState.EXCLUSIVE)

    @property
    def is_ownership(self) -> bool:
        """True when this cache is responsible for the line's data."""
        return self in (MOESIState.MODIFIED, MOESIState.OWNED, MOESIState.EXCLUSIVE)

    @property
    def is_dirty(self) -> bool:
        """True when the copy differs (or may differ) from memory."""
        return self in (MOESIState.MODIFIED, MOESIState.OWNED)

    @property
    def is_exclusive(self) -> bool:
        """True when no other cache may hold a valid copy."""
        return self in (MOESIState.MODIFIED, MOESIState.EXCLUSIVE)

    def after_local_store(self) -> "MOESIState":
        """State after a store that hit locally with write permission."""
        if not self.can_write:
            raise ValueError(f"cannot store locally from state {self.name}")
        return MOESIState.MODIFIED

    def __str__(self) -> str:
        return self.value
