"""The MIFD driver: the ~30-line kernel driver of the paper.

The driver's only jobs are to (1) marshal a task descriptor and hand it to
the MIFD via a write syscall, (2) arbitrate between CPU processes that want
to launch MTTOP threads, and (3) set up the virtual address space on the
MTTOP cores — i.e. pass the CR3 along (Section 3.1).  Unlike the drivers of
contemporary GPUs it performs no JIT compilation, which is a large part of
why task launch is cheap on the CCSVM chip.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import MIFDError
from repro.mifd.device import MIFD
from repro.mifd.task import TaskDescriptor
from repro.sim.clock import ns_to_ps
from repro.sim.stats import StatsRegistry
from repro.vm.manager import AddressSpace


class MIFDDriver:
    """Kernel-side driver used by the xthreads runtime to launch tasks."""

    def __init__(self, device: MIFD, syscall_ns: float = 1_000.0,
                 stats: Optional[StatsRegistry] = None) -> None:
        self.device = device
        self.syscall_ps = ns_to_ps(syscall_ns)
        self.stats = stats if stats is not None else StatsRegistry()
        self._arbitration_owner_pid: Optional[int] = None

    def launch(self, program_counter: int, kernel, args: object,
               first_thread: int, last_thread: int,
               address_space: AddressSpace, now_ps: int) -> int:
        """Launch a task on the MTTOPs; return the total launch latency.

        The latency is the write syscall (user→kernel transition and
        descriptor copy) plus the MIFD's own dispatch work.
        """
        self.stats.add("mifd_driver.write_syscalls")
        task = TaskDescriptor(
            program_counter=program_counter,
            kernel=kernel,
            args=args,
            first_thread=first_thread,
            last_thread=last_thread,
            cr3=address_space.cr3,
            address_space=address_space,
        )
        self._arbitrate(address_space.pid)
        device_latency = self.device.submit_task(task, now_ps + self.syscall_ps)
        return self.syscall_ps + device_latency

    def _arbitrate(self, pid: int) -> None:
        """Arbitrate between CPU processes launching MTTOP threads.

        The model runs one process at a time on the MTTOPs (the common case
        the paper evaluates); a second process attempting to launch while
        another still holds the MTTOPs is rejected, mirroring the driver's
        arbitration role.
        """
        if self._arbitration_owner_pid is None:
            self._arbitration_owner_pid = pid
            return
        if self._arbitration_owner_pid != pid and self.device.total_free_contexts \
                != self.device.total_thread_contexts:
            raise MIFDError(
                f"process {pid} attempted to launch MTTOP threads while process "
                f"{self._arbitration_owner_pid} still owns the MTTOPs"
            )
        self._arbitration_owner_pid = pid

    def release(self, pid: int) -> None:
        """Release the MTTOPs when a process finishes using them."""
        if self._arbitration_owner_pid == pid:
            self._arbitration_owner_pid = None
