"""MTTOP InterFace Device (MIFD).

The MIFD is the small controller the paper introduces (Section 3.1) to
abstract the MTTOP cores away from the CPUs: a CPU launches a task with a
write syscall to the MIFD, which assigns SIMD-width chunks of the task's
threads to MTTOP thread contexts in round-robin order, writes an error
register when there are not enough contexts, and forwards MTTOP page faults
to a CPU core as interrupts (carrying the fault address and CR3).
"""

from repro.mifd.task import TaskChunk, TaskDescriptor
from repro.mifd.device import MIFD
from repro.mifd.driver import MIFDDriver

__all__ = [
    "MIFD",
    "MIFDDriver",
    "TaskChunk",
    "TaskDescriptor",
]
