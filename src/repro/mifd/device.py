"""The MIFD device model: task assignment and page-fault forwarding."""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

from repro.cores.cpu import CPUCore
from repro.cores.interpreter import ThreadContext, ThreadProgram
from repro.cores.mttop import MTTOPCore
from repro.errors import InsufficientThreadContextsError, MIFDError
from repro.mifd.task import TaskDescriptor
from repro.sim.clock import ns_to_ps
from repro.sim.stats import StatsRegistry
from repro.vm.manager import VirtualMemoryManager


class MIFD:
    """The MTTOP InterFace Device.

    Parameters
    ----------
    mttop_cores:
        The chip's MTTOP cores, in the order the round-robin scheduler
        visits them.
    cpu_cores:
        CPU cores that may be interrupted to handle MTTOP page faults.
    vm_manager:
        OS model used to actually service forwarded faults.
    dispatch_ns:
        Scheduling cost per assigned chunk.
    fault_interrupt_ns:
        Cost of delivering the page-fault interrupt to a CPU core (on top of
        the OS handler's own cost).
    """

    def __init__(self, mttop_cores: Sequence[MTTOPCore],
                 cpu_cores: Sequence[CPUCore],
                 vm_manager: VirtualMemoryManager,
                 stats: Optional[StatsRegistry] = None,
                 dispatch_ns: float = 200.0,
                 fault_interrupt_ns: float = 1_000.0) -> None:
        if not mttop_cores:
            raise MIFDError("the MIFD needs at least one MTTOP core")
        self.mttop_cores = list(mttop_cores)
        self.cpu_cores = list(cpu_cores)
        self.vm_manager = vm_manager
        self.stats = stats if stats is not None else StatsRegistry()
        self.dispatch_ps = ns_to_ps(dispatch_ns)
        self.fault_interrupt_ps = ns_to_ps(fault_interrupt_ns)
        #: Last error code: 0 = OK, 1 = insufficient thread contexts.  The
        #: paper's MIFD "will write an error register if there are not
        #: enough MTTOP thread contexts available".
        self.error_register = 0
        self._next_core_index = 0
        self._next_fault_cpu = 0
        #: Optional hook wrapping every device thread program as it is
        #: installed: ``(task_seq, tid, program) -> program``.  Used by the
        #: trace recorder (:mod:`repro.mem.trace`) to observe the operation
        #: stream without touching execution.
        self.program_wrapper: Optional[
            Callable[[int, int, ThreadProgram], ThreadProgram]] = None
        self._task_seq = 0

    # ------------------------------------------------------------------ #
    # Capacity queries
    # ------------------------------------------------------------------ #
    @property
    def total_free_contexts(self) -> int:
        """Free hardware thread contexts across every MTTOP core."""
        return sum(core.free_contexts for core in self.mttop_cores)

    @property
    def total_thread_contexts(self) -> int:
        """All hardware thread contexts on the chip."""
        return sum(core.thread_contexts for core in self.mttop_cores)

    # ------------------------------------------------------------------ #
    # Task submission
    # ------------------------------------------------------------------ #
    def submit_task(self, task: TaskDescriptor, now_ps: int) -> int:
        """Assign a task's threads to MTTOP cores; return the MIFD latency.

        Threads are split into SIMD-width chunks and assigned round-robin to
        cores with free contexts ("Task assignment is done in a simple
        round-robin manner until there are no MTTOP thread contexts
        remaining").  If the task does not fit, the error register is set
        and :class:`InsufficientThreadContextsError` is raised — nothing is
        partially scheduled, so callers can retry later.
        """
        if task.thread_count > self.total_free_contexts:
            self.error_register = 1
            self.stats.add("mifd.rejected_tasks")
            raise InsufficientThreadContextsError(
                f"task needs {task.thread_count} thread contexts but only "
                f"{self.total_free_contexts} are free"
            )

        latency = 0
        simd_width = self.mttop_cores[0].simd_width
        task_seq = self._task_seq
        self._task_seq += 1
        wrapper = self.program_wrapper
        for chunk in task.chunks(simd_width):
            core = self._next_core_with_room(chunk.size)
            lanes = [
                ThreadContext(
                    tid=tid,
                    program=task.kernel(tid, task.args) if wrapper is None
                    else wrapper(task_seq, tid, task.kernel(tid, task.args)))
                for tid in chunk.thread_ids
            ]
            # Loading the task's CR3 into the core is part of receiving a
            # task from the MIFD (Section 4.3).
            core.memory_port.set_address_space(task.address_space)
            core.assign_warp(lanes, at_time_ps=now_ps + latency)
            latency += self.dispatch_ps
            self.stats.add("mifd.chunks_assigned")
        self.stats.add("mifd.tasks_submitted")
        self.stats.add("mifd.threads_launched", task.thread_count)
        self.error_register = 0
        return latency

    def _next_core_with_room(self, chunk_size: int) -> MTTOPCore:
        count = len(self.mttop_cores)
        for offset in range(count):
            index = (self._next_core_index + offset) % count
            core = self.mttop_cores[index]
            if core.free_contexts >= chunk_size:
                self._next_core_index = (index + 1) % count
                return core
        # submit_task pre-checks total capacity, but fragmentation across
        # cores can still leave no single core with room for a full chunk.
        self.error_register = 1
        raise InsufficientThreadContextsError(
            f"no MTTOP core has {chunk_size} contiguous free thread contexts"
        )

    # ------------------------------------------------------------------ #
    # Page-fault forwarding
    # ------------------------------------------------------------------ #
    def forward_page_fault(self, mttop_node: str, vaddr: int, cr3: int,
                           is_write: bool) -> int:
        """Forward an MTTOP page fault to a CPU core; return the latency.

        The MIFD interrupts a CPU core with the fault cause and the faulting
        CR3; the CPU's OS identifies the process by CR3 and services the
        fault (Section 3.2.1).  The returned latency — interrupt delivery
        plus the OS handler — is charged to the faulting MTTOP access, and
        the CPU core is additionally charged the handler time, since it was
        diverted from its own work.
        """
        self.stats.add("mifd.page_faults_forwarded")
        space = self.vm_manager.space_for_cr3(cr3)
        handler_ps = self.vm_manager.handle_page_fault(space, vaddr,
                                                       is_write=is_write,
                                                       from_mttop=True)
        if self.cpu_cores:
            cpu = self.cpu_cores[self._next_fault_cpu % len(self.cpu_cores)]
            self._next_fault_cpu += 1
            cpu.add_interrupt_latency(handler_ps)
        return self.fault_interrupt_ps + handler_ps


def page_fault_handler_via_mifd(mifd: MIFD):
    """Build a :class:`~repro.core.access.CoreMemoryPort` fault handler.

    The returned callable forwards faults from an MTTOP core's memory port
    through the MIFD, as the CCSVM chip requires (MTTOP cores do not run
    the OS and cannot service their own faults).
    """
    def handler(port, vaddr: int, is_write: bool) -> int:
        return mifd.forward_page_fault(port.node, vaddr, port.cr3, is_write)

    return handler
