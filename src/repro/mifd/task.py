"""Task descriptors exchanged between the xthreads runtime and the MIFD.

The paper describes a task as "{program counter of function, arguments to
function, first thread's ID, CR3 register}" (Section 4.3).  The descriptor
below carries exactly those fields — the "program counter" is the pseudo-PC
the xthreads toolchain assigned to the compiled kernel — plus the resolved
kernel callable and address space the simulator needs to actually run it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Sequence

from repro.errors import MIFDError
from repro.vm.manager import AddressSpace


@dataclass(frozen=True)
class TaskDescriptor:
    """One ``create_mthread`` launch: a contiguous range of MTTOP threads."""

    program_counter: int
    kernel: Callable[..., object]
    args: object
    first_thread: int
    last_thread: int
    cr3: int
    address_space: AddressSpace

    def __post_init__(self) -> None:
        if self.last_thread < self.first_thread:
            raise MIFDError(
                f"task thread range [{self.first_thread}, {self.last_thread}] is empty"
            )

    @property
    def thread_count(self) -> int:
        """Number of MTTOP threads the task spawns."""
        return self.last_thread - self.first_thread + 1

    @property
    def thread_ids(self) -> range:
        """The thread IDs this task covers, in order."""
        return range(self.first_thread, self.last_thread + 1)

    def chunks(self, simd_width: int) -> List["TaskChunk"]:
        """Split the task into SIMD-width chunks (warps / wavefronts)."""
        if simd_width <= 0:
            raise MIFDError("SIMD width must be positive")
        chunks: List[TaskChunk] = []
        tids = list(self.thread_ids)
        for start in range(0, len(tids), simd_width):
            chunks.append(TaskChunk(task=self, thread_ids=tids[start:start + simd_width]))
        return chunks


@dataclass(frozen=True)
class TaskChunk:
    """A SIMD-width slice of a task, assigned to one MTTOP core as a warp."""

    task: TaskDescriptor
    thread_ids: Sequence[int]

    @property
    def size(self) -> int:
        """Number of threads in this chunk."""
        return len(self.thread_ids)
