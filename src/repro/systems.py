"""Named system presets for the scenario API.

A *system preset* bundles everything a sweep point needs to run a workload
on one of the paper's systems: a name (`ccsvm`, `apu`, `cpu`, ...), the
workload-variant key it selects in :mod:`repro.workloads.registry`, and a
factory for the configuration dataclass.  Presets make systems addressable
by picklable strings, so scenario points travel over the distributed wire
protocol as names, and dotted-path overrides
(:func:`repro.config.apply_overrides`) can rescale any preset without a
new function: ``system_config("ccsvm", {"mttop.count": 20})``.

Built-in presets:

============== ========== ==================================================
``cpu``         ``cpu``      one AMD APU CPU core, sequential (the paper's
                             normalisation baseline)
``pthreads``    ``pthreads`` the APU's four CPU cores under pthreads
``apu``         ``apu``      the APU's GPU through the OpenCL runtime model
``ccsvm``       ``ccsvm``    the simulated CCSVM chip of Table 2
``ccsvm-small`` ``ccsvm``    the scaled-down CCSVM chip unit tests use
``ccsvm-tiny``  ``ccsvm``    CCSVM with deliberately tiny caches
============== ========== ==================================================

Hierarchy-*shape* presets (same machines, reshaped memory systems, built
through the unified :mod:`repro.mem` levels):

=================  ============ ============================================
``ccsvm-l3``        ``ccsvm``     memory-side 16 MiB L3 under the L2 banks
``ccsvm-no-tlb``    ``ccsvm``     no TLBs; every access pays a page walk
``apu-shared-l2``   ``pthreads``  four CPU cores share one pooled 4 MiB L2
=================  ============ ============================================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional

from repro.config import (
    amd_apu_system,
    apply_overrides,
    apu_shared_l2_system,
    ccsvm_l3_system,
    ccsvm_no_tlb_system,
    ccsvm_system,
    override_applies,
    small_ccsvm_system,
    tiny_caches_ccsvm_system,
)
from repro.errors import ReproError


class SystemRegistryError(ReproError):
    """A system preset lookup or registration was invalid."""


@dataclass(frozen=True)
class SystemPreset:
    """One named system configuration.

    ``variant`` is the workload-variant key the preset selects
    (``cpu`` / ``apu`` / ``ccsvm`` / ``pthreads``); ``factory`` builds the
    configuration dataclass the variant receives.
    """

    name: str
    variant: str
    factory: Callable[[], object]
    description: str = ""

    def build(self, overrides: Optional[Mapping[str, object]] = None):
        """Build the preset's configuration, applying applicable overrides.

        Overrides whose dotted path does not fully resolve on this
        preset's configuration are skipped (scenario overrides are shared
        across heterogeneous systems; :mod:`repro.api` separately verifies
        that every override applies to at least one selected system).
        """
        config = self.factory()
        if overrides:
            applicable = {path: value for path, value in overrides.items()
                          if override_applies(config, path)}
            if applicable:
                config = apply_overrides(config, applicable)
        return config


_SYSTEMS: Dict[str, SystemPreset] = {}


def register_system(preset: SystemPreset) -> SystemPreset:
    """Add ``preset`` to the registry (idempotent per name) and return it."""
    existing = _SYSTEMS.get(preset.name)
    if existing is not None and existing != preset:
        raise SystemRegistryError(
            f"system preset {preset.name!r} registered twice")
    _SYSTEMS[preset.name] = preset
    return preset


def get_system(name: str) -> SystemPreset:
    """Look up a system preset by name."""
    try:
        return _SYSTEMS[name]
    except KeyError:
        known = ", ".join(system_names()) or "(none)"
        raise SystemRegistryError(
            f"no system preset named {name!r}; known systems: {known}"
        ) from None


def system_names() -> List[str]:
    """Names of every registered system preset, sorted."""
    return sorted(_SYSTEMS)


def system_config(name: str, overrides: Optional[Mapping[str, object]] = None):
    """Build the preset's configuration, with the *applicable* overrides.

    Scenario overrides are shared across heterogeneous systems, so a path
    that does not fully resolve on this preset's configuration (e.g.
    ``mttop.count`` on the APU, or ``cpu.l1_hit_cycles`` on the APU whose
    ``cpu`` section has different timing fields) is skipped here;
    :mod:`repro.api` verifies that every override applies to at least one
    selected system.
    """
    return get_system(name).build(overrides)


def overrides_applicable(name: str,
                         overrides: Mapping[str, object]) -> List[str]:
    """The override paths that fully resolve on preset ``name``'s config."""
    config = get_system(name).factory()
    return [path for path in overrides if override_applies(config, path)]


register_system(SystemPreset(
    name="cpu", variant="cpu", factory=amd_apu_system,
    description="one AMD APU CPU core, sequential (normalisation baseline)"))
register_system(SystemPreset(
    name="pthreads", variant="pthreads", factory=amd_apu_system,
    description="the APU's four CPU cores under pthreads"))
register_system(SystemPreset(
    name="apu", variant="apu", factory=amd_apu_system,
    description="the APU's Radeon GPU through the OpenCL runtime model"))
register_system(SystemPreset(
    name="ccsvm", variant="ccsvm", factory=ccsvm_system,
    description="the simulated CCSVM chip exactly as in Table 2"))
register_system(SystemPreset(
    name="ccsvm-small", variant="ccsvm", factory=small_ccsvm_system,
    description="scaled-down CCSVM chip (fast; the unit-test preset)"))
register_system(SystemPreset(
    name="ccsvm-tiny", variant="ccsvm", factory=tiny_caches_ccsvm_system,
    description="CCSVM with deliberately tiny caches (forces evictions)"))

# Hierarchy-*shape* presets: same machines, reshaped memory systems.
register_system(SystemPreset(
    name="ccsvm-l3", variant="ccsvm", factory=ccsvm_l3_system,
    description="CCSVM chip with a 16 MiB memory-side L3 under the L2 banks"))
register_system(SystemPreset(
    name="ccsvm-no-tlb", variant="ccsvm", factory=ccsvm_no_tlb_system,
    description="CCSVM chip without TLBs (every access pays a page walk)"))
register_system(SystemPreset(
    name="apu-shared-l2", variant="pthreads", factory=apu_shared_l2_system,
    description="APU whose four CPU cores share one pooled 4 MiB L2"))
