"""Assembly of the CCSVM heterogeneous multicore chip (Figure 1).

:class:`CCSVMChip` builds the full simulated system from a
:class:`~repro.config.CCSVMSystemConfig`: CPU cores and MTTOP cores, each
with a private L1, TLB and page-table walker; a banked shared inclusive L2
with the MOESI directory embedded in it; a 2D torus interconnect; off-chip
DRAM; the MIFD; and the xthreads runtime.  A run executes one xthreads
process: its host program on a CPU core plus whatever MTTOP tasks the host
launches.

Typical use::

    from repro import CCSVMChip, ccsvm_system
    chip = CCSVMChip(ccsvm_system())
    result = chip.run(host_program)          # a generator of Operations
    print(result.time_ns, result.dram_accesses)
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Union

from repro.coherence.protocol import CoherentMemorySystem, L2Bank
from repro.config import CCSVMSystemConfig, ConfigurationError, ccsvm_system
from repro.core.access import CoreMemoryPort
from repro.mem.assemble import build_ccsvm_l1, build_l2_banks, build_l3_level
from repro.core.consistency import SequentialConsistencyChecker
from repro.core.xthreads.runtime import XThreadsRuntime
from repro.core.xthreads.toolchain import CompiledProcess, XThreadsToolchain
from repro.cores.cpu import CPUCore
from repro.cores.interpreter import ThreadProgram
from repro.cores.mttop import MTTOPCore
from repro.errors import SimulationError
from repro.interconnect.network import NetworkModel
from repro.interconnect.topology import Torus2DTopology
from repro.memory.dram import DRAMModel
from repro.memory.physical import FrameAllocator, PhysicalMemory
from repro.mem.trace import active_recorder as trace_active_recorder
from repro.memory.address import WORD_SIZE
from repro.mifd.device import MIFD, page_fault_handler_via_mifd
from repro.mifd.driver import MIFDDriver
from repro.sim.clock import ClockDomain, ns_to_ps, ps_to_ns
from repro.sim.engine import Engine
from repro.sim.stats import StatsRegistry
from repro.vm.manager import AddressSpace, VirtualMemoryManager
from repro.vm.shootdown import TLBShootdownController
from repro.vm.tlb import TLB
from repro.vm.walker import PageTableWalker

#: A host program may be passed as a ready generator or as a zero-argument
#: generator function.
HostProgram = Union[ThreadProgram, Callable[[], ThreadProgram]]


@dataclass(frozen=True)
class RunResult:
    """Outcome of one chip run."""

    time_ps: int
    engine_steps: int
    stats: StatsRegistry

    @property
    def time_ns(self) -> float:
        """Total simulated time in nanoseconds."""
        return ps_to_ns(self.time_ps)

    @property
    def time_ms(self) -> float:
        """Total simulated time in milliseconds."""
        return self.time_ps / 1e9

    @property
    def dram_accesses(self) -> int:
        """Off-chip DRAM accesses performed during the run (Figure 9 metric)."""
        return self.stats.get("dram.reads") + self.stats.get("dram.writes")


class CCSVMChip:
    """The simulated CCSVM heterogeneous multicore chip."""

    def __init__(self, config: Optional[CCSVMSystemConfig] = None,
                 check_sc: bool = False,
                 max_engine_steps: int = 200_000_000,
                 engine_scheduler: str = "heap",
                 fast_access_path: bool = True) -> None:
        self.config = config if config is not None else ccsvm_system()
        if self.config.mttop.write_through:
            # The config field exists (the paper discusses write-through
            # MTTOP L1s as an open challenge, Section 6.1) but every
            # modeled transaction path assumes write-back caches (Section
            # 3.2.2).  Refuse to build rather than silently simulate the
            # wrong machine.
            raise ConfigurationError(
                "mttop.write_through=true is not modeled: the simulated "
                "CCSVM chip implements write-back MTTOP L1s only (paper "
                "Section 3.2.2); write-through L1s are an unimplemented "
                "feature")
        self.fast_access_path = fast_access_path
        self.stats = StatsRegistry()
        self.engine = Engine(max_steps=max_engine_steps,
                             scheduler=engine_scheduler)
        self.check_sc = check_sc
        self.sc_checker = SequentialConsistencyChecker() if check_sc else None

        self._build_memory()
        self._build_interconnect()
        self._build_l2_and_coherence()
        self._build_cores()
        self._build_mifd_and_runtime()

        self._process_space: Optional[AddressSpace] = None
        self._compiled_process: Optional[CompiledProcess] = None
        self._outstanding_host_programs = 0
        self._has_run = False
        self._trace_recorder = None

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #
    def _build_memory(self) -> None:
        cfg = self.config
        self.physical_memory = PhysicalMemory(cfg.dram.size_bytes)
        self.frames = FrameAllocator(cfg.dram.size_bytes)
        self.vm = VirtualMemoryManager(self.physical_memory, self.frames,
                                       stats=self.stats)
        self.dram = DRAMModel(cfg.dram.latency_ns, stats=self.stats, name="dram")
        self.shootdown = TLBShootdownController(stats=self.stats)

    def _build_interconnect(self) -> None:
        cfg = self.config
        self.cpu_nodes = [f"cpu{i}" for i in range(cfg.cpu.count)]
        self.mttop_nodes = [f"mttop{i}" for i in range(cfg.mttop.count)]
        self.l2_nodes = [f"l2b{i}" for i in range(cfg.l2.banks)]
        self.memory_node = "mem0"
        all_nodes = self.cpu_nodes + self.mttop_nodes + self.l2_nodes + [self.memory_node]
        self.topology = Torus2DTopology.fit(all_nodes)
        self.network = NetworkModel(self.topology,
                                    link_bandwidth_gbps=cfg.noc.link_bandwidth_gbps,
                                    per_hop_latency_ns=cfg.noc.hop_latency_ns,
                                    stats=self.stats)

    def _build_l2_and_coherence(self) -> None:
        cfg = self.config
        self.cpu_clock = ClockDomain.from_ghz("cpu", cfg.cpu.frequency_ghz)
        self.mttop_clock = ClockDomain.from_mhz("mttop", cfg.mttop.frequency_mhz)
        l2_hit_ps = self.cpu_clock.cycles_to_ps(cfg.l2.hit_latency_cpu_cycles)

        self.l2_banks: List[L2Bank] = build_l2_banks(cfg, self.l2_nodes,
                                                     l2_hit_ps, stats=self.stats)
        self.l3_level = build_l3_level(cfg, self.cpu_clock, stats=self.stats)
        self.coherence = CoherentMemorySystem(self.network, self.dram,
                                              self.l2_banks, self.memory_node,
                                              stats=self.stats,
                                              l3=self.l3_level)
        self._l2_hit_ps = l2_hit_ps

    def _make_memory_port(self, node: str, tlb_entries: int) -> CoreMemoryPort:
        tlb: Optional[TLB] = None
        if self.config.tlb_enabled:
            tlb = TLB(entries=tlb_entries, stats=self.stats, name=f"tlb.{node}")
        hop_ps = ns_to_ps(self.config.noc.hop_latency_ns)
        walker = PageTableWalker(
            self.physical_memory,
            default_entry_latency_ps=self._l2_hit_ps + 4 * hop_ps,
            stats=self.stats, name=f"walker.{node}")
        return CoreMemoryPort(node=node, tlb=tlb, walker=walker,
                              coherence=self.coherence,
                              physical_memory=self.physical_memory,
                              vm_manager=self.vm, stats=self.stats,
                              sc_checker=self.sc_checker,
                              fast_path=self.fast_access_path,
                              batch_enabled=self.config.batch_access)

    def _build_cores(self) -> None:
        cfg = self.config
        spin_poll_ps = ns_to_ps(cfg.spin_poll_ns)

        self.cpu_cores: List[CPUCore] = []
        cpu_l1_hit_ps = self.cpu_clock.cycles_to_ps(cfg.cpu.l1_hit_cycles)
        for node in self.cpu_nodes:
            l1 = build_ccsvm_l1(node, size_bytes=cfg.cpu.l1_size_bytes,
                                associativity=cfg.cpu.l1_associativity,
                                hit_latency_ps=cpu_l1_hit_ps,
                                replacement=cfg.cpu.l1_replacement,
                                stats=self.stats)
            self.coherence.register_l1(node, l1, cpu_l1_hit_ps)
            port = self._make_memory_port(node, cfg.cpu.tlb_entries)
            if port.tlb is not None:
                self.shootdown.register_cpu_tlb(port.tlb)
            core = CPUCore(node, self.cpu_clock,
                           cycles_per_instruction=cfg.cpu.cycles_per_instruction,
                           memory_port=port, stats=self.stats,
                           spin_poll_ps=spin_poll_ps)
            self.cpu_cores.append(core)
            self.engine.add_agent(core)

        self.mttop_cores: List[MTTOPCore] = []
        mttop_l1_hit_ps = self.mttop_clock.cycles_to_ps(cfg.mttop.l1_hit_cycles)
        for node in self.mttop_nodes:
            l1 = build_ccsvm_l1(node, size_bytes=cfg.mttop.l1_size_bytes,
                                associativity=cfg.mttop.l1_associativity,
                                hit_latency_ps=mttop_l1_hit_ps,
                                replacement=cfg.mttop.l1_replacement,
                                stats=self.stats)
            self.coherence.register_l1(node, l1, mttop_l1_hit_ps)
            port = self._make_memory_port(node, cfg.mttop.tlb_entries)
            if port.tlb is not None:
                self.shootdown.register_mttop_tlb(port.tlb)
            core = MTTOPCore(node, self.mttop_clock,
                             simd_width=cfg.mttop.simd_width,
                             thread_contexts=cfg.mttop.thread_contexts,
                             memory_port=port, stats=self.stats,
                             spin_poll_ps=spin_poll_ps)
            self.mttop_cores.append(core)
            self.engine.add_agent(core)

    def _build_mifd_and_runtime(self) -> None:
        cfg = self.config
        self.mifd = MIFD(self.mttop_cores, self.cpu_cores, self.vm,
                         stats=self.stats, dispatch_ns=cfg.mifd_dispatch_ns)
        self.driver = MIFDDriver(self.mifd, syscall_ns=cfg.mifd_syscall_ns,
                                 stats=self.stats)
        self.toolchain = XThreadsToolchain()
        self.runtime = XThreadsRuntime(self.driver, self.vm,
                                       toolchain=self.toolchain, stats=self.stats,
                                       spin_poll_ns=cfg.spin_poll_ns)
        mttop_fault_handler = page_fault_handler_via_mifd(self.mifd)
        for core in self.cpu_cores:
            core.runtime_handler = self.runtime.handle
        for core in self.mttop_cores:
            core.runtime_handler = self.runtime.handle
            core.memory_port.page_fault_handler = mttop_fault_handler

    # ------------------------------------------------------------------ #
    # Running a process
    # ------------------------------------------------------------------ #
    @property
    def process_space(self) -> AddressSpace:
        """The address space of the process most recently run (or being run)."""
        if self._process_space is None:
            raise SimulationError("no process has been created on this chip yet")
        return self._process_space

    def create_process(self, name: str = "xthreads_process",
                       kernels: Optional[Sequence[Callable]] = None) -> AddressSpace:
        """Create the process address space and compile its kernels.

        Called implicitly by :meth:`run`; call it explicitly when a test or
        example wants to pre-populate memory before the run starts.
        """
        self._process_space = self.vm.create_address_space()
        self._compiled_process = self.toolchain.compile_process(
            name, host_entry=None, kernels=list(kernels or []))
        self.runtime.set_process(self._compiled_process)
        for core in self.cpu_cores:
            core.memory_port.set_address_space(self._process_space)
        return self._process_space

    def _resolve_host(self, host: HostProgram) -> ThreadProgram:
        if inspect.isgenerator(host):
            return host
        if callable(host):
            program = host()
            if not inspect.isgenerator(program):
                raise SimulationError(
                    "host program callable must return a generator of Operations"
                )
            return program
        raise SimulationError(f"cannot use {host!r} as a host program")

    def attach_trace_recorder(self, recorder) -> None:
        """Record this chip's run into ``recorder`` (a
        :class:`~repro.mem.trace.TraceRecorder`).

        Must be called before :meth:`run`.  Host programs and every MTTOP
        device thread program are transparently wrapped, so the traced run
        is bit-for-bit identical to an untraced one.
        """
        if self._has_run:
            raise SimulationError(
                "attach_trace_recorder must be called before run()"
            )
        self._trace_recorder = recorder
        self.mifd.program_wrapper = recorder.wrap_device

    def _on_host_complete(self, core: CPUCore, context) -> None:
        self._outstanding_host_programs -= 1
        if self._outstanding_host_programs <= 0:
            for mttop in self.mttop_cores:
                mttop.request_halt(core.local_time_ps)
            if self._process_space is not None:
                self.driver.release(self._process_space.pid)

    def run(self, host: HostProgram,
            extra_hosts: Optional[Sequence[HostProgram]] = None,
            process_name: str = "xthreads_process") -> RunResult:
        """Run an xthreads process to completion and return the result.

        ``host`` is the process's main thread (a generator of Operations)
        and runs on CPU core 0; ``extra_hosts`` (optional) model additional
        pthreads-style CPU threads of the same process and are placed on the
        remaining CPU cores round-robin.  A chip instance runs one process
        once; build a fresh chip for each experiment point.
        """
        if self._has_run:
            raise SimulationError(
                "this chip has already completed a run; create a new CCSVMChip"
            )
        self._has_run = True
        if self._trace_recorder is None:
            ambient = trace_active_recorder()
            if ambient is not None:
                self._trace_recorder = ambient
                self.mifd.program_wrapper = ambient.wrap_device
        if self._process_space is None:
            self.create_process(process_name)

        host_programs = [self._resolve_host(host)]
        for extra in extra_hosts or []:
            host_programs.append(self._resolve_host(extra))
        if self._trace_recorder is not None:
            host_programs = [self._trace_recorder.wrap_host(program)
                             for program in host_programs]
        if len(host_programs) > len(self.cpu_cores):
            raise SimulationError(
                f"{len(host_programs)} host threads exceed {len(self.cpu_cores)} CPU cores"
            )

        self._outstanding_host_programs = len(host_programs)
        for index, program in enumerate(host_programs):
            self.cpu_cores[index].run_program(program,
                                              on_complete=self._on_host_complete)

        total_time = self.engine.run()
        return RunResult(time_ps=total_time, engine_steps=self.engine.steps_executed,
                         stats=self.stats)

    # ------------------------------------------------------------------ #
    # Functional helpers (no timing) for tests, examples and experiments
    # ------------------------------------------------------------------ #
    def write_word(self, vaddr: int, value: int) -> None:
        """Write a 64-bit word into the process's virtual memory (no timing)."""
        translation = self.vm.translate_or_fault(self.process_space, vaddr,
                                                 is_write=True)
        self.physical_memory.write_word(translation.physical_address(vaddr), value)

    def read_word(self, vaddr: int) -> int:
        """Read a 64-bit word from the process's virtual memory (no timing)."""
        translation = self.vm.translate_or_fault(self.process_space, vaddr)
        return self.physical_memory.read_word(translation.physical_address(vaddr))

    def write_array(self, vaddr: int, values: Sequence[int]) -> None:
        """Write consecutive 64-bit words starting at ``vaddr`` (no timing)."""
        for index, value in enumerate(values):
            self.write_word(vaddr + index * WORD_SIZE, value)

    def read_array(self, vaddr: int, count: int) -> List[int]:
        """Read ``count`` consecutive 64-bit words starting at ``vaddr``."""
        return [self.read_word(vaddr + index * WORD_SIZE) for index in range(count)]

    def malloc(self, size: int) -> int:
        """Allocate process heap memory outside simulated time (for setup)."""
        return self.vm.malloc(self.process_space, size)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def dram_accesses(self) -> int:
        """Total off-chip DRAM accesses so far."""
        return self.dram.total_accesses

    def stats_snapshot(self) -> Dict[str, int]:
        """A plain-dict copy of every counter (useful for diffing)."""
        return self.stats.to_dict()
