"""The paper's primary contribution: the CCSVM heterogeneous chip.

This package assembles the substrates (virtual memory, caches, MOESI
directory coherence, torus interconnect, DRAM) into the tightly-coupled
CPU + MTTOP chip of Section 3, together with the xthreads programming model
of Section 4.  :class:`~repro.core.chip.CCSVMChip` is the main entry point
used by the examples and the experiment harness.
"""

from repro.core.access import CoreMemoryPort
from repro.core.consistency import SequentialConsistencyChecker
from repro.core.chip import CCSVMChip, RunResult

__all__ = [
    "CCSVMChip",
    "CoreMemoryPort",
    "RunResult",
    "SequentialConsistencyChecker",
]
