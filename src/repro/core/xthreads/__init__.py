"""The xthreads programming model (Section 4 of the paper).

xthreads extends pthreads so a CPU thread can spawn threads on the MTTOP
cores, synchronise with them through shared memory, and let MTTOP threads
dynamically allocate memory.  The pieces are:

* :mod:`repro.core.xthreads.api` — the operations host programs and kernels
  use (``create_mthread``, ``wait``, ``signal``, ``cpu_mttop_barrier``,
  ``mttop_malloc`` and the MTTOP-side helpers of Table 1);
* :mod:`repro.core.xthreads.toolchain` — the compilation model that turns
  kernels into pseudo program counters embedded in the process image;
* :mod:`repro.core.xthreads.runtime` — the runtime library that services
  those operations on the simulated chip (write syscalls to the MIFD,
  spin-wait synchronisation over coherent shared memory, CPU-serviced
  ``mttop_malloc``).
"""

from repro.core.xthreads.api import (
    READY,
    WAITING_ON_CPU,
    WAITING_ON_MTTOP,
    CpuMttopBarrier,
    CreateMThread,
    SignalCond,
    WaitCond,
    cond_entry,
    mttop_barrier,
    mttop_signal,
    mttop_wait,
)
from repro.core.xthreads.runtime import XThreadsRuntime
from repro.core.xthreads.toolchain import CompiledProcess, XThreadsKernel, XThreadsToolchain

__all__ = [
    "CompiledProcess",
    "CpuMttopBarrier",
    "CreateMThread",
    "READY",
    "SignalCond",
    "WAITING_ON_CPU",
    "WAITING_ON_MTTOP",
    "WaitCond",
    "XThreadsKernel",
    "XThreadsRuntime",
    "XThreadsToolchain",
    "cond_entry",
    "mttop_barrier",
    "mttop_signal",
    "mttop_wait",
]
