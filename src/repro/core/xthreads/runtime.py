"""The xthreads runtime library.

The runtime is installed on every core as the handler for operations the
core cannot execute by itself: task creation, the CPU-side synchronisation
primitives, and dynamic allocation.  Its behaviour follows Section 4.3 of
the paper:

* ``create_mthread`` performs a write syscall to the MIFD driver, which
  splits the task into SIMD-width chunks and round-robins them over the
  MTTOP cores;
* ``wait`` / ``signal`` / ``cpu_mttop_barrier`` operate on condition and
  barrier arrays in coherent shared memory — the CPU genuinely spins,
  issuing a coherent load per polling interval;
* ``malloc`` on a CPU thread is a normal heap allocation;
* ``malloc`` on an MTTOP thread is the paper's ``mttop_malloc``: the request
  is shipped to a CPU thread, which performs the allocation on the MTTOP
  thread's behalf and hands the pointer back.  Requests are serviced
  serially by the CPU, which is exactly the bottleneck Figure 8 exposes as
  matrix density grows.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.cores.cpu import CPUCore
from repro.cores.interpreter import OpOutcome, ThreadContext
from repro.cores.isa import Free, Malloc, Operation
from repro.cores.mttop import MTTOPCore
from repro.core.xthreads.api import (
    CpuMttopBarrier,
    CreateMThread,
    SignalCond,
    WaitCond,
    BARRIER_ARRIVED,
    cond_entry,
)
from repro.core.xthreads.toolchain import CompiledProcess, XThreadsToolchain
from repro.errors import KernelProgramError, RuntimeModelError
from repro.mifd.driver import MIFDDriver
from repro.sim.clock import ns_to_ps
from repro.sim.stats import StatsRegistry
from repro.vm.manager import VirtualMemoryManager


class XThreadsRuntime:
    """Services xthreads operations for every core of one CCSVM chip."""

    def __init__(self, driver: MIFDDriver, vm_manager: VirtualMemoryManager,
                 toolchain: Optional[XThreadsToolchain] = None,
                 stats: Optional[StatsRegistry] = None,
                 spin_poll_ns: float = 200.0,
                 cpu_malloc_ns: float = 300.0,
                 mttop_malloc_service_ns: float = 1_500.0) -> None:
        self.driver = driver
        self.vm_manager = vm_manager
        self.toolchain = toolchain if toolchain is not None else XThreadsToolchain()
        self.stats = stats if stats is not None else StatsRegistry()
        self.spin_poll_ps = ns_to_ps(spin_poll_ns)
        self.cpu_malloc_ps = ns_to_ps(cpu_malloc_ns)
        self.mttop_malloc_service_ps = ns_to_ps(mttop_malloc_service_ns)
        self._process: Optional[CompiledProcess] = None
        # Incremental progress for CPU-side waits/barriers, keyed by lane id.
        self._wait_progress: Dict[int, int] = {}
        self._barrier_progress: Dict[int, int] = {}
        # Time at which the CPU-side mttop_malloc servicer next becomes free.
        self._malloc_service_free_at_ps = 0

    # ------------------------------------------------------------------ #
    # Process binding
    # ------------------------------------------------------------------ #
    def set_process(self, process: CompiledProcess) -> None:
        """Bind the compiled process image whose kernels may be launched."""
        self._process = process

    @property
    def process(self) -> CompiledProcess:
        """The currently bound process image."""
        if self._process is None:
            raise RuntimeModelError("no compiled xthreads process is bound to the runtime")
        return self._process

    # ------------------------------------------------------------------ #
    # The runtime handler installed on every core
    # ------------------------------------------------------------------ #
    def handle(self, core, lane: ThreadContext, operation: Operation) -> OpOutcome:
        """Execute one runtime operation on behalf of ``core``/``lane``."""
        if isinstance(operation, CreateMThread):
            return self._create_mthread(core, operation)
        if isinstance(operation, WaitCond):
            return self._cpu_wait(core, lane, operation)
        if isinstance(operation, SignalCond):
            return self._cpu_signal(core, operation)
        if isinstance(operation, CpuMttopBarrier):
            return self._cpu_barrier(core, lane, operation)
        if isinstance(operation, Malloc):
            if isinstance(core, MTTOPCore):
                return self._mttop_malloc(core, operation)
            return self._cpu_malloc(core, operation)
        if isinstance(operation, Free):
            return self._free(core, operation)
        raise KernelProgramError(
            f"xthreads runtime cannot handle operation {operation!r}"
        )

    # Make the runtime itself usable as the core's handler callable.
    __call__ = handle

    # ------------------------------------------------------------------ #
    # Task creation
    # ------------------------------------------------------------------ #
    def _create_mthread(self, core: CPUCore, operation: CreateMThread) -> OpOutcome:
        if not isinstance(core, CPUCore):
            raise RuntimeModelError("create_mthread may only be called from a CPU thread")
        kernel = self.toolchain.add_kernel(self.process, operation.kernel)
        latency = self.driver.launch(
            program_counter=kernel.program_counter,
            kernel=kernel.function,
            args=operation.args,
            first_thread=operation.first_thread,
            last_thread=operation.last_thread,
            address_space=core.memory_port.address_space,
            now_ps=core.local_time_ps,
        )
        self.stats.add("xthreads.create_mthread")
        self.stats.add("xthreads.threads_created",
                       operation.last_thread - operation.first_thread + 1)
        return OpOutcome(latency_ps=latency)

    # ------------------------------------------------------------------ #
    # CPU-side synchronisation
    # ------------------------------------------------------------------ #
    def _poll_array(self, core, lane: ThreadContext, base_vaddr: int,
                    first: int, last: int, expected: int,
                    progress: Dict[int, int]) -> tuple[int, bool]:
        """Poll condition slots ``first..last`` for ``expected``.

        Polling is incremental: slots already observed to match are not
        re-read (the CPU keeps a cursor), which is how a real spin loop over
        an array behaves once written carefully.  Returns ``(latency_ps,
        satisfied)``.
        """
        cursor = progress.get(id(lane), first)
        latency = 0
        while cursor <= last:
            value, load_ps = core.memory_port.load(cond_entry(base_vaddr, cursor))
            latency += load_ps
            if value != expected:
                break
            cursor += 1
        progress[id(lane)] = cursor
        satisfied = cursor > last
        if satisfied:
            progress.pop(id(lane), None)
        return latency, satisfied

    def _cpu_wait(self, core: CPUCore, lane: ThreadContext,
                  operation: WaitCond) -> OpOutcome:
        latency, satisfied = self._poll_array(
            core, lane, operation.condition_vaddr, operation.first_thread,
            operation.last_thread, operation.value, self._wait_progress)
        if satisfied:
            self.stats.add("xthreads.waits_completed")
            return OpOutcome(latency_ps=latency)
        self.stats.add("xthreads.wait_polls")
        return OpOutcome(latency_ps=latency + self.spin_poll_ps, retry=True)

    def _cpu_signal(self, core: CPUCore, operation: SignalCond) -> OpOutcome:
        latency = 0
        for tid in range(operation.first_thread, operation.last_thread + 1):
            latency += core.memory_port.store(
                cond_entry(operation.condition_vaddr, tid), operation.value)
        self.stats.add("xthreads.signals")
        return OpOutcome(latency_ps=latency)

    def _cpu_barrier(self, core: CPUCore, lane: ThreadContext,
                     operation: CpuMttopBarrier) -> OpOutcome:
        latency, satisfied = self._poll_array(
            core, lane, operation.barrier_vaddr, operation.first_thread,
            operation.last_thread, BARRIER_ARRIVED, self._barrier_progress)
        if not satisfied:
            self.stats.add("xthreads.barrier_polls")
            return OpOutcome(latency_ps=latency + self.spin_poll_ps, retry=True)

        # Everyone has arrived: clear the barrier slots, then flip the sense
        # word to release the spinning MTTOP threads.
        for tid in range(operation.first_thread, operation.last_thread + 1):
            latency += core.memory_port.store(
                cond_entry(operation.barrier_vaddr, tid), 0)
        sense, load_ps = core.memory_port.load(operation.sense_vaddr)
        latency += load_ps
        latency += core.memory_port.store(operation.sense_vaddr, 1 - sense)
        self.stats.add("xthreads.barriers_completed")
        return OpOutcome(latency_ps=latency)

    # ------------------------------------------------------------------ #
    # Dynamic allocation
    # ------------------------------------------------------------------ #
    def _cpu_malloc(self, core: CPUCore, operation: Malloc) -> OpOutcome:
        space = core.memory_port.address_space
        vaddr = self.vm_manager.malloc(space, operation.size)
        self.stats.add("xthreads.cpu_mallocs")
        return OpOutcome(latency_ps=self.cpu_malloc_ps, value=vaddr)

    def _mttop_malloc(self, core: MTTOPCore, operation: Malloc) -> OpOutcome:
        """The paper's ``mttop_malloc``: allocation offloaded to a CPU thread.

        The MTTOP thread signals a CPU thread, which performs the ``malloc``
        on its behalf and returns the pointer (Section 5.3.2).  Requests are
        serviced one at a time by the CPU, so concurrent allocations queue —
        this serialisation is what caps sparse-matrix-multiply speedups as
        density rises (Figure 8, right panel).
        """
        space = core.memory_port.address_space
        vaddr = self.vm_manager.malloc(space, operation.size)
        now = core.local_time_ps
        start = max(now, self._malloc_service_free_at_ps)
        finish = start + self.mttop_malloc_service_ps
        self._malloc_service_free_at_ps = finish
        self.stats.add("xthreads.mttop_mallocs")
        self.stats.add("xthreads.mttop_malloc_wait_ps", start - now)
        return OpOutcome(latency_ps=finish - now, value=vaddr)

    def _free(self, core, operation: Free) -> OpOutcome:
        space = core.memory_port.address_space
        self.vm_manager.free(space, operation.vaddr)
        self.stats.add("xthreads.frees")
        return OpOutcome(latency_ps=self.cpu_malloc_ps // 2)
