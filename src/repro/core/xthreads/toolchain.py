"""The xthreads compilation model (Section 4.2, Figure 2).

The real toolchain splits an xthreads source file into CPU code and MTTOP
code, compiles each for its target ISA, and embeds the MTTOP binary in the
text segment of the CPU executable so a task launch only needs a program
counter.  Here "compilation" means validating that each kernel is a
generator function of the right shape and assigning it a pseudo program
counter inside a :class:`CompiledProcess`; the MIFD task descriptor then
carries that PC exactly as the paper's write syscall does, and the MTTOP
core "fetches" the kernel by PC from the process image.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.errors import KernelProgramError

#: Pseudo address of the first kernel in the embedded MTTOP text segment.
MTTOP_TEXT_BASE = 0x0040_0000

#: Pseudo size reserved per compiled kernel (spacing of program counters).
KERNEL_SLOT_BYTES = 0x1000


@dataclass(frozen=True)
class XThreadsKernel:
    """One compiled MTTOP kernel: a generator function plus its pseudo PC."""

    name: str
    function: Callable[..., object]
    program_counter: int


@dataclass
class CompiledProcess:
    """A compiled xthreads process image.

    Holds the host entry point (a generator function run on a CPU core) and
    the MTTOP kernels embedded in the process's text segment, addressable by
    pseudo program counter.
    """

    name: str
    host_entry: Optional[Callable[..., object]] = None
    kernels: List[XThreadsKernel] = field(default_factory=list)
    _by_function: Dict[Callable[..., object], XThreadsKernel] = field(default_factory=dict)
    _by_pc: Dict[int, XThreadsKernel] = field(default_factory=dict)

    def kernel_for(self, function: Callable[..., object]) -> XThreadsKernel:
        """Look up the compiled form of ``function``."""
        try:
            return self._by_function[function]
        except KeyError:
            raise KernelProgramError(
                f"kernel {getattr(function, '__name__', function)!r} was not "
                f"compiled into process {self.name!r}"
            ) from None

    def kernel_at(self, program_counter: int) -> XThreadsKernel:
        """Look up a kernel by its pseudo program counter."""
        try:
            return self._by_pc[program_counter]
        except KeyError:
            raise KernelProgramError(
                f"no kernel at program counter {program_counter:#x} in process "
                f"{self.name!r}"
            ) from None

    def text_segment(self) -> List[int]:
        """Program counters of every embedded kernel, in layout order."""
        return [kernel.program_counter for kernel in self.kernels]


class XThreadsToolchain:
    """Compiles host entry points and MTTOP kernels into a process image."""

    def __init__(self) -> None:
        self._compiled_processes: List[CompiledProcess] = []

    # ------------------------------------------------------------------ #
    # Validation helpers
    # ------------------------------------------------------------------ #
    @staticmethod
    def _require_generator_function(function: Callable[..., object], role: str) -> None:
        if not inspect.isgeneratorfunction(function):
            raise KernelProgramError(
                f"{role} {getattr(function, '__name__', function)!r} must be a "
                "generator function (it yields Operations)"
            )

    @staticmethod
    def _require_kernel_signature(function: Callable[..., object]) -> None:
        parameters = list(inspect.signature(function).parameters)
        if len(parameters) != 2:
            raise KernelProgramError(
                f"MTTOP kernel {function.__name__!r} must take exactly two "
                f"parameters (tid, args); it takes {parameters}"
            )

    # ------------------------------------------------------------------ #
    # Compilation
    # ------------------------------------------------------------------ #
    def compile_process(self, name: str,
                        host_entry: Optional[Callable[..., object]] = None,
                        kernels: Optional[List[Callable[..., object]]] = None) -> CompiledProcess:
        """Compile a host entry point and its kernels into a process image."""
        if host_entry is not None:
            self._require_generator_function(host_entry, "host entry point")
        process = CompiledProcess(name=name, host_entry=host_entry)
        for kernel_fn in kernels or []:
            self.add_kernel(process, kernel_fn)
        self._compiled_processes.append(process)
        return process

    def add_kernel(self, process: CompiledProcess,
                   function: Callable[..., object]) -> XThreadsKernel:
        """Compile one kernel into ``process`` (idempotent per function)."""
        existing = process._by_function.get(function)
        if existing is not None:
            return existing
        self._require_generator_function(function, "MTTOP kernel")
        self._require_kernel_signature(function)
        program_counter = MTTOP_TEXT_BASE + len(process.kernels) * KERNEL_SLOT_BYTES
        kernel = XThreadsKernel(name=function.__name__, function=function,
                                program_counter=program_counter)
        process.kernels.append(kernel)
        process._by_function[function] = kernel
        process._by_pc[program_counter] = kernel
        return kernel

    @property
    def compiled_processes(self) -> List[CompiledProcess]:
        """Every process image this toolchain has produced."""
        return list(self._compiled_processes)
