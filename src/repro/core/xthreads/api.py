"""The xthreads API (Table 1 of the paper).

Host programs (running on CPU cores) yield the operation classes defined
here; MTTOP kernels use the ``mttop_*`` helper generators with ``yield from``.
Condition variables, barrier arrays and sense flags are ordinary words in
the process's shared virtual address space — which is the whole point of
CCSVM: synchronisation is just coherent loads, stores and atomics, with no
driver round-trips.

Table 1 mapping:

===============================  ==========================================
Paper API                         This module
===============================  ==========================================
``create_mthread(fn, args, ...)``  :class:`CreateMThread`
CPU ``wait(cond, first, last)``    :class:`WaitCond`
CPU ``signal(cond, first, last)``  :class:`SignalCond`
CPU ``cpu_mttop_barrier(...)``     :class:`CpuMttopBarrier`
MTTOP ``wait`` / ``signal``        :func:`mttop_wait` / :func:`mttop_signal`
MTTOP ``cpu_mttop_barrier``        :func:`mttop_barrier`
MTTOP ``mttop_malloc(size)``       :class:`repro.cores.isa.Malloc` yielded
                                   from an MTTOP thread
===============================  ==========================================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator

from repro.cores.isa import Operation, Store, WaitValue, word_addr

#: Condition-variable states used by wait/signal (arbitrary distinct values).
READY = 1
WAITING_ON_MTTOP = 2
WAITING_ON_CPU = 3

#: Value an MTTOP thread writes into its barrier-array slot on arrival.
BARRIER_ARRIVED = 1


def cond_entry(condition_vaddr: int, thread_id: int) -> int:
    """Address of ``thread_id``'s slot in a condition/barrier array."""
    return word_addr(condition_vaddr, thread_id)


# --------------------------------------------------------------------------- #
# Host-side (CPU) operations
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class CreateMThread(Operation):
    """Spawn MTTOP threads ``first_thread``..``last_thread`` running ``kernel``.

    Equivalent to the paper's ``create_mthread(void* fn, args* fnArgs,
    ThreadID firstThread, ThreadID lastThread)``.  ``kernel`` must be a
    generator function of signature ``kernel(tid, args)`` compiled by the
    xthreads toolchain; ``args`` is passed through untouched (it normally
    holds virtual addresses of shared arrays, exactly like the ``args``
    struct in Figure 4).
    """

    kernel: Callable[..., object]
    args: object
    first_thread: int
    last_thread: int


@dataclass(frozen=True)
class WaitCond(Operation):
    """CPU-side ``wait``: spin until every condition slot equals ``value``.

    The CPU thread polls ``condition[first_thread..last_thread]`` until all
    slots hold ``value`` (``READY`` by default), generating coherent loads
    while it waits — the paper's CPU thread does exactly this over the
    condition-variable array.
    """

    condition_vaddr: int
    first_thread: int
    last_thread: int
    value: int = READY


@dataclass(frozen=True)
class SignalCond(Operation):
    """CPU-side ``signal``: set every condition slot to ``value`` (READY)."""

    condition_vaddr: int
    first_thread: int
    last_thread: int
    value: int = READY


@dataclass(frozen=True)
class CpuMttopBarrier(Operation):
    """CPU side of the global CPU+MTTOP barrier.

    The CPU waits for every MTTOP thread to write its slot in the barrier
    array, then clears the slots and flips the sense word, releasing the
    MTTOP threads spinning on the sense (Table 1).
    """

    barrier_vaddr: int
    sense_vaddr: int
    first_thread: int
    last_thread: int


# --------------------------------------------------------------------------- #
# MTTOP-side helpers (used inside kernels with ``yield from``)
# --------------------------------------------------------------------------- #
def mttop_signal(condition_vaddr: int, thread_id: int,
                 value: int = READY) -> Iterator[Operation]:
    """MTTOP ``signal``: mark this thread's condition slot as ``value``."""
    yield Store(cond_entry(condition_vaddr, thread_id), value)


def mttop_wait(condition_vaddr: int, thread_id: int,
               value: int = READY) -> Iterator[Operation]:
    """MTTOP ``wait``: announce waiting, then spin until signalled.

    Matches Table 1: the MTTOP thread sets its slot to ``WaitingOnCPU`` and
    waits until the CPU changes it to ``Ready``.
    """
    slot = cond_entry(condition_vaddr, thread_id)
    yield Store(slot, WAITING_ON_CPU)
    yield WaitValue(slot, value)


def mttop_barrier(barrier_vaddr: int, sense_vaddr: int, thread_id: int,
                  release_sense: int) -> Iterator[Operation]:
    """MTTOP side of the CPU+MTTOP barrier.

    The thread writes its barrier-array entry and then spins until the CPU
    flips the sense word to ``release_sense``.
    """
    yield Store(cond_entry(barrier_vaddr, thread_id), BARRIER_ARRIVED)
    yield WaitValue(sense_vaddr, release_sense)
