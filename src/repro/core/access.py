"""Per-core memory port — moved to :mod:`repro.mem.port`.

The CCSVM load/store/atomic access path (TLB → walker/fault → MOESI
hierarchy → data) now lives in the unified memory-hierarchy subsystem,
next to the levels both machines are assembled from.  This module keeps
the historical import path working::

    from repro.core.access import CoreMemoryPort
"""

from __future__ import annotations

from repro.mem.port import CoreMemoryPort, MemoryPort, PageFaultHandler

__all__ = ["CoreMemoryPort", "MemoryPort", "PageFaultHandler"]
