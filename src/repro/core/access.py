"""Per-core memory port: the CCSVM load/store/atomic access path.

Every core — CPU or MTTOP — owns one :class:`CoreMemoryPort`.  A memory
operation flows through it exactly as the paper describes (Section 3.2):

1. the virtual address is looked up in the core's private TLB;
2. on a TLB miss the core's hardware page-table walker walks the process
   page table (identified by the CR3 the core was given);
3. if the walk faults, the fault is handled — directly by the OS for a CPU
   core, or forwarded through the MIFD to a CPU core for an MTTOP core;
4. the physical address is presented to the MOESI coherent memory hierarchy
   (L1 → directory/L2 → DRAM), which returns the access latency;
5. the data itself is read from / written to simulated physical memory, so
   programs compute real results.
"""

from __future__ import annotations

from typing import Callable, Optional, Tuple

from repro.coherence.protocol import CoherentMemorySystem
from repro.core.consistency import SequentialConsistencyChecker
from repro.errors import VirtualMemoryError
from repro.memory.physical import PhysicalMemory
from repro.sim.stats import StatsRegistry
from repro.vm.manager import AddressSpace, VirtualMemoryManager
from repro.vm.tlb import TLB
from repro.vm.walker import PageTableWalker

#: Fault handler: ``(port, vaddr, is_write) -> latency_ps``.  CPU ports call
#: straight into the OS; MTTOP ports are wired to the MIFD's fault forwarding.
PageFaultHandler = Callable[["CoreMemoryPort", int, bool], int]


class CoreMemoryPort:
    """The translation + coherence + data path for one core."""

    def __init__(self, node: str, tlb: TLB, walker: PageTableWalker,
                 coherence: CoherentMemorySystem, physical_memory: PhysicalMemory,
                 vm_manager: VirtualMemoryManager,
                 page_fault_handler: Optional[PageFaultHandler] = None,
                 stats: Optional[StatsRegistry] = None,
                 sc_checker: Optional[SequentialConsistencyChecker] = None) -> None:
        self.node = node
        self.tlb = tlb
        self.walker = walker
        self.coherence = coherence
        self.physical_memory = physical_memory
        self.vm_manager = vm_manager
        self.page_fault_handler = page_fault_handler
        self.stats = stats if stats is not None else StatsRegistry()
        self.sc_checker = sc_checker
        self._space: Optional[AddressSpace] = None
        #: Engine time of the issuing core, updated by the core before each
        #: access so SC-checker timestamps are meaningful.
        self.current_time_ps = 0

    # ------------------------------------------------------------------ #
    # Address-space (CR3) management
    # ------------------------------------------------------------------ #
    def set_address_space(self, space: AddressSpace) -> None:
        """Load a process's CR3 into this core (and flush nothing — ASIDs
        are not modelled; runtimes flush explicitly when needed)."""
        self._space = space

    @property
    def address_space(self) -> AddressSpace:
        """The process address space this core currently translates against."""
        if self._space is None:
            raise VirtualMemoryError(
                f"core {self.node} has no address space (CR3 not set)"
            )
        return self._space

    @property
    def cr3(self) -> int:
        """The physical root of the current page table."""
        return self.address_space.cr3

    @property
    def has_address_space(self) -> bool:
        """True once :meth:`set_address_space` has been called."""
        return self._space is not None

    # ------------------------------------------------------------------ #
    # Translation
    # ------------------------------------------------------------------ #
    def _default_fault_handler(self, vaddr: int, is_write: bool) -> int:
        return self.vm_manager.handle_page_fault(self.address_space, vaddr,
                                                 is_write=is_write)

    def translate(self, vaddr: int, is_write: bool) -> Tuple[int, int]:
        """Translate ``vaddr``; return ``(paddr, latency_ps)``.

        Handles TLB hits, hardware walks, page faults (possibly forwarded to
        a CPU through the MIFD) and TLB refills.
        """
        entry = self.tlb.lookup(vaddr)
        if entry is not None:
            return entry.physical_address(vaddr), 0

        space = self.address_space
        latency = 0
        walk = self.walker.walk(space.page_table, vaddr)
        latency += walk.latency_ps
        if walk.page_fault:
            if self.page_fault_handler is not None:
                latency += self.page_fault_handler(self, vaddr, is_write)
            else:
                latency += self._default_fault_handler(vaddr, is_write)
            self.stats.add(f"{self.node}.page_faults")
            # The faulting access retries its walk after the handler returns.
            walk = self.walker.walk(space.page_table, vaddr)
            latency += walk.latency_ps
            if walk.page_fault:
                raise VirtualMemoryError(
                    f"page fault at {vaddr:#x} persists after handling"
                )
        translation = walk.translation
        assert translation is not None
        self.tlb.insert(translation.vpn, translation.frame_address,
                        translation.writable)
        return translation.physical_address(vaddr), latency

    # ------------------------------------------------------------------ #
    # Data access
    # ------------------------------------------------------------------ #
    def load(self, vaddr: int) -> Tuple[int, int]:
        """Coherent load of the word at ``vaddr``; returns ``(value, latency_ps)``."""
        paddr, translate_ps = self.translate(vaddr, is_write=False)
        result = self.coherence.load(self.node, paddr, self.current_time_ps)
        value = self.physical_memory.read_word(paddr)
        if self.sc_checker is not None:
            self.sc_checker.record_load(self.node, paddr, value, self.current_time_ps)
        return value, translate_ps + result.latency_ps

    def store(self, vaddr: int, value: int) -> int:
        """Coherent store of ``value`` to ``vaddr``; returns the latency."""
        paddr, translate_ps = self.translate(vaddr, is_write=True)
        result = self.coherence.store(self.node, paddr, self.current_time_ps)
        self.physical_memory.write_word(paddr, value)
        if self.sc_checker is not None:
            self.sc_checker.record_store(self.node, paddr, value, self.current_time_ps)
        return translate_ps + result.latency_ps

    def atomic_add(self, vaddr: int, delta: int) -> Tuple[int, int]:
        """Atomic fetch-and-add; returns ``(old_value, latency_ps)``.

        Performed at the L1 after obtaining exclusive coherence permission,
        as the paper's MTTOP cores do (Section 3.2.4).
        """
        paddr, translate_ps = self.translate(vaddr, is_write=True)
        result = self.coherence.atomic(self.node, paddr, self.current_time_ps)
        old = self.physical_memory.read_word(paddr)
        new = old + delta
        self.physical_memory.write_word(paddr, new)
        if self.sc_checker is not None:
            self.sc_checker.record_atomic(self.node, paddr, old, new,
                                          self.current_time_ps)
        return old, translate_ps + result.latency_ps

    def atomic_cas(self, vaddr: int, expected: int, new: int) -> Tuple[int, int]:
        """Atomic compare-and-swap; returns ``(old_value, latency_ps)``."""
        paddr, translate_ps = self.translate(vaddr, is_write=True)
        result = self.coherence.atomic(self.node, paddr, self.current_time_ps)
        old = self.physical_memory.read_word(paddr)
        stored = new if old == expected else old
        self.physical_memory.write_word(paddr, stored)
        if self.sc_checker is not None:
            self.sc_checker.record_atomic(self.node, paddr, old, stored,
                                          self.current_time_ps)
        return old, translate_ps + result.latency_ps
