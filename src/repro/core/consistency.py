"""Sequential-consistency checking.

The CCSVM chip provides sequential consistency (Section 3.2.3): all loads and
stores appear to execute in a single total order that respects each thread's
program order, and every load returns the value of the most recent store to
the same address in that order.

The simulator produces such a total order by construction (the engine steps
one memory operation at a time, in global time order), but "by construction"
claims deserve a checker: this module records the observed order and verifies
both value correctness and per-node program-order monotonicity.  It is
enabled in tests and available to users via ``CCSVMChip(..., check_sc=True)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import ConsistencyViolationError


@dataclass(frozen=True)
class MemoryEvent:
    """One load or store in the observed global order."""

    index: int
    node: str
    is_store: bool
    paddr: int
    value: int
    time_ps: int


@dataclass
class SequentialConsistencyChecker:
    """Records the global memory order and checks SC invariants on the fly.

    Parameters
    ----------
    keep_history:
        When True the full event list is retained (useful for debugging and
        for tests that inspect the order); otherwise only the per-address
        last-written value and per-node last timestamp are kept, so the
        checker can run over arbitrarily long executions.
    """

    keep_history: bool = False
    _last_value: Dict[int, int] = field(default_factory=dict)
    _last_writer: Dict[int, str] = field(default_factory=dict)
    _last_time_by_node: Dict[int, int] = field(default_factory=dict, repr=False)
    _node_times: Dict[str, int] = field(default_factory=dict)
    _events: List[MemoryEvent] = field(default_factory=list)
    _count: int = 0

    # ------------------------------------------------------------------ #
    # Recording
    # ------------------------------------------------------------------ #
    def _record(self, node: str, is_store: bool, paddr: int, value: int,
                time_ps: int) -> None:
        previous = self._node_times.get(node)
        if previous is not None and time_ps < previous:
            raise ConsistencyViolationError(
                f"program order violated at {node}: operation at {time_ps} ps "
                f"recorded after one at {previous} ps"
            )
        self._node_times[node] = time_ps
        if self.keep_history:
            self._events.append(MemoryEvent(index=self._count, node=node,
                                            is_store=is_store, paddr=paddr,
                                            value=value, time_ps=time_ps))
        self._count += 1

    def record_store(self, node: str, paddr: int, value: int, time_ps: int) -> None:
        """Record a store by ``node`` in the global order."""
        self._record(node, True, paddr, value, time_ps)
        self._last_value[paddr] = value
        self._last_writer[paddr] = node

    def record_load(self, node: str, paddr: int, value: int, time_ps: int) -> None:
        """Record a load and verify it returns the most recent store's value."""
        self._record(node, False, paddr, value, time_ps)
        expected = self._last_value.get(paddr, 0)
        if value != expected:
            writer = self._last_writer.get(paddr, "<initial zero>")
            raise ConsistencyViolationError(
                f"load by {node} of {paddr:#x} returned {value}, but the most "
                f"recent store (by {writer}) wrote {expected}"
            )

    def record_atomic(self, node: str, paddr: int, old_value: int,
                      new_value: int, time_ps: int) -> None:
        """Record an atomic read-modify-write (a load and a store at one point)."""
        self.record_load(node, paddr, old_value, time_ps)
        self.record_store(node, paddr, new_value, time_ps)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def events_recorded(self) -> int:
        """Total number of loads and stores recorded."""
        return self._count

    @property
    def history(self) -> List[MemoryEvent]:
        """The recorded events (empty unless ``keep_history`` is set)."""
        return list(self._events)

    def last_value(self, paddr: int) -> Optional[int]:
        """The most recently stored value at ``paddr`` (None if never stored)."""
        return self._last_value.get(paddr)

    def verify_total_order(self) -> None:
        """Re-verify the retained history end to end (requires history).

        Replays every event: checks per-node program order and that each
        load observes the latest preceding store.  Raises
        :class:`ConsistencyViolationError` on the first violation.
        """
        values: Dict[int, int] = {}
        node_times: Dict[str, int] = {}
        for event in self._events:
            previous = node_times.get(event.node)
            if previous is not None and event.time_ps < previous:
                raise ConsistencyViolationError(
                    f"history: program order violated at {event.node}"
                )
            node_times[event.node] = event.time_ps
            if event.is_store:
                values[event.paddr] = event.value
            else:
                expected = values.get(event.paddr, 0)
                if event.value != expected:
                    raise ConsistencyViolationError(
                        f"history: load #{event.index} by {event.node} saw "
                        f"{event.value}, expected {expected}"
                    )
