"""Exception hierarchy for the repro simulator.

Every error raised by the package derives from :class:`ReproError`, so callers
can catch a single base class.  More specific subclasses are used by the
memory system, the virtual-memory subsystem, the coherence protocol, the MIFD
and the runtimes, both to make failures easy to diagnose and to give tests a
precise target to assert on.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the ``repro`` package."""


class ConfigurationError(ReproError):
    """A system configuration is internally inconsistent or unsupported."""


class SimulationError(ReproError):
    """The simulation engine was used incorrectly or reached a bad state."""


class MemoryError_(ReproError):
    """Base class for physical-memory errors.

    Named with a trailing underscore to avoid shadowing the builtin
    :class:`MemoryError`.
    """


class OutOfPhysicalMemoryError(MemoryError_):
    """The frame allocator has no free frames left."""


class UnmappedAddressError(MemoryError_):
    """A physical access touched an address that no frame backs."""


class AlignmentError(MemoryError_):
    """An access straddled a boundary it is not allowed to straddle."""


class VirtualMemoryError(ReproError):
    """Base class for virtual-memory errors."""


class PageFaultError(VirtualMemoryError):
    """A translation failed and could not be repaired (true segfault)."""

    def __init__(self, vaddr: int, message: str = "") -> None:
        detail = message or f"unhandled page fault at virtual address {vaddr:#x}"
        super().__init__(detail)
        self.vaddr = vaddr


class ProtectionFaultError(VirtualMemoryError):
    """An access violated the permissions of a mapped page."""

    def __init__(self, vaddr: int, access: str) -> None:
        super().__init__(f"protection fault: {access} access to {vaddr:#x} not permitted")
        self.vaddr = vaddr
        self.access = access


class TLBError(VirtualMemoryError):
    """The TLB was misused (e.g. inserting an unaligned translation)."""


class CacheError(ReproError):
    """A cache was configured or used incorrectly."""


class CoherenceError(ReproError):
    """The coherence protocol reached an illegal state.

    Raised, for example, when the single-writer/multiple-reader invariant
    would be violated or a directory receives a message it cannot handle.
    """


class ConsistencyViolationError(ReproError):
    """The sequential-consistency checker observed an illegal load value."""


class InterconnectError(ReproError):
    """A network was asked to route between nodes it does not connect."""


class MIFDError(ReproError):
    """The MTTOP interface device rejected a request."""


class InsufficientThreadContextsError(MIFDError):
    """A task asked for more MTTOP thread contexts than exist on the chip.

    Mirrors the paper's MIFD behaviour of writing an error register when a
    task that requires global synchronisation cannot be fully scheduled.
    """


class RuntimeModelError(ReproError):
    """An xthreads / OpenCL / pthreads runtime was used incorrectly."""


class KernelProgramError(RuntimeModelError):
    """A kernel program yielded an operation the interpreter cannot handle."""


class DeadlockError(RuntimeModelError):
    """The engine detected that no agent can make progress."""
