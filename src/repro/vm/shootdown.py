"""TLB shootdown for a chip with CPU and MTTOP cores.

In an all-CPU chip a core that changes a translation interrupts the other
cores so they invalidate the stale entry from their TLBs.  The paper extends
this to MTTOP cores conservatively: the initiating CPU signals every MTTOP
TLB to *flush completely*, because selective invalidation support on the
MTTOP is extra hardware the strawman design avoids (Section 3.2.1).  Both the
conservative flush policy and the selective-invalidation alternative are
implemented so an ablation can quantify the difference.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.sim.clock import ns_to_ps
from repro.sim.stats import StatsRegistry
from repro.vm.tlb import TLB

#: Cost of delivering one inter-processor interrupt and running the small
#: invalidation handler on the receiving core.
DEFAULT_IPI_NS = 500.0


class ShootdownPolicy(enum.Enum):
    """How MTTOP TLBs are brought up to date during a shootdown."""

    FLUSH_ALL = "flush_all"        #: the paper's conservative policy
    SELECTIVE = "selective"        #: invalidate only the affected page


@dataclass(frozen=True)
class ShootdownResult:
    """Accounting for one shootdown operation."""

    pages: int
    cpu_tlbs_signalled: int
    mttop_tlbs_signalled: int
    entries_dropped: int
    latency_ps: int


class TLBShootdownController:
    """Coordinates TLB shootdowns across every core's TLB.

    The controller is owned by the chip's OS model; cores register their
    TLBs at construction time.  A shootdown is synchronous: the initiating
    CPU waits for every target to acknowledge, so the returned latency is
    the serial cost of one IPI round plus the local invalidations.
    """

    def __init__(self, stats: Optional[StatsRegistry] = None,
                 policy: ShootdownPolicy = ShootdownPolicy.FLUSH_ALL,
                 ipi_ns: float = DEFAULT_IPI_NS) -> None:
        self.stats = stats if stats is not None else StatsRegistry()
        self.policy = policy
        self.ipi_ps = ns_to_ps(ipi_ns)
        self._cpu_tlbs: List[TLB] = []
        self._mttop_tlbs: List[TLB] = []

    # ------------------------------------------------------------------ #
    # Registration
    # ------------------------------------------------------------------ #
    def register_cpu_tlb(self, tlb: TLB) -> None:
        """Register the TLB of a CPU core."""
        self._cpu_tlbs.append(tlb)

    def register_mttop_tlb(self, tlb: TLB) -> None:
        """Register the TLB of an MTTOP core."""
        self._mttop_tlbs.append(tlb)

    @property
    def cpu_tlb_count(self) -> int:
        """Number of registered CPU TLBs."""
        return len(self._cpu_tlbs)

    @property
    def mttop_tlb_count(self) -> int:
        """Number of registered MTTOP TLBs."""
        return len(self._mttop_tlbs)

    # ------------------------------------------------------------------ #
    # Shootdown
    # ------------------------------------------------------------------ #
    def shootdown(self, vaddrs: Sequence[int],
                  initiator_tlb: Optional[TLB] = None) -> ShootdownResult:
        """Run a shootdown for the pages containing ``vaddrs``.

        ``initiator_tlb`` (the TLB of the CPU core that changed the
        translations) is invalidated locally without an IPI.  Every other
        CPU TLB receives a selective invalidation per page; MTTOP TLBs are
        handled according to the configured policy.  Returns the accounting
        record, whose ``latency_ps`` the caller should charge to the
        initiating core.
        """
        pages = list(vaddrs)
        self.stats.add("shootdown.operations")
        self.stats.add("shootdown.pages", len(pages))

        dropped = 0
        latency = 0

        if initiator_tlb is not None:
            for vaddr in pages:
                if initiator_tlb.invalidate(vaddr):
                    dropped += 1

        cpu_targets = [tlb for tlb in self._cpu_tlbs if tlb is not initiator_tlb]
        for tlb in cpu_targets:
            latency += self.ipi_ps
            for vaddr in pages:
                if tlb.invalidate(vaddr):
                    dropped += 1
        self.stats.add("shootdown.cpu_ipis", len(cpu_targets))

        for tlb in self._mttop_tlbs:
            latency += self.ipi_ps
            if self.policy is ShootdownPolicy.FLUSH_ALL:
                dropped += tlb.flush()
            else:
                for vaddr in pages:
                    if tlb.invalidate(vaddr):
                        dropped += 1
        self.stats.add("shootdown.mttop_signals", len(self._mttop_tlbs))
        self.stats.add("shootdown.entries_dropped", dropped)
        self.stats.add("shootdown.latency_ps", latency)

        return ShootdownResult(
            pages=len(pages),
            cpu_tlbs_signalled=len(cpu_targets),
            mttop_tlbs_signalled=len(self._mttop_tlbs),
            entries_dropped=dropped,
            latency_ps=latency,
        )
