"""Translation lookaside buffers.

Both the CPU cores and the MTTOP cores of the CCSVM chip have a private,
64-entry, fully-associative TLB (Table 2).  The paper's design keeps MTTOP
TLBs coherent conservatively: when a CPU core performs a shootdown, MTTOP
TLBs are flushed entirely rather than invalidated selectively
(Section 3.2.1); both operations are provided here so the ablation benchmark
can compare them.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.errors import TLBError
from repro.memory.address import PAGE_SIZE, is_power_of_two
from repro.sim import columnar
from repro.sim.stats import StatsRegistry

#: One contiguous run of batch operations falling on the same page:
#: ``(first_index, one_past_last_index, vpn)``.
PageRun = Tuple[int, int, int]


@dataclass(frozen=True)
class TLBEntry:
    """A cached virtual-to-physical translation."""

    vpn: int
    frame_address: int
    writable: bool

    def physical_address(self, vaddr: int) -> int:
        """Apply the page offset of ``vaddr`` to the cached frame."""
        return self.frame_address + (vaddr % PAGE_SIZE)


class TLB:
    """A fully-associative TLB with true-LRU replacement.

    Parameters
    ----------
    entries:
        Capacity in translations (64 for every core in Table 2).
    stats / name:
        Hit/miss/flush counters are recorded as ``<name>.hits`` etc.
    """

    def __init__(self, entries: int = 64, stats: Optional[StatsRegistry] = None,
                 name: str = "tlb", page_size: int = PAGE_SIZE) -> None:
        if entries <= 0:
            raise TLBError("a TLB must have at least one entry")
        self.capacity = entries
        self.page_size = page_size
        self.name = name
        self.stats = stats if stats is not None else StatsRegistry()
        self._entries: "OrderedDict[int, TLBEntry]" = OrderedDict()
        # Precomputed counter names: lookup() runs once per simulated memory
        # access, so per-call f-string construction is measurable.
        self._hits_stat = f"{name}.hits"
        self._misses_stat = f"{name}.misses"
        # The columnar probe uses shifts for vpn extraction and delegates
        # page-offset math to TLBEntry.physical_address's PAGE_SIZE, so it
        # only engages for the standard power-of-two page geometry.
        self.batch_shift: Optional[int] = (
            page_size.bit_length() - 1
            if is_power_of_two(page_size) and page_size == PAGE_SIZE else None
        )

    # ------------------------------------------------------------------ #
    # Lookup / insert
    # ------------------------------------------------------------------ #
    def lookup(self, vaddr: int) -> Optional[TLBEntry]:
        """Return the cached translation for ``vaddr``'s page, if present."""
        vpn = vaddr // self.page_size
        entry = self._entries.get(vpn)
        if entry is None:
            self.stats.add(self._misses_stat)
            return None
        self._entries.move_to_end(vpn)
        self.stats.add(self._hits_stat)
        return entry

    def insert(self, vpn: int, frame_address: int, writable: bool) -> None:
        """Install a translation, evicting the LRU entry if full."""
        if frame_address % self.page_size != 0:
            raise TLBError(f"frame address {frame_address:#x} is not page aligned")
        if vpn in self._entries:
            self._entries.move_to_end(vpn)
        elif len(self._entries) >= self.capacity:
            self._entries.popitem(last=False)
            self.stats.add(f"{self.name}.evictions")
        self._entries[vpn] = TLBEntry(vpn=vpn, frame_address=frame_address, writable=writable)
        self.stats.add(f"{self.name}.fills")

    # ------------------------------------------------------------------ #
    # Columnar probe (batched access engine)
    # ------------------------------------------------------------------ #
    def translate_batch(self, vaddrs: Sequence[int], lo: int,
                        hi: int) -> Tuple[int, List[PageRun], List[int]]:
        """Translate the maximal TLB-hit prefix of ``vaddrs[lo:hi]``.

        Pure gather: no LRU update and no counters — the caller commits
        exactly the prefix it ends up executing via :meth:`commit_batch`,
        and any op past the returned ``stop`` retries through the scalar
        :meth:`lookup`, which records its own hit or miss.  Returns
        ``(stop, page_runs, paddrs)`` where ``paddrs[i]`` translates
        ``vaddrs[lo + i]`` for ``lo <= lo + i < stop``.  ``paddrs`` is
        whatever sequence the columnar kernel produces (an ndarray under
        numpy, a list otherwise) — consumers index and slice it, they
        must not assume a concrete type.
        """
        shift = self.batch_shift
        if shift is None:
            raise TLBError(f"{self.name}: columnar probe needs standard pages")
        keys = columnar.shift_keys(vaddrs, lo, hi, shift)
        starts = columnar.run_starts(keys)
        # Native ints once per batch: per-run ndarray indexing and
        # numpy-scalar hashing are several times a dict probe each.
        keys = keys.tolist()
        entries = self._entries
        runs: List[PageRun] = []
        parts: List[Sequence[int]] = []
        count = hi - lo
        for index, run_lo in enumerate(starts):
            run_hi = starts[index + 1] if index + 1 < len(starts) else count
            vpn = keys[run_lo]
            entry = entries.get(vpn)
            if entry is None:
                paddrs = columnar.concat_runs(parts) if parts else []
                return lo + run_lo, runs, paddrs
            delta = entry.frame_address - (vpn << shift)
            parts.append(columnar.add_delta(vaddrs, lo + run_lo,
                                            lo + run_hi, delta))
            runs.append((lo + run_lo, lo + run_hi, vpn))
        return hi, runs, (columnar.concat_runs(parts) if parts else [])

    def commit_batch(self, runs: Sequence[PageRun], lo: int, stop: int,
                     first: int = 0) -> None:
        """Apply LRU updates and hit counters for ops ``[lo, stop)``.

        One ``move_to_end`` per page run replaces the scalar path's
        per-access move; consecutive moves of the same page are idempotent
        for recency order, so the final LRU state is identical.  ``first``
        lets a caller reusing one translation across several commits skip
        runs wholly before ``lo`` (re-moving those would put pages ahead
        of ones the scalar sequence touched later).
        """
        if stop <= lo:
            return
        move = self._entries.move_to_end
        for index in range(first, len(runs)):
            run_lo, _run_hi, vpn = runs[index]
            if run_lo >= stop:
                break
            move(vpn)
        self.stats.add(self._hits_stat, stop - lo)

    # ------------------------------------------------------------------ #
    # Coherence operations
    # ------------------------------------------------------------------ #
    def invalidate(self, vaddr: int) -> bool:
        """Drop the translation for ``vaddr``'s page; return True if present.

        Only an actual drop counts as ``<name>.invalidations`` — a
        shootdown reaching a TLB that never cached the page records
        ``<name>.invalidation_misses`` instead, so shootdown accounting
        reflects entries really lost rather than pages merely signalled.
        """
        vpn = vaddr // self.page_size
        present = self._entries.pop(vpn, None) is not None
        if present:
            self.stats.add(f"{self.name}.invalidations")
        else:
            self.stats.add(f"{self.name}.invalidation_misses")
        return present

    def flush(self) -> int:
        """Drop every translation; return how many were dropped."""
        dropped = len(self._entries)
        self._entries.clear()
        self.stats.add(f"{self.name}.flushes")
        self.stats.add(f"{self.name}.flushed_entries", dropped)
        return dropped

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, vaddr: int) -> bool:
        return (vaddr // self.page_size) in self._entries

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups that hit so far (0.0 when no lookups)."""
        hits = self.stats.get(f"{self.name}.hits")
        misses = self.stats.get(f"{self.name}.misses")
        total = hits + misses
        return hits / total if total else 0.0
