"""Operating-system view of virtual memory: address spaces and demand paging.

The paper's CCSVM chip runs unmodified Linux on its CPU cores; the pieces of
the OS the evaluation actually exercises are the virtual-memory side —
creating a process address space, ``malloc``, demand paging, handling page
faults (including faults forwarded from MTTOP cores through the MIFD) and
initiating TLB shootdowns.  This module models exactly that slice.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import PageFaultError, ProtectionFaultError, VirtualMemoryError
from repro.memory.address import PAGE_SIZE, WORD_SIZE, align_up, page_address
from repro.memory.physical import FrameAllocator, PhysicalMemory
from repro.sim.clock import ns_to_ps
from repro.sim.stats import StatsRegistry
from repro.vm.page_table import PageTable, TranslationResult

#: Default virtual address where process heaps start.  Arbitrary but fixed so
#: traces are reproducible; well above the (unused) null and text regions.
DEFAULT_HEAP_BASE = 0x0000_1000_0000

#: Cost of the OS page-fault handler itself (trap, allocate, map, return),
#: excluding memory-system latencies.  Roughly a few microseconds, matching
#: a minor-fault path on the era's Linux kernels.
DEFAULT_FAULT_HANDLER_NS = 2_000.0


@dataclass
class Allocation:
    """One live heap allocation inside an address space."""

    vaddr: int
    size: int
    label: Optional[str] = None
    freed: bool = False


@dataclass
class AddressSpace:
    """A process's virtual address space (one per simulated process).

    Threads of the same process — whether they run on CPU cores or MTTOP
    cores — share one ``AddressSpace``; its ``page_table.root_paddr`` is the
    value loaded into each participating core's CR3 register.
    """

    pid: int
    page_table: PageTable
    heap_base: int = DEFAULT_HEAP_BASE
    heap_top: int = field(default=0)
    allocations: List[Allocation] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.heap_top == 0:
            self.heap_top = self.heap_base

    @property
    def cr3(self) -> int:
        """Physical root of the page table (the value a core loads into CR3)."""
        return self.page_table.root_paddr

    def bytes_allocated(self) -> int:
        """Total bytes of live (not-freed) allocations."""
        return sum(a.size for a in self.allocations if not a.freed)


class VirtualMemoryManager:
    """Allocates address spaces and services page faults.

    Parameters
    ----------
    memory / frames:
        The machine's physical memory and frame allocator.
    eager_mapping:
        When True, ``malloc`` maps pages immediately instead of on first
        fault.  The CCSVM experiments use demand paging (the default)
        because MTTOP-originated page faults are part of what the paper
        evaluates.
    """

    def __init__(self, memory: PhysicalMemory, frames: FrameAllocator,
                 stats: Optional[StatsRegistry] = None,
                 eager_mapping: bool = False,
                 fault_handler_ns: float = DEFAULT_FAULT_HANDLER_NS) -> None:
        self.memory = memory
        self.frames = frames
        self.stats = stats if stats is not None else StatsRegistry()
        self.eager_mapping = eager_mapping
        self.fault_handler_ps = ns_to_ps(fault_handler_ns)
        self._next_pid = 1
        self._spaces: Dict[int, AddressSpace] = {}

    # ------------------------------------------------------------------ #
    # Address-space lifecycle
    # ------------------------------------------------------------------ #
    def create_address_space(self) -> AddressSpace:
        """Create a new process address space with an empty page table."""
        page_table = PageTable(self.memory, self.frames)
        space = AddressSpace(pid=self._next_pid, page_table=page_table)
        self._spaces[space.pid] = space
        self._next_pid += 1
        self.stats.add("os.address_spaces_created")
        return space

    def address_space(self, pid: int) -> AddressSpace:
        """Look up an address space by pid."""
        try:
            return self._spaces[pid]
        except KeyError:
            raise VirtualMemoryError(f"no address space with pid {pid}") from None

    def space_for_cr3(self, cr3: int) -> AddressSpace:
        """Find the address space whose page table is rooted at ``cr3``.

        This mirrors how the OS page-fault handler identifies the faulting
        process when the MIFD forwards an MTTOP page fault together with the
        MTTOP core's CR3 value (Section 3.2.1).
        """
        for space in self._spaces.values():
            if space.cr3 == cr3:
                return space
        raise VirtualMemoryError(f"no address space has CR3 {cr3:#x}")

    # ------------------------------------------------------------------ #
    # Allocation
    # ------------------------------------------------------------------ #
    def malloc(self, space: AddressSpace, size: int,
               label: Optional[str] = None) -> int:
        """Allocate ``size`` bytes in ``space``'s heap and return its address.

        The returned address is word aligned.  Pages are mapped lazily (on
        first touch) unless the manager was built with ``eager_mapping``.
        """
        if size <= 0:
            raise VirtualMemoryError(f"malloc size must be positive, got {size}")
        vaddr = align_up(space.heap_top, WORD_SIZE)
        space.heap_top = vaddr + size
        space.allocations.append(Allocation(vaddr=vaddr, size=size, label=label))
        self.stats.add("os.mallocs")
        self.stats.add("os.bytes_allocated", size)
        if self.eager_mapping:
            for page in range(page_address(vaddr), space.heap_top, PAGE_SIZE):
                if space.page_table.translate(page) is None:
                    self._map_new_frame(space, page)
        return vaddr

    def free(self, space: AddressSpace, vaddr: int) -> None:
        """Mark the allocation starting at ``vaddr`` as freed.

        Like a user-level ``free``, this does not unmap pages — pages are
        reclaimed only by :meth:`unmap_range`, which is the operation that
        requires TLB shootdown.
        """
        for allocation in space.allocations:
            if allocation.vaddr == vaddr and not allocation.freed:
                allocation.freed = True
                self.stats.add("os.frees")
                return
        raise VirtualMemoryError(f"free of unknown or already-freed address {vaddr:#x}")

    def unmap_range(self, space: AddressSpace, vaddr: int, size: int) -> List[int]:
        """Unmap every mapped page in ``[vaddr, vaddr+size)``.

        Returns the list of unmapped page base addresses; the caller (the
        chip's OS model) is responsible for running the TLB-shootdown
        protocol over them and freeing the frames.
        """
        unmapped: List[int] = []
        end = vaddr + size
        for page in range(page_address(vaddr), end, PAGE_SIZE):
            translation = space.page_table.translate(page)
            if translation is None:
                continue
            frame = space.page_table.unmap(page)
            self.frames.free(frame)
            unmapped.append(page)
        self.stats.add("os.pages_unmapped", len(unmapped))
        return unmapped

    # ------------------------------------------------------------------ #
    # Fault handling
    # ------------------------------------------------------------------ #
    def _map_new_frame(self, space: AddressSpace, vaddr: int) -> TranslationResult:
        frame = self.frames.allocate()
        self.memory.zero_page(frame)
        space.page_table.map(vaddr, frame, writable=True)
        self.stats.add("os.pages_mapped")
        translation = space.page_table.translate(vaddr)
        assert translation is not None
        return translation

    def handle_page_fault(self, space: AddressSpace, vaddr: int,
                          is_write: bool = False,
                          from_mttop: bool = False) -> int:
        """Service a page fault on ``vaddr``; return handler latency in ps.

        A fault on an address inside a live allocation (or the heap region
        generally) is a *minor* fault: a zeroed frame is allocated and
        mapped.  A fault outside any allocation is a true segmentation
        fault and raises :class:`PageFaultError`.
        """
        self.stats.add("os.page_faults")
        if from_mttop:
            self.stats.add("os.page_faults_from_mttop")
        if is_write:
            self.stats.add("os.page_faults_write")

        if not self._address_is_valid(space, vaddr):
            raise PageFaultError(vaddr)

        existing = space.page_table.translate(vaddr)
        if existing is not None:
            if is_write and not existing.writable:
                raise ProtectionFaultError(vaddr, "write")
            # Spurious fault (e.g. raced with another core's fault on the
            # same page): nothing to do beyond the handler cost.
            self.stats.add("os.spurious_faults")
            return self.fault_handler_ps

        self._map_new_frame(space, vaddr)
        return self.fault_handler_ps

    def _address_is_valid(self, space: AddressSpace, vaddr: int) -> bool:
        return space.heap_base <= vaddr < max(space.heap_top, space.heap_base)

    # ------------------------------------------------------------------ #
    # Convenience used by runtimes and tests
    # ------------------------------------------------------------------ #
    def touch(self, space: AddressSpace, vaddr: int, size: int) -> None:
        """Ensure every page of ``[vaddr, vaddr+size)`` is mapped (no timing)."""
        for page in range(page_address(vaddr), vaddr + size, PAGE_SIZE):
            if space.page_table.translate(page) is None:
                self._map_new_frame(space, page)

    def translate_or_fault(self, space: AddressSpace, vaddr: int,
                           is_write: bool = False) -> TranslationResult:
        """Translate ``vaddr``, demand-mapping it if needed (no timing)."""
        translation = space.page_table.translate(vaddr)
        if translation is None:
            self.handle_page_fault(space, vaddr, is_write=is_write)
            translation = space.page_table.translate(vaddr)
            assert translation is not None
        return translation
