"""x86-style 4-level page tables stored in simulated physical memory.

The page table is a radix tree with 9 bits of virtual address per level and
4 KiB leaf pages, exactly like x86-64 long mode.  Table nodes are real pages
allocated from the machine's frame allocator and their entries are stored in
the simulated :class:`~repro.memory.physical.PhysicalMemory`, so a hardware
page-table walk performs real (and therefore countable/chargeable) memory
reads.

Only the mechanisms needed by the paper are modelled: present/writable bits,
mapping, unmapping and permission changes.  Accessed/dirty bit maintenance is
not modelled because the evaluation never relies on it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple

from repro.errors import AlignmentError, PageFaultError
from repro.memory.address import PAGE_SIZE, WORD_SIZE, is_aligned
from repro.memory.physical import FrameAllocator, PhysicalMemory

#: Number of address bits translated per page-table level.
BITS_PER_LEVEL = 9

#: Number of levels in the radix tree (PML4, PDPT, PD, PT in x86 terms).
LEVELS = 4

#: Entries per page-table node.
ENTRIES_PER_NODE = 1 << BITS_PER_LEVEL

#: Number of virtual address bits covered by the table (48-bit canonical VA).
VIRTUAL_ADDRESS_BITS = 12 + BITS_PER_LEVEL * LEVELS

# Entry flag bits.
FLAG_PRESENT = 1 << 0
FLAG_WRITABLE = 1 << 1
ADDRESS_MASK = ~0xFFF


@dataclass(frozen=True)
class PageTableEntry:
    """Decoded view of one 64-bit page-table entry."""

    raw: int

    @property
    def present(self) -> bool:
        """True when the entry maps a next-level node or a frame."""
        return bool(self.raw & FLAG_PRESENT)

    @property
    def writable(self) -> bool:
        """True when writes through this entry are permitted."""
        return bool(self.raw & FLAG_WRITABLE)

    @property
    def frame_address(self) -> int:
        """Physical address of the next-level node or mapped frame."""
        return self.raw & ADDRESS_MASK & ((1 << 52) - 1)

    @staticmethod
    def encode(frame_address: int, present: bool = True, writable: bool = True) -> int:
        """Build the raw 64-bit representation of an entry."""
        if not is_aligned(frame_address, PAGE_SIZE):
            raise AlignmentError(f"frame address {frame_address:#x} is not page aligned")
        raw = frame_address
        if present:
            raw |= FLAG_PRESENT
        if writable:
            raw |= FLAG_WRITABLE
        return raw


@dataclass(frozen=True)
class TranslationResult:
    """Outcome of a successful translation."""

    vpn: int
    frame_address: int
    writable: bool

    def physical_address(self, vaddr: int) -> int:
        """Apply the page offset of ``vaddr`` to the mapped frame."""
        return self.frame_address + (vaddr % PAGE_SIZE)


def level_index(vaddr: int, level: int) -> int:
    """Return the index into the ``level``-th table node for ``vaddr``.

    Level 0 is the root (PML4); level ``LEVELS - 1`` is the leaf table.
    """
    shift = 12 + BITS_PER_LEVEL * (LEVELS - 1 - level)
    return (vaddr >> shift) & (ENTRIES_PER_NODE - 1)


class PageTable:
    """One process's page table, rooted at a CR3 physical address."""

    def __init__(self, memory: PhysicalMemory, frames: FrameAllocator) -> None:
        self._memory = memory
        self._frames = frames
        self.root_paddr = self._allocate_node()
        #: Number of page-table nodes (including the root) currently allocated.
        self.node_count = 1
        #: Number of leaf mappings currently installed.
        self.mapped_pages = 0

    # ------------------------------------------------------------------ #
    # Node helpers
    # ------------------------------------------------------------------ #
    def _allocate_node(self) -> int:
        frame = self._frames.allocate()
        self._memory.zero_page(frame)
        return frame

    def _entry_paddr(self, node_paddr: int, index: int) -> int:
        return node_paddr + index * WORD_SIZE

    def _read_entry(self, node_paddr: int, index: int) -> PageTableEntry:
        raw = self._memory.read_unsigned(self._entry_paddr(node_paddr, index))
        return PageTableEntry(raw)

    def _write_entry(self, node_paddr: int, index: int, raw: int) -> None:
        self._memory.write_word(self._entry_paddr(node_paddr, index), raw)

    # ------------------------------------------------------------------ #
    # Mapping API (used by the OS model)
    # ------------------------------------------------------------------ #
    def map(self, vaddr: int, frame_address: int, writable: bool = True) -> None:
        """Install a translation from the page containing ``vaddr`` to a frame."""
        if not is_aligned(frame_address, PAGE_SIZE):
            raise AlignmentError(f"frame address {frame_address:#x} is not page aligned")
        node = self.root_paddr
        for level in range(LEVELS - 1):
            index = level_index(vaddr, level)
            entry = self._read_entry(node, index)
            if not entry.present:
                child = self._allocate_node()
                self.node_count += 1
                self._write_entry(node, index, PageTableEntry.encode(child))
                node = child
            else:
                node = entry.frame_address
        leaf_index = level_index(vaddr, LEVELS - 1)
        existing = self._read_entry(node, leaf_index)
        if not existing.present:
            self.mapped_pages += 1
        self._write_entry(node, leaf_index,
                          PageTableEntry.encode(frame_address, writable=writable))

    def unmap(self, vaddr: int) -> int:
        """Remove the translation for the page containing ``vaddr``.

        Returns the frame address the page was mapped to so the caller can
        free it.  Raises :class:`PageFaultError` if the page was not mapped.
        Intermediate nodes are intentionally not reclaimed (real OSes rarely
        bother either, and it keeps the model simple).
        """
        node = self.root_paddr
        for level in range(LEVELS - 1):
            entry = self._read_entry(node, level_index(vaddr, level))
            if not entry.present:
                raise PageFaultError(vaddr, f"unmap of unmapped address {vaddr:#x}")
            node = entry.frame_address
        leaf_index = level_index(vaddr, LEVELS - 1)
        entry = self._read_entry(node, leaf_index)
        if not entry.present:
            raise PageFaultError(vaddr, f"unmap of unmapped address {vaddr:#x}")
        self._write_entry(node, leaf_index, 0)
        self.mapped_pages -= 1
        return entry.frame_address

    def set_writable(self, vaddr: int, writable: bool) -> None:
        """Change the writable permission of an existing mapping."""
        node = self.root_paddr
        for level in range(LEVELS - 1):
            entry = self._read_entry(node, level_index(vaddr, level))
            if not entry.present:
                raise PageFaultError(vaddr, f"permission change on unmapped {vaddr:#x}")
            node = entry.frame_address
        leaf_index = level_index(vaddr, LEVELS - 1)
        entry = self._read_entry(node, leaf_index)
        if not entry.present:
            raise PageFaultError(vaddr, f"permission change on unmapped {vaddr:#x}")
        self._write_entry(node, leaf_index,
                          PageTableEntry.encode(entry.frame_address, writable=writable))

    # ------------------------------------------------------------------ #
    # Translation (software walk — no timing)
    # ------------------------------------------------------------------ #
    def translate(self, vaddr: int) -> Optional[TranslationResult]:
        """Walk the table for ``vaddr``; return ``None`` if not mapped."""
        node = self.root_paddr
        for level in range(LEVELS - 1):
            entry = self._read_entry(node, level_index(vaddr, level))
            if not entry.present:
                return None
            node = entry.frame_address
        entry = self._read_entry(node, level_index(vaddr, LEVELS - 1))
        if not entry.present:
            return None
        return TranslationResult(vpn=vaddr // PAGE_SIZE,
                                 frame_address=entry.frame_address,
                                 writable=entry.writable)

    def walk_entry_addresses(self, vaddr: int) -> List[int]:
        """Return the physical addresses of the entries a hardware walk reads.

        The list always has one address per level actually visited; the walk
        stops early at the first non-present entry, exactly like hardware.
        """
        addresses: List[int] = []
        node = self.root_paddr
        for level in range(LEVELS):
            index = level_index(vaddr, level)
            addresses.append(self._entry_paddr(node, index))
            entry = self._read_entry(node, index)
            if not entry.present or level == LEVELS - 1:
                break
            node = entry.frame_address
        return addresses

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def mappings(self) -> Iterator[Tuple[int, TranslationResult]]:
        """Yield ``(vpn, translation)`` for every installed leaf mapping.

        Used by tests and by the shootdown model; performs a full tree walk.
        """
        def recurse(node: int, level: int, prefix: int) -> Iterator[Tuple[int, TranslationResult]]:
            for index in range(ENTRIES_PER_NODE):
                entry = self._read_entry(node, index)
                if not entry.present:
                    continue
                vpn_part = (prefix << BITS_PER_LEVEL) | index
                if level == LEVELS - 1:
                    yield vpn_part, TranslationResult(
                        vpn=vpn_part,
                        frame_address=entry.frame_address,
                        writable=entry.writable,
                    )
                else:
                    yield from recurse(entry.frame_address, level + 1, vpn_part)

        yield from recurse(self.root_paddr, 0, 0)
