"""Shared virtual memory substrate.

Implements the x86-flavoured virtual-memory machinery the paper's CCSVM chip
relies on (Section 3.2.1): 4-level page tables rooted at a per-process CR3,
per-core TLBs, hardware page-table walkers, demand paging with an OS fault
handler, and CPU-initiated TLB shootdown that flushes MTTOP TLBs.
"""

from repro.vm.page_table import PageTable, PageTableEntry, TranslationResult
from repro.vm.tlb import TLB, TLBEntry
from repro.vm.walker import PageTableWalker, WalkResult
from repro.vm.manager import AddressSpace, VirtualMemoryManager
from repro.vm.shootdown import TLBShootdownController

__all__ = [
    "AddressSpace",
    "PageTable",
    "PageTableEntry",
    "PageTableWalker",
    "TLB",
    "TLBEntry",
    "TLBShootdownController",
    "TranslationResult",
    "VirtualMemoryManager",
    "WalkResult",
]
