"""Hardware page-table walker.

Every core on the CCSVM chip — CPU and MTTOP alike — has its own page-table
walker (Section 3.2.1: the x86 CPU cores require a hardware TLB-miss
handler, and the paper adds the same structure to each MTTOP core).  On a
TLB miss the walker reads one page-table entry per level from physical
memory; each read is charged through a caller-supplied timing callback so
the walk's latency reflects where the page-table lines actually live
(L2 or DRAM).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.memory.address import PAGE_SIZE
from repro.memory.physical import PhysicalMemory
from repro.sim.stats import StatsRegistry
from repro.vm.page_table import PageTable, PageTableEntry, TranslationResult

#: Timing callback: given the physical address of a page-table entry, return
#: the latency (in picoseconds) of reading it.
EntryReadTiming = Callable[[int], int]


@dataclass(frozen=True)
class WalkResult:
    """Outcome of one hardware page-table walk."""

    translation: Optional[TranslationResult]
    latency_ps: int
    levels_visited: int

    @property
    def page_fault(self) -> bool:
        """True when the walk ended at a non-present entry."""
        return self.translation is None


class PageTableWalker:
    """Walks a page table, charging a memory read per level visited.

    Parameters
    ----------
    memory:
        The physical memory holding page-table nodes.
    entry_read_timing:
        Callback that returns the latency of reading one entry.  When
        ``None``, a fixed ``default_entry_latency_ps`` is charged per level.
    """

    def __init__(self, memory: PhysicalMemory,
                 entry_read_timing: Optional[EntryReadTiming] = None,
                 default_entry_latency_ps: int = 20_000,
                 stats: Optional[StatsRegistry] = None,
                 name: str = "walker") -> None:
        self._memory = memory
        self._entry_read_timing = entry_read_timing
        self.default_entry_latency_ps = default_entry_latency_ps
        self.name = name
        self.stats = stats if stats is not None else StatsRegistry()

    def set_entry_read_timing(self, callback: EntryReadTiming) -> None:
        """Install (or replace) the per-entry timing callback."""
        self._entry_read_timing = callback

    def walk(self, page_table: PageTable, vaddr: int) -> WalkResult:
        """Walk ``page_table`` for ``vaddr``, charging one read per level."""
        self.stats.add(f"{self.name}.walks")
        latency = 0
        entry_addresses = page_table.walk_entry_addresses(vaddr)
        last_entry: Optional[PageTableEntry] = None
        for entry_paddr in entry_addresses:
            if self._entry_read_timing is not None:
                latency += self._entry_read_timing(entry_paddr)
            else:
                latency += self.default_entry_latency_ps
            last_entry = PageTableEntry(self._memory.read_unsigned(entry_paddr))
        self.stats.add(f"{self.name}.levels_read", len(entry_addresses))
        self.stats.add(f"{self.name}.cycles_ps", latency)

        if last_entry is None or not last_entry.present:
            self.stats.add(f"{self.name}.faults")
            return WalkResult(translation=None, latency_ps=latency,
                              levels_visited=len(entry_addresses))

        translation = TranslationResult(
            vpn=vaddr // PAGE_SIZE,
            frame_address=last_entry.frame_address,
            writable=last_entry.writable,
        )
        return WalkResult(translation=translation, latency_ps=latency,
                          levels_visited=len(entry_addresses))
