"""Shared machinery for executing thread programs on a core.

Both core models (CPU and MTTOP) drive thread programs the same way: resume
the generator, get an operation, execute it against the core's memory port,
and send the result back in.  The only differences between core types are
issue cost, how many lanes execute together, and which runtime handles the
non-memory operations — so everything else lives here.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Generator, Optional

from repro.cores.isa import (
    AtomicAdd,
    AtomicCAS,
    AtomicDec,
    AtomicInc,
    Load,
    LoadVector,
    Operation,
    Store,
    StoreVector,
    WaitValue,
)
from repro.errors import KernelProgramError
from repro.mem.batch import (OP_ATOMIC_ADD, OP_ATOMIC_CAS, OP_LOAD, OP_STORE,
                             BatchOp)

#: A thread program: a generator yielding operations and receiving results.
ThreadProgram = Generator[Operation, object, None]


@dataclass
class OpOutcome:
    """Result of executing (or attempting) one operation.

    ``retry`` means the operation did not complete (a spin-wait whose
    condition is not yet true) and must be re-executed on the lane's next
    turn; the latency charged covers the poll that was performed.

    ``ops`` is how many scalar operations this outcome stands for: 1 for
    everything except the vector memory operations, which count (and are
    charged issue cost) as one instruction per element.
    """

    latency_ps: int = 0
    value: object = None
    retry: bool = False
    ops: int = 1


@dataclass
class ThreadContext:
    """Execution state of one software thread (one SIMT lane or CPU thread)."""

    tid: int
    program: ThreadProgram
    finished: bool = False
    #: Operation to retry before pulling the next one from the generator.
    pending_op: Optional[Operation] = None
    #: Value to send into the generator on the next resume.
    next_send: object = None
    #: Count of operations this thread has completed (for tests/stats).
    operations_executed: int = field(default=0)

    def next_operation(self) -> Optional[Operation]:
        """Return the operation this thread should execute next.

        Returns the pending (retried) operation if there is one, otherwise
        resumes the generator.  Returns ``None`` when the program is done.
        """
        if self.finished:
            return None
        if self.pending_op is not None:
            return self.pending_op
        try:
            operation = self.program.send(self.next_send)
        except StopIteration:
            self.finished = True
            return None
        self.next_send = None
        if not isinstance(operation, Operation):
            raise KernelProgramError(
                f"thread {self.tid} yielded {operation!r}, which is not an Operation"
            )
        return operation

    def complete(self, operation: Operation, outcome: OpOutcome) -> None:
        """Record the outcome of ``operation`` (retry or completion)."""
        if outcome.retry:
            self.pending_op = operation
            return
        self.pending_op = None
        self.next_send = outcome.value
        self.operations_executed += outcome.ops


#: Handler for operations the core itself does not know how to execute
#: (allocation, task creation, CPU/MTTOP synchronisation primitives, ...).
#: Receives the issuing core, the lane and the operation.
RuntimeHandler = Callable[[object, ThreadContext, Operation], OpOutcome]


def execute_memory_operation(operation: Operation, memory_port,
                             spin_poll_ps: int) -> Optional[OpOutcome]:
    """Execute ``operation`` if it is a plain memory operation.

    Returns ``None`` for operations this function does not handle (compute
    and runtime operations), so the calling core can deal with them.  The
    ``memory_port`` must provide ``load``, ``store``, ``atomic_add`` and
    ``atomic_cas`` methods that return ``(value, latency_ps)`` /
    ``latency_ps`` pairs — see :class:`repro.core.access.CoreMemoryPort`.
    """
    if isinstance(operation, Load):
        value, latency = memory_port.load(operation.vaddr)
        return OpOutcome(latency_ps=latency, value=value)
    if isinstance(operation, Store):
        latency = memory_port.store(operation.vaddr, operation.value)
        return OpOutcome(latency_ps=latency)
    if isinstance(operation, AtomicAdd):
        old, latency = memory_port.atomic_add(operation.vaddr, operation.delta)
        return OpOutcome(latency_ps=latency, value=old)
    if isinstance(operation, AtomicInc):
        old, latency = memory_port.atomic_add(operation.vaddr, 1)
        return OpOutcome(latency_ps=latency, value=old)
    if isinstance(operation, AtomicDec):
        old, latency = memory_port.atomic_add(operation.vaddr, -1)
        return OpOutcome(latency_ps=latency, value=old)
    if isinstance(operation, AtomicCAS):
        old, latency = memory_port.atomic_cas(operation.vaddr, operation.expected,
                                              operation.new)
        return OpOutcome(latency_ps=latency, value=old)
    if isinstance(operation, WaitValue):
        value, latency = memory_port.load(operation.vaddr)
        satisfied = (value != operation.value) if operation.negate \
            else (value == operation.value)
        if satisfied:
            return OpOutcome(latency_ps=latency, value=value)
        return OpOutcome(latency_ps=latency + spin_poll_ps, retry=True)
    if isinstance(operation, LoadVector):
        values, latencies = memory_port.load_batch(operation.vaddrs)
        return OpOutcome(latency_ps=sum(latencies), value=tuple(values),
                         ops=max(1, len(latencies)))
    if isinstance(operation, StoreVector):
        latencies = memory_port.store_batch(operation.vaddrs, operation.values)
        return OpOutcome(latency_ps=sum(latencies),
                         ops=max(1, len(latencies)))
    return None


# --------------------------------------------------------------------------- #
# Batch collection (used by the MTTOP warp loop)
# --------------------------------------------------------------------------- #
def batch_request(operation: Operation) -> Optional[BatchOp]:
    """Encode ``operation`` as a ``(kind, vaddr, a, b)`` batch op.

    Returns ``None`` for operations that cannot join a mixed batch —
    compute, runtime services, and the vector operations (which batch
    internally through ``load_batch``/``store_batch`` already).  A
    :class:`WaitValue` is encoded as the load its poll performs; the
    spin/retry decision is re-applied by :func:`batch_outcome`.
    """
    if isinstance(operation, Load):
        return (OP_LOAD, operation.vaddr, 0, 0)
    if isinstance(operation, Store):
        return (OP_STORE, operation.vaddr, operation.value, 0)
    if isinstance(operation, AtomicAdd):
        return (OP_ATOMIC_ADD, operation.vaddr, operation.delta, 0)
    if isinstance(operation, AtomicInc):
        return (OP_ATOMIC_ADD, operation.vaddr, 1, 0)
    if isinstance(operation, AtomicDec):
        return (OP_ATOMIC_ADD, operation.vaddr, -1, 0)
    if isinstance(operation, AtomicCAS):
        return (OP_ATOMIC_CAS, operation.vaddr, operation.expected,
                operation.new)
    if isinstance(operation, WaitValue):
        return (OP_LOAD, operation.vaddr, 0, 0)
    return None


def batch_outcome(operation: Operation, value: object, latency_ps: int,
                  spin_poll_ps: int) -> OpOutcome:
    """Build the :class:`OpOutcome` for one batched operation's result.

    Mirrors exactly what :func:`execute_memory_operation` would have
    produced for the same operation and port result.
    """
    if isinstance(operation, WaitValue):
        satisfied = (value != operation.value) if operation.negate \
            else (value == operation.value)
        if satisfied:
            return OpOutcome(latency_ps=latency_ps, value=value)
        return OpOutcome(latency_ps=latency_ps + spin_poll_ps, retry=True)
    if isinstance(operation, Store):
        return OpOutcome(latency_ps=latency_ps)
    return OpOutcome(latency_ps=latency_ps, value=value)
