"""The operation vocabulary thread programs are written in.

A *thread program* is a Python generator that yields operation objects and
receives each operation's result back through ``send``.  The same program
can therefore run on every machine model in this package — the CCSVM chip's
CPU and MTTOP cores, the APU baseline's CPU and GPU, or a plain functional
interpreter used to produce golden reference results — because each backend
interprets the operations with its own timing.

The operation set mirrors what the paper's MTTOP ISA provides: loads,
stores, simple OpenCL-style atomics (``atomic_add``, ``atomic_inc``,
``atomic_dec``, ``atomic_cas``), plain compute, and the memory-based
spin-wait that the xthreads synchronisation primitives are built from.
Runtime services (task creation, CPU/MTTOP signalling, dynamic allocation)
are separate operation classes defined by :mod:`repro.core.xthreads.api`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.memory.address import WORD_SIZE


class Operation:
    """Base class for everything a thread program may yield."""

    __slots__ = ()


# --------------------------------------------------------------------------- #
# Memory operations
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class Load(Operation):
    """Load the 64-bit word at virtual address ``vaddr``; yields its value."""

    vaddr: int


@dataclass(frozen=True)
class Store(Operation):
    """Store ``value`` to the 64-bit word at virtual address ``vaddr``."""

    vaddr: int
    value: int


@dataclass(frozen=True)
class AtomicAdd(Operation):
    """Atomically add ``delta`` to the word at ``vaddr``; yields the old value."""

    vaddr: int
    delta: int


@dataclass(frozen=True)
class AtomicInc(Operation):
    """Atomically increment the word at ``vaddr``; yields the old value."""

    vaddr: int


@dataclass(frozen=True)
class AtomicDec(Operation):
    """Atomically decrement the word at ``vaddr``; yields the old value."""

    vaddr: int


@dataclass(frozen=True)
class AtomicCAS(Operation):
    """Atomic compare-and-swap; yields the old value.

    The word at ``vaddr`` is replaced with ``new`` only if it equals
    ``expected``.
    """

    vaddr: int
    expected: int
    new: int


@dataclass(frozen=True)
class LoadVector(Operation):
    """Load every word in ``vaddrs``; yields the tuple of their values.

    Semantically and in timing this is exactly the same as yielding one
    :class:`Load` per address back to back — each element is charged the
    core's issue cost plus its own memory latency, and counts as one
    executed instruction — but it lets the memory port run the batch
    through the columnar access engine (:mod:`repro.mem.batch`) instead
    of one full call chain per word.
    """

    vaddrs: Tuple[int, ...]


@dataclass(frozen=True)
class StoreVector(Operation):
    """Store ``values[i]`` to ``vaddrs[i]`` for every element (no result).

    The vector analogue of :class:`Store`, with the same equivalence to a
    back-to-back scalar sequence as :class:`LoadVector`.
    """

    vaddrs: Tuple[int, ...]
    values: Tuple[int, ...]


@dataclass(frozen=True)
class WaitValue(Operation):
    """Spin until the word at ``vaddr`` compares against ``value``.

    ``negate`` False waits for equality; True waits for inequality.  The
    executing core models the spin as a coherent load per polling interval,
    so waiting generates realistic coherence traffic without simulating
    millions of back-to-back loads.
    """

    vaddr: int
    value: int
    negate: bool = False


# --------------------------------------------------------------------------- #
# Non-memory operations
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class Compute(Operation):
    """Execute ``amount`` arithmetic operations with no memory access."""

    amount: int = 1


@dataclass(frozen=True)
class Malloc(Operation):
    """Dynamically allocate ``size`` bytes; yields the virtual address.

    On a CPU core this is a normal heap allocation.  On an MTTOP thread it
    becomes the paper's ``mttop_malloc``: the MTTOP thread asks a CPU thread
    to perform the allocation on its behalf (Section 5.3.2), which is slow —
    deliberately so, since that cost is part of what Figure 8 measures.
    """

    size: int


@dataclass(frozen=True)
class Free(Operation):
    """Release a previous allocation at ``vaddr`` (no result)."""

    vaddr: int


# --------------------------------------------------------------------------- #
# Address arithmetic helpers for kernel authors
# --------------------------------------------------------------------------- #
def word_addr(base: int, index: int) -> int:
    """Address of the ``index``-th 64-bit word of an array starting at ``base``."""
    return base + index * WORD_SIZE


def array_bytes(elements: int) -> int:
    """Size in bytes of an array of ``elements`` 64-bit words."""
    return elements * WORD_SIZE
