"""SIMT MTTOP (GPU-like) core model.

Each MTTOP core of the CCSVM chip (Table 2) runs at 600 MHz, holds 128
hardware thread contexts and issues 8 threads simultaneously — one warp (in
NVIDIA terms) or wavefront (AMD terms) per cycle.  The model executes warps
in lockstep: every step, the next ready warp executes one operation per
unfinished lane; the warp's latency is one issue cycle plus the slowest
lane's memory latency (lanes access memory in parallel).

A core with no assigned warps *blocks* rather than finishes, because the
MIFD may assign it more tasks later; the chip requests a halt once the host
process has completed, at which point idle cores finish.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.cores.interpreter import (
    OpOutcome,
    RuntimeHandler,
    ThreadContext,
    batch_outcome,
    batch_request,
    execute_memory_operation,
)
from repro.cores.isa import Compute, Operation
from repro.errors import KernelProgramError, MIFDError
from repro.sim.clock import ClockDomain
from repro.sim.engine import Agent, StepOutcome
from repro.sim.stats import StatsRegistry


@dataclass
class Warp:
    """A SIMD-width chunk of threads executing in lockstep on one core."""

    warp_id: int
    lanes: List[ThreadContext] = field(default_factory=list)

    @property
    def finished(self) -> bool:
        """True when every lane's program has completed."""
        return all(lane.finished for lane in self.lanes)

    @property
    def active_lanes(self) -> List[ThreadContext]:
        """Lanes that still have work."""
        return [lane for lane in self.lanes if not lane.finished]


class MTTOPCore(Agent):
    """One massively-threaded throughput-oriented core."""

    def __init__(self, name: str, clock: ClockDomain, simd_width: int,
                 thread_contexts: int, memory_port,
                 runtime_handler: Optional[RuntimeHandler] = None,
                 stats: Optional[StatsRegistry] = None,
                 spin_poll_ps: int = 200_000) -> None:
        super().__init__(name)
        self.clock = clock
        self.simd_width = simd_width
        self.thread_contexts = thread_contexts
        self.memory_port = memory_port
        self.runtime_handler = runtime_handler
        self.stats = stats if stats is not None else StatsRegistry()
        self.spin_poll_ps = spin_poll_ps
        self._issue_ps = clock.period_ps
        self._warps: List[Warp] = []
        self._next_warp_index = 0
        self._next_warp_id = 0
        self._contexts_in_use = 0
        self._halt_requested = False
        # New cores have nothing to run; they must not stall the engine.
        self.blocked = True

    # ------------------------------------------------------------------ #
    # Task assignment (called by the MIFD)
    # ------------------------------------------------------------------ #
    @property
    def free_contexts(self) -> int:
        """Number of hardware thread contexts currently unassigned."""
        return self.thread_contexts - self._contexts_in_use

    @property
    def busy_contexts(self) -> int:
        """Number of hardware thread contexts currently assigned."""
        return self._contexts_in_use

    def assign_warp(self, lanes: List[ThreadContext], at_time_ps: int) -> Warp:
        """Install a SIMD-width chunk of threads as a new warp.

        The MIFD calls this after checking :attr:`free_contexts`; assigning
        more lanes than fit raises :class:`MIFDError`.
        """
        if not lanes:
            raise MIFDError(f"{self.name}: cannot assign an empty warp")
        if len(lanes) > self.simd_width:
            raise MIFDError(
                f"{self.name}: warp of {len(lanes)} lanes exceeds SIMD width "
                f"{self.simd_width}"
            )
        if len(lanes) > self.free_contexts:
            raise MIFDError(f"{self.name}: not enough free thread contexts")
        warp = Warp(warp_id=self._next_warp_id, lanes=list(lanes))
        self._next_warp_id += 1
        self._warps.append(warp)
        self._contexts_in_use += len(lanes)
        self.stats.add(f"{self.name}.warps_assigned")
        self.finished = False
        self.wake(at_time_ps)
        return warp

    def request_halt(self, at_time_ps: int) -> None:
        """Ask the core to finish once it has no more warps to run."""
        self._halt_requested = True
        if self.blocked:
            self.wake(at_time_ps)

    # ------------------------------------------------------------------ #
    # Agent protocol
    # ------------------------------------------------------------------ #
    def _select_warp(self) -> Optional[Warp]:
        if not self._warps:
            return None
        count = len(self._warps)
        for offset in range(count):
            index = (self._next_warp_index + offset) % count
            warp = self._warps[index]
            if not warp.finished:
                self._next_warp_index = (index + 1) % count
                return warp
        return None

    def _retire_finished_warps(self) -> None:
        finished = [warp for warp in self._warps if warp.finished]
        for warp in finished:
            self._contexts_in_use -= len(warp.lanes)
            self._warps.remove(warp)
            self.stats.add(f"{self.name}.warps_retired")
        if self._next_warp_index >= max(1, len(self._warps)):
            self._next_warp_index = 0

    def step(self) -> StepOutcome:
        self._retire_finished_warps()
        warp = self._select_warp()
        if warp is None:
            if self._halt_requested:
                return self.finish()
            return self.block()

        if getattr(self.memory_port, "batch_enabled", False):
            worst_latency, warp_issues = self._run_lanes_batched(warp)
        else:
            worst_latency = 0
            warp_issues = 1
            for lane in warp.active_lanes:
                operation = lane.next_operation()
                if operation is None:
                    continue
                outcome = self._execute(lane, operation)
                lane.complete(operation, outcome)
                worst_latency = max(worst_latency, outcome.latency_ps)
                warp_issues = max(warp_issues, outcome.ops)
                self.stats.add(f"{self.name}.lane_instructions", outcome.ops)

        self.advance(self._issue_ps + worst_latency)
        # A vector op stands for N back-to-back warp issues.
        self.stats.add(f"{self.name}.warp_instructions", warp_issues)
        self._retire_finished_warps()
        return StepOutcome.RAN

    def _run_lanes_batched(self, warp: Warp) -> int:
        """One warp step with the lanes' memory operations batched.

        Lanes execute in lane order exactly as in the scalar loop, but
        consecutive plain memory operations are collected and handed to
        the port as one batch.  Any operation that may itself touch the
        memory port (runtime services) or is not batchable flushes the
        pending batch first, so the port observes the identical global
        operation order — which is what makes results bit-for-bit equal.
        """
        self.memory_port.current_time_ps = self.local_time_ps
        worst = 0
        lane_ops = 0
        warp_issues = 1
        pending: List[Tuple[ThreadContext, Operation, tuple]] = []
        for lane in warp.active_lanes:
            operation = lane.next_operation()
            if operation is None:
                continue
            lane_ops += 1
            request = batch_request(operation)
            if request is not None:
                pending.append((lane, operation, request))
                continue
            worst = max(worst, self._flush_batch(pending))
            outcome = self._execute(lane, operation)
            lane.complete(operation, outcome)
            lane_ops += outcome.ops - 1
            warp_issues = max(warp_issues, outcome.ops)
            worst = max(worst, outcome.latency_ps)
        worst = max(worst, self._flush_batch(pending))
        if lane_ops:
            self.stats.add(f"{self.name}.lane_instructions", lane_ops)
        return worst, warp_issues

    def _flush_batch(self, pending: List[Tuple[ThreadContext, Operation, tuple]]) -> int:
        """Execute and complete the pending lane memory operations."""
        if not pending:
            return 0
        if len(pending) == 1:
            lane, operation, _request = pending[0]
            outcome = execute_memory_operation(operation, self.memory_port,
                                               self.spin_poll_ps)
            lane.complete(operation, outcome)
            pending.clear()
            return outcome.latency_ps
        values, latencies = self.memory_port.run_batch(
            [request for _, _, request in pending])
        worst = 0
        for index, (lane, operation, _request) in enumerate(pending):
            outcome = batch_outcome(operation, values[index], latencies[index],
                                    self.spin_poll_ps)
            lane.complete(operation, outcome)
            worst = max(worst, outcome.latency_ps)
        pending.clear()
        return worst

    # ------------------------------------------------------------------ #
    # Operation execution
    # ------------------------------------------------------------------ #
    def _execute(self, lane: ThreadContext, operation) -> OpOutcome:
        # current_time_ps is part of the MemoryPort protocol (defaulted by
        # every implementation), so no hasattr probe in the hot loop.
        self.memory_port.current_time_ps = self.local_time_ps
        if isinstance(operation, Compute):
            # One operation per lane per cycle; lanes run in parallel, so a
            # Compute(n) costs n extra cycles for this lane.
            return OpOutcome(latency_ps=self._issue_ps * max(0, operation.amount - 1))

        memory_outcome = execute_memory_operation(operation, self.memory_port,
                                                  self.spin_poll_ps)
        if memory_outcome is not None:
            if memory_outcome.ops > 1:
                # A vector op is N back-to-back lane operations: the step
                # charges one issue cycle, so add the other N - 1 here
                # (same accounting as Compute(n)).
                memory_outcome.latency_ps += \
                    self._issue_ps * (memory_outcome.ops - 1)
            return memory_outcome

        if self.runtime_handler is None:
            raise KernelProgramError(
                f"{self.name} has no runtime handler for operation {operation!r}"
            )
        return self.runtime_handler(self, lane, operation)
