"""In-order CPU core model.

Table 2's simulated CCSVM system uses deliberately weak CPU cores — in-order
x86 at 2.9 GHz with a maximum IPC of 0.5 — so that any advantage the CCSVM
system shows over the APU cannot be attributed to stronger CPUs.  The core
model charges ``1 / max_ipc`` cycles of issue cost per operation plus
whatever latency the memory system returns for memory operations.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

from repro.cores.interpreter import (
    OpOutcome,
    RuntimeHandler,
    ThreadContext,
    ThreadProgram,
    execute_memory_operation,
)
from repro.cores.isa import Compute
from repro.errors import KernelProgramError
from repro.sim.clock import ClockDomain
from repro.sim.engine import Agent, StepOutcome
from repro.sim.stats import StatsRegistry

#: Callback invoked when a queued program finishes (used by the chip to know
#: when every host thread has completed).
CompletionCallback = Callable[["CPUCore", ThreadContext], None]


class CPUCore(Agent):
    """One in-order CPU core executing host thread programs."""

    def __init__(self, name: str, clock: ClockDomain, cycles_per_instruction: float,
                 memory_port, runtime_handler: Optional[RuntimeHandler] = None,
                 stats: Optional[StatsRegistry] = None,
                 spin_poll_ps: int = 200_000) -> None:
        super().__init__(name)
        self.clock = clock
        self.cycles_per_instruction = cycles_per_instruction
        self.memory_port = memory_port
        self.runtime_handler = runtime_handler
        self.stats = stats if stats is not None else StatsRegistry()
        self.spin_poll_ps = spin_poll_ps
        self._issue_ps = clock.cycles_to_ps(cycles_per_instruction)
        self._instructions_stat = f"{name}.instructions"
        self._queue: List[Tuple[ThreadContext, Optional[CompletionCallback]]] = []
        self._current: Optional[Tuple[ThreadContext, Optional[CompletionCallback]]] = None
        self._pending_interrupt_ps = 0
        self._next_tid = 0

    # ------------------------------------------------------------------ #
    # Program management
    # ------------------------------------------------------------------ #
    def run_program(self, program: ThreadProgram,
                    on_complete: Optional[CompletionCallback] = None,
                    tid: Optional[int] = None) -> ThreadContext:
        """Queue a thread program on this core and return its context."""
        context = ThreadContext(tid=self._next_tid if tid is None else tid,
                                program=program)
        self._next_tid += 1
        self._queue.append((context, on_complete))
        self.blocked = False
        self.finished = False
        return context

    @property
    def has_work(self) -> bool:
        """True when a program is running or queued."""
        return self._current is not None or bool(self._queue)

    # ------------------------------------------------------------------ #
    # Interrupts (e.g. MTTOP page faults forwarded through the MIFD)
    # ------------------------------------------------------------------ #
    def add_interrupt_latency(self, latency_ps: int) -> None:
        """Charge this core ``latency_ps`` of interrupt-handling time.

        The time is consumed at the core's next step, modelling the core
        being diverted to run a handler on behalf of another device.
        """
        self._pending_interrupt_ps += latency_ps
        self.stats.add(f"{self.name}.interrupts")

    # ------------------------------------------------------------------ #
    # Agent protocol
    # ------------------------------------------------------------------ #
    def step(self) -> StepOutcome:
        if self._pending_interrupt_ps:
            self.advance(self._pending_interrupt_ps)
            self.stats.add(f"{self.name}.interrupt_ps", self._pending_interrupt_ps)
            self._pending_interrupt_ps = 0
            return StepOutcome.RAN

        if self._current is None:
            if not self._queue:
                return self.finish()
            self._current = self._queue.pop(0)

        context, on_complete = self._current
        operation = context.next_operation()
        if operation is None:
            self._current = None
            self.stats.add(f"{self.name}.programs_completed")
            if on_complete is not None:
                on_complete(self, context)
            if not self._queue:
                return self.finish()
            return StepOutcome.RAN

        outcome = self._execute(context, operation)
        context.complete(operation, outcome)
        self.advance(outcome.latency_ps)
        self.stats.add(self._instructions_stat, outcome.ops)
        return StepOutcome.RAN

    # ------------------------------------------------------------------ #
    # Operation execution
    # ------------------------------------------------------------------ #
    def _execute(self, context: ThreadContext, operation) -> OpOutcome:
        # current_time_ps is part of the MemoryPort protocol (defaulted by
        # every implementation), so no hasattr probe in the hot loop.
        self.memory_port.current_time_ps = self.local_time_ps
        if isinstance(operation, Compute):
            latency = self._issue_ps * max(1, operation.amount)
            return OpOutcome(latency_ps=latency)

        memory_outcome = execute_memory_operation(operation, self.memory_port,
                                                  self.spin_poll_ps)
        if memory_outcome is not None:
            # Vector operations are charged one issue slot per element,
            # exactly like the equivalent back-to-back scalar sequence.
            memory_outcome.latency_ps += self._issue_ps * memory_outcome.ops
            return memory_outcome

        if self.runtime_handler is None:
            raise KernelProgramError(
                f"{self.name} has no runtime handler for operation {operation!r}"
            )
        runtime_outcome = self.runtime_handler(self, context, operation)
        runtime_outcome.latency_ps += self._issue_ps
        return runtime_outcome
