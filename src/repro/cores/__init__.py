"""Core models: in-order CPU cores and SIMT MTTOP cores.

Both core types execute *thread programs*: Python generators that yield
operations from :mod:`repro.cores.isa` (loads, stores, atomics, compute,
spin-waits, allocation and runtime calls).  The core models interpret those
operations against the chip's memory system and charge time according to the
core's clock and issue width, which is the level of detail the paper's
evaluation needs — it explicitly factors out pipeline details and focuses on
the memory system and communication (Section 5).
"""

from repro.cores.isa import (
    AtomicAdd,
    AtomicCAS,
    AtomicDec,
    AtomicInc,
    Compute,
    Free,
    Load,
    Malloc,
    Operation,
    Store,
    WaitValue,
)
from repro.cores.interpreter import OpOutcome, ThreadContext
from repro.cores.cpu import CPUCore
from repro.cores.mttop import MTTOPCore, Warp

__all__ = [
    "AtomicAdd",
    "AtomicCAS",
    "AtomicDec",
    "AtomicInc",
    "CPUCore",
    "Compute",
    "Free",
    "Load",
    "MTTOPCore",
    "Malloc",
    "OpOutcome",
    "Operation",
    "Store",
    "ThreadContext",
    "WaitValue",
    "Warp",
]
