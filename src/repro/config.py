"""System configurations, including the two systems of Table 2.

Two presets mirror the paper's Table 2:

* :func:`ccsvm_system` — the simulated CCSVM chip: 4 in-order x86 CPU cores
  (2.9 GHz, max IPC 0.5), 10 MTTOP cores (600 MHz, 8-wide, 128 thread
  contexts), per-core 64 KiB / 16 KiB L1s and 64-entry TLBs, a shared
  inclusive 4 MiB L2 in four banks with an embedded directory, a 2D torus
  with 12 GB/s links and 2 GiB of DRAM at 100 ns.
* :func:`amd_apu_system` — the AMD A8-3850 "Llano" APU: 4 out-of-order CPU
  cores (max IPC 4) with private 1 MiB L2s, a Radeon GPU with 5 SIMD units of
  16 VLIW lanes, 8 GiB DDR3 at 72 ns, plus the OpenCL runtime cost structure
  (compilation, initialisation, buffer DMA, per-launch driver overhead).

Smaller variants (:func:`small_ccsvm_system`) keep the same structure with
fewer cores and smaller caches so unit tests run quickly.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field, replace
from typing import Mapping  # noqa: F401 - used in quoted annotations

from repro.errors import ConfigurationError

KB = 1024
MB = 1024 * KB
GB = 1024 * MB


# --------------------------------------------------------------------------- #
# CCSVM chip configuration
# --------------------------------------------------------------------------- #
_REPLACEMENT_POLICIES = ("lru", "plru", "random")


def _check_replacement(policy: str, where: str) -> None:
    if policy.lower() not in _REPLACEMENT_POLICIES:
        raise ConfigurationError(
            f"{where}: unknown replacement policy {policy!r}; "
            f"expected one of {', '.join(_REPLACEMENT_POLICIES)}")


@dataclass(frozen=True)
class CPUCoreConfig:
    """Configuration of the CCSVM chip's CPU cores."""

    count: int = 4
    frequency_ghz: float = 2.9
    max_ipc: float = 0.5
    l1_size_bytes: int = 64 * KB
    l1_associativity: int = 4
    l1_hit_cycles: int = 2
    l1_replacement: str = "lru"
    tlb_entries: int = 64

    def __post_init__(self) -> None:
        if self.count <= 0 or self.max_ipc <= 0:
            raise ConfigurationError("CPU core count and IPC must be positive")
        _check_replacement(self.l1_replacement, "cpu.l1_replacement")

    @property
    def cycles_per_instruction(self) -> float:
        """Average issue cost of one instruction in cycles (1 / max IPC)."""
        return 1.0 / self.max_ipc


@dataclass(frozen=True)
class MTTOPCoreConfig:
    """Configuration of the CCSVM chip's MTTOP (GPU-like) cores."""

    count: int = 10
    frequency_mhz: float = 600.0
    simd_width: int = 8
    thread_contexts: int = 128
    l1_size_bytes: int = 16 * KB
    l1_associativity: int = 4
    l1_hit_cycles: int = 1
    l1_replacement: str = "lru"
    tlb_entries: int = 64
    #: L1 write policy; the paper assumes write-back caches (Section 3.2.2)
    #: and discusses write-through as an open challenge (Section 6.1).
    write_through: bool = False

    def __post_init__(self) -> None:
        if self.simd_width <= 0 or self.thread_contexts <= 0:
            raise ConfigurationError("MTTOP SIMD width and contexts must be positive")
        if self.thread_contexts % self.simd_width != 0:
            raise ConfigurationError("thread contexts must be a multiple of the SIMD width")
        _check_replacement(self.l1_replacement, "mttop.l1_replacement")

    @property
    def total_thread_contexts(self) -> int:
        """Thread contexts across all MTTOP cores."""
        return self.count * self.thread_contexts

    @property
    def max_operations_per_cycle(self) -> int:
        """Chip-wide peak MTTOP operations per cycle (80 in Table 2)."""
        return self.count * self.simd_width


@dataclass(frozen=True)
class SharedL2Config:
    """Configuration of the shared, inclusive, banked L2 with its directory."""

    total_size_bytes: int = 4 * MB
    banks: int = 4
    associativity: int = 16
    hit_latency_cpu_cycles: int = 10
    replacement: str = "lru"

    def __post_init__(self) -> None:
        if self.banks <= 0 or self.total_size_bytes % self.banks != 0:
            raise ConfigurationError("L2 size must divide evenly across banks")
        _check_replacement(self.replacement, "l2.replacement")

    @property
    def bank_size_bytes(self) -> int:
        """Capacity of each bank."""
        return self.total_size_bytes // self.banks


@dataclass(frozen=True)
class SharedL3Config:
    """Optional memory-side L3 between the L2 banks and DRAM.

    Disabled in the paper's Table 2 machine (``enabled=False`` keeps the
    transaction paths byte-identical to the two-level chip); the
    ``ccsvm-l3`` preset — or a ``--set l3.enabled=true`` override on any
    CCSVM preset — switches it on.
    """

    enabled: bool = False
    total_size_bytes: int = 16 * MB
    associativity: int = 16
    hit_latency_cpu_cycles: int = 30
    replacement: str = "lru"

    def __post_init__(self) -> None:
        _check_replacement(self.replacement, "l3.replacement")


@dataclass(frozen=True)
class DRAMConfig:
    """Off-chip memory configuration."""

    size_bytes: int = 2 * GB
    latency_ns: float = 100.0


@dataclass(frozen=True)
class NoCConfig:
    """On-chip network configuration (2D torus for the CCSVM chip)."""

    link_bandwidth_gbps: float = 12.0
    hop_latency_ns: float = 1.0


@dataclass(frozen=True)
class CCSVMSystemConfig:
    """The full simulated CCSVM system (left column of Table 2)."""

    name: str = "ccsvm"
    cpu: CPUCoreConfig = field(default_factory=CPUCoreConfig)
    mttop: MTTOPCoreConfig = field(default_factory=MTTOPCoreConfig)
    l2: SharedL2Config = field(default_factory=SharedL2Config)
    l3: SharedL3Config = field(default_factory=SharedL3Config)
    dram: DRAMConfig = field(default_factory=DRAMConfig)
    noc: NoCConfig = field(default_factory=NoCConfig)
    #: Hierarchy shape: ``False`` removes the per-core TLBs entirely, so
    #: every access pays a hardware page-table walk (the ``ccsvm-no-tlb``
    #: ablation shape).
    tlb_enabled: bool = True
    #: Cost (ns) of the write syscall used to hand a task to the MIFD.
    mifd_syscall_ns: float = 1_000.0
    #: MIFD processing cost per task chunk assignment.
    mifd_dispatch_ns: float = 200.0
    #: Polling interval used by spin-wait synchronisation primitives.
    spin_poll_ns: float = 200.0
    #: Host-side optimisation: let the memory ports run address vectors
    #: through the columnar batch engine (:mod:`repro.mem.batch`).
    #: Results are bit-for-bit identical either way; ``False`` forces the
    #: scalar access loop (``--set batch_access=false``).
    batch_access: bool = True

    @property
    def total_cores(self) -> int:
        """CPU plus MTTOP core count."""
        return self.cpu.count + self.mttop.count


# --------------------------------------------------------------------------- #
# AMD APU (baseline) configuration
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class APUCPUConfig:
    """The APU's out-of-order x86 cores (right column of Table 2)."""

    count: int = 4
    frequency_ghz: float = 2.9
    max_ipc: float = 4.0
    l1_size_bytes: int = 64 * KB
    l1_associativity: int = 4
    l1_hit_ns: float = 1.0
    l1_replacement: str = "lru"
    l2_size_bytes: int = 1 * MB
    l2_associativity: int = 16
    l2_hit_ns: float = 3.6
    l2_replacement: str = "lru"
    #: Hierarchy shape: ``True`` pools the per-core private L2s into one
    #: L2 of ``l2_size_bytes`` shared by every CPU core (the
    #: ``apu-shared-l2`` preset).
    l2_shared: bool = False
    tlb_entries: int = 1024

    def __post_init__(self) -> None:
        _check_replacement(self.l1_replacement, "cpu.l1_replacement")
        _check_replacement(self.l2_replacement, "cpu.l2_replacement")

    @property
    def cycles_per_instruction(self) -> float:
        """Average issue cost of one instruction in cycles (1 / max IPC)."""
        return 1.0 / self.max_ipc


@dataclass(frozen=True)
class APUGPUConfig:
    """The APU's Radeon GPU: 5 SIMD units of 16 VLIW lanes at 600 MHz."""

    simd_units: int = 5
    vliw_lanes: int = 16
    frequency_mhz: float = 600.0
    #: Average operations packed per VLIW instruction (1 = worst, 4 = best).
    #: Table 2: at full VLIW utilisation the APU GPU has 4x the throughput of
    #: the simulated MTTOP; at minimum utilisation they are equal.
    vliw_utilization: float = 2.0
    local_memory_bytes: int = 32 * KB
    #: Number of consecutive word accesses the GPU can coalesce into one
    #: DRAM transaction (the APU's GPU, unlike its CPU, coalesces strided
    #: accesses — Section 5.1 of the paper).
    coalesce_width: int = 8

    @property
    def max_operations_per_cycle(self) -> float:
        """Peak operations per cycle across the GPU."""
        return self.simd_units * self.vliw_lanes * self.vliw_utilization

    @property
    def lanes(self) -> int:
        """Total scalar lanes (SIMD units x VLIW lanes)."""
        return self.simd_units * self.vliw_lanes


@dataclass(frozen=True)
class OpenCLRuntimeConfig:
    """Cost structure of the OpenCL runtime used on the APU.

    The paper reports APU results both with and without "compilation and
    OpenCL initialization code", so those two components are separately
    configurable.  The remaining costs model the per-launch driver work and
    the DMA transfers between the CPU and GPU virtual address spaces.
    """

    compile_time_ms: float = 150.0
    init_time_ms: float = 40.0
    buffer_create_us: float = 20.0
    map_unmap_us: float = 8.0
    kernel_launch_us: float = 30.0
    kernel_finish_us: float = 15.0
    dma_setup_us: float = 5.0
    dma_bandwidth_gbps: float = 8.0
    #: The Fusion Control Link provides coherent CPU<->GPU communication at
    #: reduced bandwidth (Section 2.3).
    fcl_bandwidth_gbps: float = 2.0
    fcl_latency_ns: float = 300.0
    #: Off-chip traffic generated by the runtime itself (JIT compilation,
    #: context creation, per-launch driver/command-queue work).  The paper
    #: measures the APU with hardware performance counters over the whole
    #: program, so this traffic is part of its Figure 9 numbers.
    compile_dram_kb: int = 2048
    init_dram_kb: int = 512
    launch_dram_kb: int = 48


@dataclass(frozen=True)
class APUSystemConfig:
    """The AMD A8-3850 Llano APU baseline (right column of Table 2)."""

    name: str = "amd_apu"
    cpu: APUCPUConfig = field(default_factory=APUCPUConfig)
    gpu: APUGPUConfig = field(default_factory=APUGPUConfig)
    opencl: OpenCLRuntimeConfig = field(default_factory=OpenCLRuntimeConfig)
    dram: DRAMConfig = field(default_factory=lambda: DRAMConfig(size_bytes=8 * GB,
                                                                latency_ns=72.0))
    #: pthreads thread create/join overhead for the multi-threaded CPU runs.
    pthread_spawn_us: float = 12.0
    pthread_join_us: float = 6.0
    pthread_barrier_us: float = 3.0


# --------------------------------------------------------------------------- #
# Presets
# --------------------------------------------------------------------------- #
def ccsvm_system() -> CCSVMSystemConfig:
    """The simulated CCSVM system exactly as configured in Table 2."""
    return CCSVMSystemConfig()


def amd_apu_system() -> APUSystemConfig:
    """The AMD A8-3850 APU baseline exactly as configured in Table 2."""
    return APUSystemConfig()


def small_ccsvm_system(cpu_cores: int = 1, mttop_cores: int = 2,
                       thread_contexts: int = 32) -> CCSVMSystemConfig:
    """A scaled-down CCSVM chip for fast unit tests.

    The structure (coherence protocol, torus, MIFD, xthreads) is identical;
    only core counts and cache sizes shrink so tests exercising the full
    stack finish in milliseconds.
    """
    base = ccsvm_system()
    return replace(
        base,
        name="ccsvm_small",
        cpu=replace(base.cpu, count=cpu_cores, l1_size_bytes=8 * KB),
        mttop=replace(base.mttop, count=mttop_cores, thread_contexts=thread_contexts,
                      l1_size_bytes=4 * KB),
        l2=replace(base.l2, total_size_bytes=256 * KB, banks=2),
        dram=replace(base.dram, size_bytes=64 * MB),
    )


def ccsvm_l3_system() -> CCSVMSystemConfig:
    """The CCSVM chip with a 16 MiB memory-side L3 under the L2 banks.

    A hierarchy-*shape* variant: L2 fills check the L3 before going
    off-chip and dirty L2 victims land in it, so Figure-9-style DRAM
    access counts drop for working sets between 4 MiB and 16 MiB.
    """
    base = ccsvm_system()
    return replace(base, name="ccsvm_l3",
                   l3=replace(base.l3, enabled=True))


def ccsvm_no_tlb_system() -> CCSVMSystemConfig:
    """The CCSVM chip with per-core TLBs removed entirely.

    Every access pays a hardware page-table walk; the shape isolates how
    much of the chip's tightly-coupled advantage depends on translation
    caching (the paper's Section 3.2.1 design point, taken to zero).
    """
    return replace(ccsvm_system(), name="ccsvm_no_tlb", tlb_enabled=False)


def apu_shared_l2_system() -> APUSystemConfig:
    """The APU with its four private 1 MiB L2s pooled into one shared 4 MiB L2.

    A hierarchy-shape variant of the baseline: each core keeps its private
    L1, but all cores fill and evict in one shared L2 level, so pthreads
    phases contend for (and share) its capacity.
    """
    base = amd_apu_system()
    return replace(base, name="amd_apu_shared_l2",
                   cpu=replace(base.cpu, l2_shared=True,
                               l2_size_bytes=4 * MB))


def tiny_caches_ccsvm_system() -> CCSVMSystemConfig:
    """A CCSVM chip with deliberately tiny caches to force evictions.

    Used by tests that need to exercise L1/L2 capacity evictions, inclusive
    back-invalidation and writeback paths without huge footprints.
    """
    base = small_ccsvm_system()
    return replace(
        base,
        name="ccsvm_tiny_caches",
        cpu=replace(base.cpu, l1_size_bytes=1 * KB),
        mttop=replace(base.mttop, l1_size_bytes=1 * KB),
        l2=replace(base.l2, total_size_bytes=8 * KB, banks=2),
    )


# --------------------------------------------------------------------------- #
# Dotted-path overrides
# --------------------------------------------------------------------------- #
class OverrideError(ConfigurationError):
    """A dotted-path configuration override could not be applied."""


_SIZE_SUFFIXES = {
    "kib": 1024, "mib": 1024 ** 2, "gib": 1024 ** 3,
    "k": 1024, "m": 1024 ** 2, "g": 1024 ** 3,
    "kb": 1000, "mb": 1000 ** 2, "gb": 1000 ** 3,
}

_TRUE_WORDS = ("1", "true", "yes", "on")
_FALSE_WORDS = ("0", "false", "no", "off")


def parse_size(text: str) -> int:
    """Parse ``"8MiB"``-style sizes (also ``KiB``/``GiB``, ``K``/``M``/``G``,
    and decimal ``KB``/``MB``/``GB``) into a byte count."""
    stripped = text.strip()
    lowered = stripped.lower()
    for suffix in sorted(_SIZE_SUFFIXES, key=len, reverse=True):
        if lowered.endswith(suffix):
            number = stripped[: -len(suffix)].strip()
            try:
                return int(round(float(number) * _SIZE_SUFFIXES[suffix]))
            except ValueError:
                break
    return int(stripped)


def _coerce_override(value: object, current: object, path: str) -> object:
    """Coerce ``value`` (possibly a CLI string) to ``current``'s type."""
    if isinstance(current, bool):
        if isinstance(value, bool):
            return value
        if isinstance(value, str):
            lowered = value.strip().lower()
            if lowered in _TRUE_WORDS:
                return True
            if lowered in _FALSE_WORDS:
                return False
        raise OverrideError(
            f"override {path}: expected a boolean "
            f"({'/'.join(_TRUE_WORDS)} or {'/'.join(_FALSE_WORDS)}), "
            f"got {value!r}")
    if isinstance(current, int):
        if isinstance(value, int) and not isinstance(value, bool):
            return value
        if isinstance(value, str):
            try:
                return parse_size(value)
            except ValueError:
                pass
        raise OverrideError(
            f"override {path}: expected an integer "
            f"(sizes may use KiB/MiB/GiB suffixes), got {value!r}")
    if isinstance(current, float):
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            return float(value)
        if isinstance(value, str):
            try:
                return float(value)
            except ValueError:
                pass
        raise OverrideError(f"override {path}: expected a number, got {value!r}")
    if isinstance(current, str):
        if isinstance(value, str):
            return value
        raise OverrideError(f"override {path}: expected a string, got {value!r}")
    raise OverrideError(
        f"override {path}: field of type {type(current).__name__} "
        "cannot be overridden from a dotted path")


def _replace_path(config: object, segments: "list[str]", value: object,
                  path: str):
    head, rest = segments[0], segments[1:]
    if not dataclasses.is_dataclass(config) or isinstance(config, type):
        raise OverrideError(
            f"override {path}: {type(config).__name__} is not a "
            "configuration dataclass")
    names = [f.name for f in dataclasses.fields(config)]
    if head not in names:
        raise OverrideError(
            f"override {path}: {type(config).__name__} has no field "
            f"{head!r}; available fields: {', '.join(names)}")
    current = getattr(config, head)
    if rest:
        if not dataclasses.is_dataclass(current) or isinstance(current, type):
            raise OverrideError(
                f"override {path}: {head!r} is a plain "
                f"{type(current).__name__} value, not a nested section")
        new = _replace_path(current, rest, value, path)
    elif dataclasses.is_dataclass(current) and not isinstance(current, type):
        if type(value) is not type(current):
            raise OverrideError(
                f"override {path}: {head!r} is a nested "
                f"{type(current).__name__} section; override one of its "
                "fields (e.g. "
                f"{path}.{dataclasses.fields(current)[0].name}) or supply a "
                f"{type(current).__name__} instance")
        new = value
    else:
        new = _coerce_override(value, current, path)
    return replace(config, **{head: new})


def apply_overrides(config, overrides: "Mapping[str, object]"):
    """Rebuild a frozen configuration dataclass with dotted-path overrides.

    ``overrides`` maps dotted paths to new values, e.g.
    ``{"mttop.count": 20, "l2.total_size_bytes": "8MiB"}`` on a
    :class:`CCSVMSystemConfig`.  String values are coerced to the field's
    current type (integers understand ``KiB``/``MiB``/``GiB`` suffixes),
    and the dataclasses' own ``__post_init__`` validation still runs, so an
    override that produces an inconsistent system fails loudly.  Unknown
    paths and type mismatches raise :class:`OverrideError` naming the path
    and the valid alternatives.
    """
    for path in sorted(overrides):
        segments = [part for part in path.split(".") if part]
        if not segments:
            raise OverrideError(f"override path {path!r} is empty")
        config = _replace_path(config, segments, overrides[path], path)
    return config


def override_applies(config, path: str) -> bool:
    """True when the *whole* dotted ``path`` resolves on ``config``.

    Every intermediate segment must name a nested-dataclass field and the
    leaf must name a field of its section.  Used to decide which of a
    scenario's overrides apply to which system: ``mttop.count`` applies to
    the CCSVM chip but not to the APU baseline, and ``cpu.l1_hit_cycles``
    applies to the CCSVM chip but not to the APU — whose ``cpu`` section
    exists but has differently-named timing fields.
    """
    segments = [part for part in path.split(".") if part]
    if not segments:
        return False
    node = config
    for segment in segments[:-1]:
        if not dataclasses.is_dataclass(node) or isinstance(node, type) or \
                segment not in {f.name for f in dataclasses.fields(node)}:
            return False
        node = getattr(node, segment)
    if not dataclasses.is_dataclass(node) or isinstance(node, type):
        return False
    return segments[-1] in {f.name for f in dataclasses.fields(node)}
