"""The sweep service's job queue: priorities, fair share, requeue.

:class:`JobQueue` is deliberately plain single-threaded Python with no
asyncio (or locking) in it — the server drives it from one event loop,
and the unit tests drive it directly.  It owns every scheduling policy
decision so the server stays a thin I/O shell:

- **priority first**: a runnable point of a higher-priority job is always
  dispatched before any point of a lower-priority one.  Priorities
  preempt the *queue*, never running points — work already on a worker
  finishes.
- **fair share within a priority**: the queue tracks cumulative points
  dispatched per submitter and always serves the least-served submitter
  next, so two clients sweeping concurrently interleave roughly
  point-for-point instead of first-come-first-served job ordering.
  Cumulative (not instantaneous in-flight) counts make the policy
  deterministic: A, B, A, B, ... regardless of how fast results return.
- **worker-loss requeue**: a point in flight on a connection that drops
  goes back to the *front* of its job (it was next in line once already).
  After ``max_retries`` losses the point settles as failed — a point
  that kills every worker it lands on must not recirculate forever.

A point whose *function* fails settles as failed immediately (no retry):
deterministic sweeps fail deterministically, so a retry would just burn a
worker slot to reproduce the same traceback.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

from repro.api import JobSpec, JobState, JobStatus
from repro.errors import ReproError


class ServiceError(ReproError):
    """The sweep service (or a client talking to it) was misused."""


class ServiceJob:
    """One submitted job's scheduling state inside the service."""

    def __init__(self, job_id: str, seq: int, spec: JobSpec,
                 max_retries: int) -> None:
        self.job_id = job_id
        self.seq = seq                      #: submission order, ties fair share
        self.spec = spec
        self.max_retries = max_retries
        self.state = JobState.QUEUED
        #: undispatched point indices, in declaration order
        self.pending: Deque[int] = deque(range(len(spec.points)))
        #: point index -> worker key, for points currently on a worker
        self.inflight: Dict[int, object] = {}
        #: per-point dispatch-loss count (function failures never retry)
        self.losses: Dict[int, int] = {}
        #: per-point final outcome payloads, declaration-indexed
        self.results: List[Optional[Dict[str, object]]] = \
            [None] * len(spec.points)
        self.completed = 0
        self.failed = 0
        self.error: Optional[str] = None
        if not spec.points:
            self.state = JobState.DONE  # an empty job is trivially finished

    @property
    def total(self) -> int:
        return len(self.spec.points)

    def status(self) -> JobStatus:
        return JobStatus(job_id=self.job_id, name=self.spec.name,
                         submitter=self.spec.submitter,
                         priority=self.spec.priority, state=self.state,
                         total=self.total, completed=self.completed,
                         failed=self.failed, error=self.error)


class JobQueue:
    """All jobs the service has accepted, plus the scheduling policy."""

    def __init__(self, max_retries: int = 3) -> None:
        self.max_retries = max_retries
        self.jobs: Dict[str, ServiceJob] = {}
        self.draining = False
        self._seq = 0
        #: cumulative points dispatched per submitter (fair-share metric)
        self._served: Dict[str, int] = {}

    # -- intake ------------------------------------------------------------ #
    def submit(self, spec: JobSpec) -> ServiceJob:
        """Accept a job; raises :class:`ServiceError` while draining."""
        if self.draining:
            raise ServiceError(
                "service is draining and refuses new submissions")
        self._seq += 1
        job = ServiceJob(f"job-{self._seq}", self._seq, spec,
                         self.max_retries)
        self.jobs[job.job_id] = job
        return job

    def get(self, job_id: object) -> Optional[ServiceJob]:
        if not isinstance(job_id, str):
            return None
        return self.jobs.get(job_id)

    # -- scheduling -------------------------------------------------------- #
    def next_assignment(self, worker: object) -> Optional[Tuple[ServiceJob, int]]:
        """Pick and dispatch the next point for ``worker``.

        Policy: highest priority first; within a priority the submitter
        with the fewest cumulative dispatched points; submission order
        breaks remaining ties.  Returns ``None`` when nothing is runnable.
        """
        runnable = [job for job in self.jobs.values()
                    if job.pending and not job.state.terminal]
        if not runnable:
            return None
        top = max(job.spec.priority for job in runnable)
        job = min((j for j in runnable if j.spec.priority == top),
                  key=lambda j: (self._served.get(j.spec.submitter, 0), j.seq))
        index = job.pending.popleft()
        job.inflight[index] = worker
        if job.state is JobState.QUEUED:
            job.state = JobState.RUNNING
        submitter = job.spec.submitter
        self._served[submitter] = self._served.get(submitter, 0) + 1
        return job, index

    def has_work(self) -> bool:
        return any(job.pending and not job.state.terminal
                   for job in self.jobs.values())

    # -- settlement -------------------------------------------------------- #
    def complete(self, job: ServiceJob, index: int,
                 payload: Dict[str, object]) -> bool:
        """Record one point's final outcome.

        ``payload`` is ``{"ok": True, "result": blob}`` or ``{"ok": False,
        "error": text}``.  Returns ``False`` when the outcome was dropped —
        the point already settled (a duplicate or post-requeue straggler
        reply) or the job is already terminal (a late reply after cancel).
        """
        if not 0 <= index < job.total:
            return False
        if job.state.terminal or job.results[index] is not None:
            return False
        job.inflight.pop(index, None)
        job.results[index] = payload
        if payload.get("ok"):
            job.completed += 1
        else:
            job.failed += 1
            if job.error is None:
                entry = job.spec.points[index]
                job.error = (f"{entry.get('spec')}:{entry.get('point_id')}: "
                             f"{payload.get('error')}")
        if job.completed + job.failed == job.total:
            job.state = JobState.FAILED if job.failed else JobState.DONE
        return True

    def requeue_worker(self, worker: object
                       ) -> List[Tuple[ServiceJob, int, Dict[str, object]]]:
        """A worker connection dropped: recover its in-flight points.

        Each lost point is requeued at the front of its job, unless it has
        now been lost more than ``max_retries`` times — then it settles as
        failed.  Returns the ``(job, index, payload)`` settlements so the
        server can notify watchers (requeued points produce no events).
        """
        settled = []
        for job in self.jobs.values():
            if job.state.terminal:
                continue
            lost = sorted(index for index, key in job.inflight.items()
                          if key == worker)
            for index in reversed(lost):  # appendleft keeps ascending order
                del job.inflight[index]
                job.losses[index] = job.losses.get(index, 0) + 1
                if job.losses[index] > job.max_retries:
                    payload = {
                        "ok": False,
                        "error": (f"worker connection lost "
                                  f"{job.losses[index]} times running this "
                                  f"point; giving up"),
                    }
                    if self.complete(job, index, payload):
                        settled.append((job, index, payload))
                else:
                    job.pending.appendleft(index)
        return settled

    def cancel(self, job_id: object) -> Optional[ServiceJob]:
        """Cancel a job; ``None`` if unknown or already terminal.

        Undispatched points never run; in-flight results arriving later
        are dropped by :meth:`complete`'s terminal-state check.
        """
        job = self.get(job_id)
        if job is None or job.state.terminal:
            return None
        job.pending.clear()
        job.state = JobState.CANCELLED
        return job

    # -- introspection ----------------------------------------------------- #
    def unfinished(self) -> int:
        """Jobs not yet in a terminal state (what a drain waits on)."""
        return sum(1 for job in self.jobs.values() if not job.state.terminal)

    def statuses(self, job_id: Optional[str] = None) -> List[JobStatus]:
        """Status snapshots, in submission order (or just one job's)."""
        if job_id is not None:
            job = self.get(job_id)
            if job is None:
                raise ServiceError(f"unknown job {job_id!r}")
            return [job.status()]
        return [job.status()
                for job in sorted(self.jobs.values(), key=lambda j: j.seq)]
