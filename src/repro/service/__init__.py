"""The always-on sweep service (``repro serve``) and its clients.

The service owns a worker fleet (the same ``repro worker`` processes the
distributed backend uses — protocol-negotiated, so v2 workers interop
unchanged) and a named job queue with priorities and fair-share
scheduling across submitters.  Jobs are declarative
:class:`~repro.api.JobSpec` payloads — ``module:qualname`` function
references, never pickled callables.

- :mod:`repro.service.jobs` — the queue and scheduling policy (pure,
  loop-free Python).
- :mod:`repro.service.server` — the asyncio server behind ``repro
  serve``: worker fleet, result streaming, SIGTERM drain.
- :mod:`repro.service.client` — :class:`~repro.service.client.ServiceClient`
  (the ``repro submit``/``status``/``result``/``cancel`` plumbing) and
  :class:`~repro.service.client.ServiceBackend` (``--backend service``).
"""

from repro.service.client import (
    ServiceBackend,
    ServiceClient,
    default_service_address,
)
from repro.service.jobs import JobQueue, ServiceError, ServiceJob
from repro.service.server import SweepService, run_service

__all__ = [
    "JobQueue",
    "ServiceBackend",
    "ServiceClient",
    "ServiceError",
    "ServiceJob",
    "SweepService",
    "default_service_address",
    "run_service",
]
