"""The always-on sweep service behind ``repro serve``.

One asyncio event loop owns everything: the listening socket, one
connection handler per peer, the worker fleet and the
:class:`~repro.service.jobs.JobQueue`.  Peers self-identify by their first
frame — workers send the same ``hello`` they send a sweep coordinator
(an unmodified v2 ``repro worker`` joins the fleet untouched), clients
send ``client_hello``.  Both get a ``welcome`` frame back carrying the
negotiated protocol version.

Per worker the server runs a *dispatch* task and a *receive* task.
Dispatch pulls assignments from the queue (priority + fair share, see
:mod:`repro.service.jobs`), keeps at most ``slots`` points outstanding
(the same credit scheme the distributed backend uses) and tags each
``point`` frame with a job-scoped ``"<job>/<index>"`` task id.  Receive
matches ``result`` frames back by task id, settles the point and streams
a ``point_result`` event to every watcher of that job.  When a worker
connection drops, its in-flight points are requeued for the survivors —
a killed worker never loses a point.

Shutdown is two-tier: SIGTERM *drains* (refuse new submissions, finish
every accepted job, then exit) while SIGINT *stops* (cancel unfinished
jobs and exit now).  Both end with ``shutdown`` frames to the fleet so
workers exit cleanly.
"""

from __future__ import annotations

import asyncio
import sys
import time
from typing import Dict, List, Optional, Tuple

from repro.api import JobSpec
from repro.harness.runner import point_seed
from repro.harness.spec import point_func_ref
from repro.harness.wire import (
    PROTOCOL_VERSION,
    decode_point,
    decode_result,
    hello_slots,
    make_task_id,
    negotiate_proto,
    parse_address,
    read_frame_async,
    write_frame_async,
)
from repro.service.jobs import JobQueue, ServiceError, ServiceJob
from repro.store import (
    FileStore,
    Provenance,
    ResultStore,
    StoreEntry,
    kwargs_digest,
    point_cache_key,
)

#: How long a new connection has to identify itself before being dropped.
HELLO_TIMEOUT = 10.0


class _WorkerLink:
    """Server-side state of one connected worker."""

    def __init__(self, key: int, label: str, slots: int, proto: int,
                 writer: asyncio.StreamWriter) -> None:
        self.key = key
        self.label = label
        self.slots = slots
        self.proto = proto
        self.writer = writer
        self.credits = slots
        #: task id -> (job_id, point index, dispatch instant) for points
        #: on this connection
        self.inflight: Dict[str, Tuple[str, int, float]] = {}
        self.points_done = 0
        self.closed = False
        self.wake = asyncio.Event()


class SweepService:
    """The ``repro serve`` server.  Construct, then ``await serve()``."""

    def __init__(self, bind: str = "127.0.0.1:0", max_retries: int = 3,
                 quiet: bool = False,
                 store: Optional[ResultStore] = None) -> None:
        self.bind = bind
        self.queue = JobQueue(max_retries=max_retries)
        self.quiet = quiet
        #: Result store every successful point is recorded to (with its
        #: job id, submitter and worker in the provenance), so the fleet's
        #: output survives the job — a coordinator that later runs the
        #: same points against this store gets them all from cache.
        self.store = store
        self.address: Optional[Tuple[str, int]] = None
        self._server: Optional[asyncio.base_events.Server] = None
        self._workers: Dict[int, _WorkerLink] = {}
        self._next_worker_key = 0
        #: per-job event queues of connected ``watch`` streams
        self._watchers: Dict[str, List[asyncio.Queue]] = {}
        #: per-job "reached a terminal state" latches (``result`` waits here)
        self._finished: Dict[str, asyncio.Event] = {}
        self._closing: Optional[asyncio.Event] = None
        #: live connection-handler tasks -> their writers, for clean shutdown
        self._connections: Dict["asyncio.Task", asyncio.StreamWriter] = {}

    # -- lifecycle --------------------------------------------------------- #
    async def start(self) -> Tuple[str, int]:
        """Bind the listening socket; returns the bound ``(host, port)``."""
        self._closing = asyncio.Event()
        host, port = parse_address(self.bind)
        self._server = await asyncio.start_server(self._handle_connection,
                                                  host, port)
        bound = self._server.sockets[0].getsockname()
        self.address = (host, bound[1])
        self._log(f"listening on {host}:{bound[1]} "
                  f"(protocol v{PROTOCOL_VERSION})")
        return self.address

    async def serve(self) -> None:
        """Serve until a drain completes or :meth:`request_stop` fires."""
        if self._server is None:
            await self.start()
        assert self._closing is not None
        await self._closing.wait()
        await self._shutdown()

    def request_drain(self) -> None:
        """SIGTERM: refuse new submissions, finish accepted jobs, exit.

        Loop-thread only (signal handler or ``call_soon_threadsafe``).
        """
        if self.queue.draining:
            return
        self.queue.draining = True
        self._log(f"draining: refusing new submissions, "
                  f"{self.queue.unfinished()} job(s) still unfinished")
        self._maybe_finish_drain()

    def request_stop(self) -> None:
        """SIGINT: cancel unfinished jobs and exit now.  Loop-thread only."""
        self.queue.draining = True
        for job in list(self.queue.jobs.values()):
            if self.queue.cancel(job.job_id) is not None:
                self._notify_terminal(job)
        self._log("stopping")
        if self._closing is not None:
            self._closing.set()

    async def _shutdown(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for link in list(self._workers.values()):
            link.closed = True
            link.wake.set()
            try:
                await write_frame_async(link.writer, {"type": "shutdown"})
            except (OSError, ConnectionError):
                pass
        # Closing every connection EOFs the handlers out of their reads, so
        # they finish *normally* (requeue bookkeeping and all) instead of
        # being cancelled mid-await when the event loop is torn down.
        for writer in self._connections.values():
            writer.close()
        if self._connections:
            await asyncio.wait(set(self._connections), timeout=5.0)
        for task in list(self._connections):
            if not task.done():  # e.g. a watch of a job that never ends
                task.cancel()
        self._log("stopped")

    def _log(self, message: str) -> None:
        if not self.quiet:
            print(f"repro serve: {message}", file=sys.stderr, flush=True)

    # -- connection intake ------------------------------------------------- #
    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._connections[task] = writer
        try:
            try:
                first = await asyncio.wait_for(read_frame_async(reader),
                                               timeout=HELLO_TIMEOUT)
            except (asyncio.TimeoutError, ConnectionError, OSError,
                    ValueError):
                return
            if first is None:
                return
            kind = first.get("type")
            if kind == "hello":
                await self._serve_worker(first, reader, writer)
            elif kind == "client_hello":
                await self._serve_client(first, reader, writer)
            else:
                await write_frame_async(
                    writer, {"type": "error",
                             "error": f"expected hello or client_hello, "
                                      f"got {kind!r}"})
        except (OSError, ConnectionError, ValueError):
            pass  # a dropped peer is routine fleet churn, not a server error
        finally:
            if task is not None:
                self._connections.pop(task, None)
            try:
                writer.close()
            except OSError:
                pass

    # -- workers ----------------------------------------------------------- #
    async def _serve_worker(self, hello: Dict[str, object],
                            reader: asyncio.StreamReader,
                            writer: asyncio.StreamWriter) -> None:
        proto = negotiate_proto(hello)
        slots = hello_slots(hello)
        peer = writer.get_extra_info("peername") or ("?", 0)
        label = f"{peer[0]}:{peer[1]}/pid={hello.get('pid', '?')}"
        self._next_worker_key += 1
        link = _WorkerLink(self._next_worker_key, label, slots, proto, writer)
        self._workers[link.key] = link
        self._log(f"worker {label} joined: {slots} slot(s), protocol v{proto}")
        try:
            await write_frame_async(writer, {"type": "welcome", "proto": proto,
                                             "role": "worker"})
            receive = asyncio.ensure_future(self._worker_receive(link, reader))
            dispatch = asyncio.ensure_future(self._worker_dispatch(link))
            done, pending = await asyncio.wait(
                {receive, dispatch}, return_when=asyncio.FIRST_COMPLETED)
            link.closed = True
            link.wake.set()
            for task in pending:
                task.cancel()
            await asyncio.gather(*pending, return_exceptions=True)
            for task in done:
                task.exception()  # retrieve, so nothing logs as unhandled
        finally:
            link.closed = True
            self._workers.pop(link.key, None)
            requeued = len(link.inflight)
            for job, index, payload in self.queue.requeue_worker(link.key):
                self._emit_point(job, index, payload)
                requeued -= 1
            self._log(f"worker {label} left after {link.points_done} "
                      f"point(s); requeued {max(requeued, 0)} in-flight")
            self._kick_all()

    async def _worker_dispatch(self, link: _WorkerLink) -> None:
        """Push assignments to one worker, ``slots`` at a time."""
        while True:
            link.wake.clear()
            if link.closed:
                return
            while link.credits > 0 and not link.closed:
                assignment = self.queue.next_assignment(link.key)
                if assignment is None:
                    break
                job, index = assignment
                task_id = make_task_id(job.job_id, index)
                link.credits -= 1
                link.inflight[task_id] = (job.job_id, index, time.monotonic())
                entry = job.spec.points[index]
                await write_frame_async(
                    link.writer,
                    {"type": "point", "task_id": task_id,
                     "point": entry["point"]})
            await link.wake.wait()

    async def _worker_receive(self, link: _WorkerLink,
                              reader: asyncio.StreamReader) -> None:
        """Settle results from one worker until its connection ends."""
        while True:
            try:
                frame = await read_frame_async(reader)
            except (ConnectionError, OSError, ValueError):
                return
            if frame is None:
                return
            if frame.get("type") != "result":
                continue
            task_id = frame.get("task_id")
            entry = link.inflight.pop(task_id, None) \
                if isinstance(task_id, str) else None
            if entry is None:
                continue  # stale or fabricated task id
            link.credits += 1
            link.points_done += 1
            job_id, index, started = entry
            job = self.queue.get(job_id)
            if job is not None:
                if frame.get("ok"):
                    payload: Dict[str, object] = {
                        "ok": True, "result": str(frame.get("result", "")),
                        "worker": link.label}
                else:
                    payload = {"ok": False,
                               "error": str(frame.get("error",
                                                      "unknown worker error"))}
                if self.queue.complete(job, index, payload):
                    if payload["ok"]:
                        self._store_result(
                            job, index, str(payload["result"]),
                            worker=link.label,
                            duration_s=round(time.monotonic() - started, 6))
                    self._emit_point(job, index, payload)
            link.wake.set()  # a credit came back; dispatch may proceed

    def _kick_all(self) -> None:
        for link in self._workers.values():
            link.wake.set()

    def _store_result(self, job: ServiceJob, index: int, blob: str,
                      worker: str, duration_s: Optional[float]) -> None:
        """Record one successful point in the service's result store.

        Best-effort: a store failure (full disk, unpicklable payload from
        a hostile worker) is logged and the job proceeds — durability is
        an amenity of the service, not a correctness requirement.
        """
        if self.store is None:
            return
        try:
            point = decode_point(str(job.spec.points[index]["point"]))
            result = decode_result(blob)
            provenance = Provenance.collect(
                spec=point.spec, point_id=point.point_id,
                func=point_func_ref(point),
                kwargs_digest=kwargs_digest(point.kwargs),
                seed=point_seed(point), backend="service", worker=worker,
                duration_s=duration_s, job_id=job.job_id,
                submitter=job.spec.submitter)
            entry = StoreEntry(point_id=point.point_id, rows=result.rows,
                               stats=result.stats, provenance=provenance)
            self.store.store(point.spec, point_cache_key(point), entry)
        except Exception as error:  # noqa: BLE001 - never take the job down
            self._log(f"store write failed for {job.job_id}[{index}]: "
                      f"{type(error).__name__}: {error}")

    # -- event fan-out ----------------------------------------------------- #
    def _emit_point(self, job: ServiceJob, index: int,
                    payload: Dict[str, object]) -> None:
        event = {"type": "point_result", "job_id": job.job_id,
                 "index": index}
        event.update(payload)
        for watcher in self._watchers.get(job.job_id, []):
            watcher.put_nowait(event)
        if job.state.terminal:
            self._notify_terminal(job)

    def _notify_terminal(self, job: ServiceJob) -> None:
        event = {"type": "job_end", "job_id": job.job_id,
                 "state": job.state.value, "error": job.error}
        for watcher in self._watchers.get(job.job_id, []):
            watcher.put_nowait(event)
        self._finished.setdefault(job.job_id, asyncio.Event()).set()
        self._log(f"job {job.job_id} ({job.spec.name}) {job.state.value}: "
                  f"{job.completed}/{job.total} ok, {job.failed} failed")
        self._maybe_finish_drain()

    def _maybe_finish_drain(self) -> None:
        if self.queue.draining and not self.queue.unfinished() \
                and self._closing is not None:
            self._closing.set()

    # -- clients ----------------------------------------------------------- #
    async def _serve_client(self, hello: Dict[str, object],
                            reader: asyncio.StreamReader,
                            writer: asyncio.StreamWriter) -> None:
        await write_frame_async(writer, {"type": "welcome",
                                         "proto": negotiate_proto(hello),
                                         "role": "client"})
        while True:
            frame = await read_frame_async(reader)
            if frame is None:
                return
            kind = frame.get("type")
            try:
                if kind == "submit":
                    await self._client_submit(frame, writer)
                elif kind == "status":
                    await self._client_status(frame, writer)
                elif kind == "result":
                    await self._client_result(frame, writer)
                elif kind == "watch":
                    await self._client_watch(frame, writer)
                elif kind == "cancel":
                    await self._client_cancel(frame, writer)
                else:
                    raise ServiceError(f"unknown request type {kind!r}")
            except (ServiceError, ValueError) as error:
                await write_frame_async(writer, {"type": "error",
                                                 "error": str(error)})

    async def _client_submit(self, frame: Dict[str, object],
                             writer: asyncio.StreamWriter) -> None:
        spec = JobSpec.from_json(frame.get("job"))  # ValueError -> error frame
        job = self.queue.submit(spec)               # ServiceError while draining
        self._finished.setdefault(job.job_id, asyncio.Event())
        self._log(f"job {job.job_id} ({spec.name}) submitted by "
                  f"{spec.submitter}: {job.total} point(s), "
                  f"priority {spec.priority}")
        if job.state.terminal:
            self._notify_terminal(job)  # an empty job finishes at submission
        self._kick_all()
        await write_frame_async(writer, {"type": "submitted",
                                         "job_id": job.job_id,
                                         "status": job.status().to_json()})

    async def _client_status(self, frame: Dict[str, object],
                             writer: asyncio.StreamWriter) -> None:
        target = frame.get("job")
        statuses = self.queue.statuses(
            str(target) if target is not None else None)
        workers = [{"label": link.label, "slots": link.slots,
                    "proto": link.proto, "inflight": len(link.inflight),
                    "points_done": link.points_done}
                   for link in self._workers.values()]
        await write_frame_async(
            writer, {"type": "status", "draining": self.queue.draining,
                     "jobs": [status.to_json() for status in statuses],
                     "workers": workers})

    async def _client_result(self, frame: Dict[str, object],
                             writer: asyncio.StreamWriter) -> None:
        job_id = str(frame.get("job"))
        job = self.queue.get(job_id)
        if job is None:
            raise ServiceError(f"unknown job {job_id!r}")
        if not job.state.terminal:
            await self._finished.setdefault(job_id, asyncio.Event()).wait()
        points = []
        for index, entry in enumerate(job.spec.points):
            payload = job.results[index] or {
                "ok": False, "error": "point was cancelled before it ran"}
            record = {"index": index, "spec": entry.get("spec"),
                      "point_id": entry.get("point_id"),
                      "group": entry.get("group")}
            record.update(payload)
            points.append(record)
        await write_frame_async(
            writer, {"type": "result", "job_id": job.job_id,
                     "state": job.state.value, "error": job.error,
                     "meta": dict(job.spec.meta), "points": points})

    async def _client_watch(self, frame: Dict[str, object],
                            writer: asyncio.StreamWriter) -> None:
        """Stream a job's events; the reply sequence ends with ``job_end``."""
        job_id = str(frame.get("job"))
        job = self.queue.get(job_id)
        if job is None:
            raise ServiceError(f"unknown job {job_id!r}")
        # Snapshot already-settled points and register the live queue in the
        # same loop step, so nothing falls between backlog and stream; the
        # `sent` set drops the duplicates that overlap produces.
        events: asyncio.Queue = asyncio.Queue()
        self._watchers.setdefault(job_id, []).append(events)
        backlog = [(index, payload)
                   for index, payload in enumerate(job.results)
                   if payload is not None]
        ended_already = job.state.terminal
        sent = set()
        try:
            for index, payload in backlog:
                sent.add(index)
                event = {"type": "point_result", "job_id": job_id,
                         "index": index}
                event.update(payload)
                await write_frame_async(writer, event)
            if ended_already:
                await write_frame_async(
                    writer, {"type": "job_end", "job_id": job_id,
                             "state": job.state.value, "error": job.error})
                return
            while True:
                event = await events.get()
                if event.get("type") == "point_result" \
                        and event.get("index") in sent:
                    continue
                await write_frame_async(writer, event)
                if event.get("type") == "job_end":
                    return
        finally:
            watchers = self._watchers.get(job_id, [])
            if events in watchers:
                watchers.remove(events)

    async def _client_cancel(self, frame: Dict[str, object],
                             writer: asyncio.StreamWriter) -> None:
        job_id = str(frame.get("job"))
        job = self.queue.get(job_id)
        if job is None:
            raise ServiceError(f"unknown job {job_id!r}")
        cancelled = self.queue.cancel(job_id)
        if cancelled is not None:
            self._log(f"job {job_id} cancelled by client")
            self._notify_terminal(cancelled)
        await write_frame_async(writer, {"type": "cancelled",
                                         "job_id": job_id,
                                         "status": job.status().to_json()})


def run_service(bind: str, max_retries: int = 3, quiet: bool = False,
                ready_line: bool = True,
                cache_dir: Optional[str] = None) -> int:
    """Run a :class:`SweepService` until it drains or is stopped.

    The blocking entry point behind ``repro serve``: installs SIGTERM →
    drain and SIGINT → stop handlers (where the platform supports them)
    and prints a parseable ``listening on HOST:PORT`` line to stdout so
    scripts can discover an ephemeral port.  With ``cache_dir`` the
    service records every successful point into that result store.
    """
    import contextlib
    import signal

    store = FileStore(cache_dir) if cache_dir else None
    service = SweepService(bind=bind, max_retries=max_retries, quiet=quiet,
                           store=store)

    async def _main() -> None:
        host, port = await service.start()
        if ready_line:
            print(f"listening on {host}:{port}", flush=True)
        loop = asyncio.get_running_loop()
        with contextlib.suppress(NotImplementedError, RuntimeError):
            loop.add_signal_handler(signal.SIGTERM, service.request_drain)
            loop.add_signal_handler(signal.SIGINT, service.request_stop)
        await service.serve()

    asyncio.run(_main())
    return 0
