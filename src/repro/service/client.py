"""Client side of the sweep service: :class:`ServiceClient` and the
``--backend service`` :class:`ServiceBackend`.

:class:`ServiceClient` is a thin synchronous wrapper over the v3 client
frames (``submit`` / ``status`` / ``result`` / ``watch`` / ``cancel``) —
the ``repro submit``-family CLI commands are built on it.

:class:`ServiceBackend` plugs the service into the unchanged
:class:`~repro.harness.runner.SweepRunner`: ``run_iter`` submits the
pending points as one job, watches it, and yields each point's result the
moment the service streams it back — so the runner's incremental cache
writes and declaration-order merge work identically to every other
backend, and ``repro run figure5 --backend service`` is byte-for-byte the
serial output.
"""

from __future__ import annotations

import os
import socket
import threading
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.api import JobSpec, JobStatus
from repro.harness.backends import (
    BackendResult,
    ExecutionBackend,
    PointFailure,
    default_service_address,
    enable_keepalive,
)
from repro.harness.spec import SweepPoint
from repro.harness.wire import (
    PROTOCOL_VERSION,
    decode_result,
    parse_address,
    recv_frame,
    send_frame,
)
from repro.service.jobs import ServiceError

__all__ = ["ServiceBackend", "ServiceClient", "default_service_address"]


class ServiceClient:
    """One client connection to a running ``repro serve``.

    Lazily connected; usable as a context manager.  Requests are
    strictly sequential per connection (the service replies in order),
    so use one client per thread.
    """

    def __init__(self, connect: Optional[str] = None,
                 timeout: float = 10.0) -> None:
        self.connect = connect or default_service_address()
        self.timeout = timeout
        self._sock: Optional[socket.socket] = None

    # -- plumbing ---------------------------------------------------------- #
    def _ensure(self) -> socket.socket:
        if self._sock is not None:
            return self._sock
        host, port = parse_address(self.connect)
        try:
            sock = socket.create_connection((host, port),
                                            timeout=self.timeout)
        except OSError as error:
            raise ServiceError(
                f"could not reach the sweep service at {self.connect} "
                f"(is `repro serve` running?): {error}") from error
        try:
            enable_keepalive(sock)
            send_frame(sock, {"type": "client_hello",
                              "proto": PROTOCOL_VERSION, "pid": os.getpid()})
            welcome = recv_frame(sock)
        except (OSError, ConnectionError) as error:
            sock.close()
            raise ServiceError(
                f"handshake with {self.connect} failed: {error}") from error
        if not welcome or welcome.get("type") != "welcome":
            sock.close()
            raise ServiceError(
                f"{self.connect} is not a sweep service "
                f"(no welcome frame, got {welcome!r})")
        sock.settimeout(None)  # point execution takes as long as it takes
        self._sock = sock
        return sock

    def _request(self, frame: Dict[str, object]) -> Dict[str, object]:
        sock = self._ensure()
        try:
            send_frame(sock, frame)
            reply = recv_frame(sock)
        except (OSError, ConnectionError) as error:
            self.close()
            raise ServiceError(
                f"lost the sweep service at {self.connect}: {error}"
            ) from error
        if reply is None:
            self.close()
            raise ServiceError(
                f"the sweep service at {self.connect} closed the connection")
        if reply.get("type") == "error":
            raise ServiceError(str(reply.get("error", "unknown error")))
        return reply

    def close(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            finally:
                self._sock = None

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- requests ---------------------------------------------------------- #
    def submit(self, spec: JobSpec) -> str:
        """Submit a job; returns its service-assigned job id."""
        reply = self._request({"type": "submit", "job": spec.to_json()})
        return str(reply.get("job_id"))

    def status_payload(self, job_id: Optional[str] = None
                       ) -> Dict[str, object]:
        """The raw ``status`` reply: jobs, workers, draining flag."""
        frame: Dict[str, object] = {"type": "status"}
        if job_id is not None:
            frame["job"] = job_id
        return self._request(frame)

    def status(self, job_id: Optional[str] = None) -> List[JobStatus]:
        payload = self.status_payload(job_id)
        jobs = payload.get("jobs")
        return [JobStatus.from_json(entry)
                for entry in (jobs if isinstance(jobs, list) else [])]

    def result(self, job_id: str) -> Dict[str, object]:
        """Block until ``job_id`` settles; returns the full result reply."""
        return self._request({"type": "result", "job": job_id})

    def watch(self, job_id: str) -> Iterator[Dict[str, object]]:
        """Stream a job's events; ends after the ``job_end`` frame."""
        sock = self._ensure()
        send_frame(sock, {"type": "watch", "job": job_id})
        while True:
            frame = recv_frame(sock)
            if frame is None:
                self.close()
                raise ServiceError(
                    f"the sweep service at {self.connect} closed the "
                    f"connection mid-watch")
            if frame.get("type") == "error":
                raise ServiceError(str(frame.get("error", "unknown error")))
            yield frame
            if frame.get("type") == "job_end":
                return

    def cancel(self, job_id: str) -> JobStatus:
        reply = self._request({"type": "cancel", "job": job_id})
        return JobStatus.from_json(reply.get("status"))


class ServiceBackend(ExecutionBackend):
    """Run sweep points as one job on a running ``repro serve``.

    One :meth:`run_iter` call is one service job; the job's priority and
    submitter identity come from the constructor.  :meth:`cancel` opens a
    short second connection to cancel the in-flight job server-side (the
    watch stream then ends with its ``job_end``), so a DSE early-stop
    releases the fleet for other submitters immediately.
    """

    name = "service"

    def __init__(self, connect: Optional[str] = None, priority: int = 0,
                 submitter: Optional[str] = None,
                 timeout: float = 10.0) -> None:
        self.connect = connect or default_service_address()
        self.priority = priority
        self.submitter = submitter or \
            f"{socket.gethostname()}/pid={os.getpid()}"
        self.timeout = timeout
        self._job_lock = threading.Lock()
        self._job_id: Optional[str] = None
        #: run_iter index -> worker label, for provenance (see SweepRunner)
        self.last_point_workers: Dict[int, str] = {}

    def run_iter(self, points: Sequence[SweepPoint]
                 ) -> Iterator[Tuple[int, BackendResult]]:
        points = list(points)
        self.last_point_workers = {}
        if not points:
            return
        spec = JobSpec.from_points(points, name=points[0].spec,
                                   submitter=self.submitter,
                                   priority=self.priority)
        with ServiceClient(self.connect, timeout=self.timeout) as client:
            job_id = client.submit(spec)
            with self._job_lock:
                self._job_id = job_id
            if self._cancelled:
                # cancel() raced the submission; cancel server-side now.
                self._cancel_remote(job_id)
            try:
                for frame in client.watch(job_id):
                    if frame.get("type") != "point_result":
                        continue  # job_end ends the watch generator itself
                    index = frame.get("index")
                    if not isinstance(index, int) \
                            or not 0 <= index < len(points):
                        continue
                    worker = frame.get("worker")
                    if isinstance(worker, str):
                        self.last_point_workers[index] = worker
                    yield index, self._decode(points[index], frame)
            finally:
                with self._job_lock:
                    self._job_id = None

    @staticmethod
    def _decode(point: SweepPoint, frame: Dict[str, object]) -> BackendResult:
        if not frame.get("ok"):
            return PointFailure(spec=point.spec, point_id=point.point_id,
                                error=str(frame.get("error",
                                                    "unknown service error")))
        try:
            return decode_result(str(frame.get("result", "")))
        except Exception as error:  # noqa: BLE001 - reported per point
            return PointFailure(spec=point.spec, point_id=point.point_id,
                                error=f"{type(error).__name__}: {error}")

    def cancel(self) -> None:
        super().cancel()
        with self._job_lock:
            job_id = self._job_id
        if job_id is not None:
            self._cancel_remote(job_id)

    def _cancel_remote(self, job_id: str) -> None:
        try:
            with ServiceClient(self.connect, timeout=self.timeout) as client:
                client.cancel(job_id)
        except ServiceError:
            pass  # the job may have settled (or the service died) already
