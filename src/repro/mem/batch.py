"""The batched/columnar memory-access engine.

Every simulated memory operation normally pays a full Python call chain —
``port.load`` → TLB lookup → coherence probe → data access — and that
per-word host overhead, not the modeled hardware, bounds wall-clock time.
This engine amortizes the chain over *address vectors*: a core (or
workload) hands the port a whole batch of operations at once, and the
common case — TLB hit followed by an L1 hit with sufficient permission —
is classified and executed columnar.

Correctness argument (why results are bit-for-bit identical):

* The engine processes each batch as alternating *prefixes* and
  *residues*.  A prefix is the maximal run of ops, against the current
  TLB/cache state, that are pure fast-path hits; everything else (TLB
  miss, L1 miss, store upgrade from SHARED/OWNED, atomics) is residue and
  executes one-by-one through the *unchanged* scalar port methods.
* Within a prefix, hits never evict, invalidate, fault or downgrade:
  a load hit only touches replacement state, and a store hit's
  ``after_local_store`` transition (E→M, M→M) never *reduces* permission.
  Classifying the whole prefix against the gather-time state is therefore
  exactly equivalent to classifying op-by-op.
* The gather phases (``TLB.translate_batch``, ``cache.gather_batch``) are
  pure; commit applies LRU moves/touches once per same-page/same-line run
  (idempotent for recency) and counters in bulk, so the post-batch
  TLB/cache/counter state equals the scalar path's.
* Data reads/writes run in op order, so store→load forwarding inside a
  batch behaves exactly like the scalar sequence.

Column arithmetic (key extraction, run detection, offset application) is
delegated to :mod:`repro.sim.columnar`, which picks a numpy kernel when
numpy is importable and a pure-Python ``array``-module kernel otherwise
(``REPRO_NO_NUMPY=1`` forces the latter); both produce identical results.

The engine disengages — falling back to a scalar loop over the same port
methods — when a port has no TLB, runs with ``fast_path=False``, has a
sequential-consistency checker attached, or has ``batch_enabled=False``
(the ``batch_access`` config knob).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.coherence.states import MOESIState

#: Operation kind codes used in batch columns.
OP_LOAD = 0
OP_STORE = 1
OP_ATOMIC_ADD = 2
OP_ATOMIC_CAS = 3

_WORD_MASK = (1 << 64) - 1
_SIGN_BIT = 1 << 63
_TWO_POW_64 = 1 << 64

# Enum members are singletons, so per-run permission classification is a
# couple of identity checks instead of an isinstance plus an enum property
# call (enum hashing and properties are Python-level and dominate the trim
# loop).  A non-MOESI (transient) state matches none of these, so it
# breaks the prefix exactly like the isinstance guard did.
_MODIFIED = MOESIState.MODIFIED
_OWNED = MOESIState.OWNED
_EXCLUSIVE = MOESIState.EXCLUSIVE
_SHARED = MOESIState.SHARED

#: A batch op: ``(kind, vaddr, operand_a, operand_b)``.  ``operand_a`` is
#: the stored value / atomic delta / CAS expected value; ``operand_b`` is
#: the CAS new value (0 otherwise).
BatchOp = Tuple[int, int, int, int]

#: Batch results: per-op values (None for stores) and latencies.
BatchResult = Tuple[List[object], List[int]]


def _scalar_op(port, kind: int, vaddr: int, a: int, b: int):
    """Execute one op through the unchanged scalar port methods."""
    if kind == OP_LOAD:
        return port.load(vaddr)
    if kind == OP_STORE:
        return None, port.store(vaddr, a)
    if kind == OP_ATOMIC_ADD:
        return port.atomic_add(vaddr, a)
    if kind == OP_ATOMIC_CAS:
        return port.atomic_cas(vaddr, a, b)
    raise ValueError(f"unknown batch op kind {kind!r}")


def scalar_run_batch(port, vaddrs: Sequence[int],
                     kinds: Optional[Sequence[int]],
                     vals: Optional[Sequence[int]],
                     vals2: Optional[Sequence[int]]) -> BatchResult:
    """Reference implementation: a plain loop over the scalar port methods.

    Works against any :class:`~repro.mem.port.MemoryPort`; used when the
    columnar engine is disengaged and as the equivalence-test oracle.
    """
    n = len(vaddrs)
    values: List[object] = [None] * n
    lats = [0] * n
    if kinds is None:
        load = port.load
        for i in range(n):
            values[i], lats[i] = load(vaddrs[i])
        return values, lats
    for i in range(n):
        values[i], lats[i] = _scalar_op(
            port, kinds[i], vaddrs[i],
            vals[i] if vals is not None else 0,
            vals2[i] if vals2 is not None else 0)
    return values, lats


# --------------------------------------------------------------------------- #
# CCSVM coherent port engine
# --------------------------------------------------------------------------- #
def run_ccsvm_batch(port, vaddrs: Sequence[int],
                    kinds: Optional[Sequence[int]],
                    vals: Optional[Sequence[int]],
                    vals2: Optional[Sequence[int]]) -> BatchResult:
    """Run a batch against a :class:`~repro.mem.port.CoreMemoryPort`.

    ``kinds is None`` means every op is a load (the ``load_batch`` fast
    lane).  The caller guarantees the port is batch-eligible (TLB present
    with standard pages, fast path on, no SC checker).
    """
    n = len(vaddrs)
    values: List[object] = [None] * n
    lats = [0] * n
    if n == 0:
        return values, lats

    tlb = port.tlb
    coherence = port.coherence
    info = coherence._l1s.get(port.node)
    if info is None:
        # Match the scalar path's error for an unregistered node.
        return scalar_run_batch(port, vaddrs, kinds, vals, vals2)
    cache = info.cache
    hit_ps = info.hit_latency_ps
    stats = coherence.stats
    words = port.physical_memory._words

    i = 0
    while i < n:
        kind = kinds[i] if kinds is not None else OP_LOAD
        if kind == OP_ATOMIC_ADD or kind == OP_ATOMIC_CAS:
            # Atomics are always residue: the scalar path handles both the
            # L1-hit and the transaction case identically either way.
            values[i], lats[i] = _scalar_op(
                port, kind, vaddrs[i],
                vals[i] if vals is not None else 0,
                vals2[i] if vals2 is not None else 0)
            i += 1
            continue

        # Phase A: pure TLB gather — maximal TLB-hit segment from i.
        seg_end, page_runs, paddrs = tlb.translate_batch(vaddrs, i, n)
        if seg_end == i:
            # TLB miss: the scalar retry records the miss and walks.
            values[i], lats[i] = _scalar_op(
                port, kind, vaddrs[i],
                vals[i] if vals is not None else 0, 0)
            i += 1
            continue

        # Phase B: pure L1 gather over the segment's physical addresses.
        l1_stop, line_runs = cache.gather_batch(paddrs, 0, seg_end - i)
        l1_stop += i

        # Phase C: trim to the fast-hit prefix (MOESI permission and op
        # kind), using gather-time state — sound because hit transitions
        # never reduce permission.
        stop = l1_stop
        store_count = 0
        store_runs = []
        if kinds is None:
            for run in line_runs:
                state = run[4].state
                if not (state is _MODIFIED or state is _EXCLUSIVE
                        or state is _SHARED or state is _OWNED):
                    stop = run[0] + i
                    break
        else:
            broke = False
            for run in line_runs:
                run_lo, run_hi = run[0] + i, run[1] + i
                if run_lo >= stop:
                    break
                state = run[4].state
                can_write = state is _MODIFIED or state is _EXCLUSIVE
                if not (can_write or state is _SHARED or state is _OWNED):
                    stop = run_lo
                    break
                has_store = False
                for j in range(run_lo, min(run_hi, stop)):
                    k = kinds[j]
                    if k == OP_LOAD:
                        continue
                    if k == OP_STORE and can_write:
                        has_store = True
                        store_count += 1
                        continue
                    stop = j
                    broke = True
                    break
                if has_store:
                    store_runs.append(run)
                if broke:
                    break

        if stop > i:
            count = stop - i
            # Commit: LRU/touches + hit counters for exactly [i, stop).
            tlb.commit_batch(page_runs, i, stop)
            cache.commit_batch(line_runs, 0, stop - i)
            stats.add("coherence.l1_hits", count)
            if store_count:
                stats.add("coherence.accesses.store", store_count)
            if count - store_count:
                stats.add("coherence.accesses.load", count - store_count)
            for run in store_runs:
                block = run[4]
                # Phase C verified write permission, and after_local_store
                # is MODIFIED from every writable state.
                block.state = MOESIState.MODIFIED
                block.dirty = True
            # Data movement in op order; latency is the constant L1 hit.
            lats[i:stop] = [hit_ps] * count
            get = words.get
            if kinds is None:
                values[i:stop] = [
                    word - _TWO_POW_64
                    if (word := get(pa & ~7, 0)) >= _SIGN_BIT else word
                    for pa in (paddrs if count == len(paddrs)
                               else paddrs[:count])
                ]
            else:
                for j, pa in zip(range(i, stop), paddrs):
                    pa &= ~7
                    if kinds[j] == OP_LOAD:
                        word = get(pa, 0)
                        values[j] = word - _TWO_POW_64 if word >= _SIGN_BIT \
                            else word
                    else:
                        words[pa] = vals[j] & _WORD_MASK

        if stop < seg_end:
            # L1 miss / upgrade / non-MOESI state: the scalar retry redoes
            # the TLB lookup (one hit, like the scalar sequence would
            # record) and takes the identical slow path.
            k = kinds[stop] if kinds is not None else OP_LOAD
            values[stop], lats[stop] = _scalar_op(
                port, k, vaddrs[stop],
                vals[stop] if vals is not None else 0,
                vals2[stop] if vals2 is not None else 0)
            i = stop + 1
        else:
            i = seg_end
    return values, lats


# --------------------------------------------------------------------------- #
# APU flat-memory port engine
# --------------------------------------------------------------------------- #
def run_flat_batch(port, vaddrs: Sequence[int],
                   kinds: Optional[Sequence[int]],
                   vals: Optional[Sequence[int]],
                   vals2: Optional[Sequence[int]]) -> BatchResult:
    """Run a batch against a :class:`~repro.baseline.cpu.BaselineCPUPort`.

    The APU hierarchy has no translation and no coherence permissions: the
    fast prefix is simply "line resident in the first level", with the
    level's hit latency and a dirty bit for stores — exactly what
    :meth:`~repro.mem.private.PrivateHierarchy.access` does on a hit.
    Misses and atomics drop to the scalar port methods.
    """
    n = len(vaddrs)
    values: List[object] = [None] * n
    lats = [0] * n
    if n == 0:
        return values, lats

    first = port.hierarchy.levels[0]
    cache = first.cache
    hit_ps = first.hit_latency_ps
    words = port.memory._words

    i = 0
    while i < n:
        kind = kinds[i] if kinds is not None else OP_LOAD
        if kind == OP_ATOMIC_ADD or kind == OP_ATOMIC_CAS:
            values[i], lats[i] = _scalar_op(
                port, kind, vaddrs[i],
                vals[i] if vals is not None else 0,
                vals2[i] if vals2 is not None else 0)
            i += 1
            continue

        stop, line_runs = cache.gather_batch(vaddrs, i, n)
        if kinds is not None:
            # The gather is kind-blind; an atomic inside the resident
            # prefix must still drop to the scalar port, so trim to it.
            for j in range(i, stop):
                k = kinds[j]
                if k != OP_LOAD and k != OP_STORE:
                    stop = j
                    break
        if stop > i:
            cache.commit_batch(line_runs, i, stop)
            if kinds is None:
                for j in range(i, stop):
                    values[j] = words.get(vaddrs[j] & ~7, 0)
                    lats[j] = hit_ps
            else:
                for run_lo, run_hi, _si, _way, block in line_runs:
                    run_hi = min(run_hi, stop)
                    if run_lo >= stop:
                        break
                    for j in range(run_lo, run_hi):
                        if kinds[j] == OP_LOAD:
                            values[j] = words.get(vaddrs[j] & ~7, 0)
                        else:
                            words[vaddrs[j] & ~7] = vals[j]
                            block.dirty = True
                        lats[j] = hit_ps
        if stop < n:
            k = kinds[stop] if kinds is not None else OP_LOAD
            values[stop], lats[stop] = _scalar_op(
                port, k, vaddrs[stop],
                vals[stop] if vals is not None else 0,
                vals2[stop] if vals2 is not None else 0)
            i = stop + 1
        else:
            i = n
    return values, lats


# --------------------------------------------------------------------------- #
# Tuple-batch convenience (MemoryPort.run_batch)
# --------------------------------------------------------------------------- #
def split_ops(ops: Sequence[BatchOp]):
    """Split ``(kind, vaddr, a, b)`` tuples into columns.

    Returns ``(vaddrs, kinds, vals, vals2)`` with ``kinds`` collapsed to
    ``None`` when every op is a load.
    """
    if not ops:
        return [], None, None, None
    # zip(*ops) transposes the tuples at C speed; the four per-op
    # comprehensions this replaces dominated small-batch dispatch.
    kinds, vaddrs, vals, vals2 = map(list, zip(*ops))
    if not any(kinds):
        return vaddrs, None, None, None
    return vaddrs, kinds, vals, vals2
