"""The batched/columnar memory-access engine.

Every simulated memory operation normally pays a full Python call chain —
``port.load`` → TLB lookup → coherence probe → data access — and that
per-word host overhead, not the modeled hardware, bounds wall-clock time.
This engine amortizes the chain over *address vectors*: a core (or
workload) hands the port a whole batch of operations at once, and the
common case — TLB hit followed by an L1 hit with sufficient permission —
is classified and executed columnar.

Correctness argument (why results are bit-for-bit identical):

* The engine processes each batch as alternating *prefixes* and
  *residues*.  A prefix is the maximal run of ops, against the current
  TLB/cache state, that are pure fast-path hits; everything else (TLB
  miss, L1 miss, store upgrade from SHARED/OWNED, atomics) is residue and
  executes one-by-one through the *unchanged* scalar port methods.
* Within a prefix, hits never evict, invalidate, fault or downgrade:
  a load hit only touches replacement state, and a store hit's
  ``after_local_store`` transition (E→M, M→M) never *reduces* permission.
  Classifying the whole prefix against the gather-time state is therefore
  exactly equivalent to classifying op-by-op.
* The gather phases (``TLB.translate_batch``, ``cache.gather_batch``) are
  pure; commit applies LRU moves/touches once per same-page/same-line run
  (idempotent for recency) and counters in bulk, so the post-batch
  TLB/cache/counter state equals the scalar path's.
* Data reads/writes run in op order, so store→load forwarding inside a
  batch behaves exactly like the scalar sequence.

Column arithmetic (key extraction, run detection, offset application) is
delegated to :mod:`repro.sim.columnar`, which picks a numpy kernel when
numpy is importable and a pure-Python ``array``-module kernel otherwise
(``REPRO_NO_NUMPY=1`` forces the latter); both produce identical results.

The engine disengages — falling back to a scalar loop over the same port
methods — when a port has no TLB, runs with ``fast_path=False``, has a
sequential-consistency checker attached, or has ``batch_enabled=False``
(the ``batch_access`` config knob).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.coherence.states import MOESIState
from repro.sim import columnar

#: Operation kind codes used in batch columns.
OP_LOAD = 0
OP_STORE = 1
OP_ATOMIC_ADD = 2
OP_ATOMIC_CAS = 3

_WORD_MASK = (1 << 64) - 1
_SIGN_BIT = 1 << 63
_TWO_POW_64 = 1 << 64

# Enum members are singletons, so per-run permission classification is a
# couple of identity checks instead of an isinstance plus an enum property
# call (enum hashing and properties are Python-level and dominate the trim
# loop).  A non-MOESI (transient) state matches none of these, so it
# breaks the prefix exactly like the isinstance guard did.
_MODIFIED = MOESIState.MODIFIED
_OWNED = MOESIState.OWNED
_EXCLUSIVE = MOESIState.EXCLUSIVE
_SHARED = MOESIState.SHARED

#: A batch op: ``(kind, vaddr, operand_a, operand_b)``.  ``operand_a`` is
#: the stored value / atomic delta / CAS expected value; ``operand_b`` is
#: the CAS new value (0 otherwise).
BatchOp = Tuple[int, int, int, int]

#: Batch results: per-op values (None for stores) and latencies.
BatchResult = Tuple[List[object], List[int]]

# Shared zero column handed out by _zeros(): residue dispatch indexes the
# operand columns unconditionally instead of re-testing ``is not None`` per
# op.  Read-only by contract; grown on demand.
_ZEROS: List[int] = [0] * 1024

#: Max ops translated per Phase A gather.  Bounds the cost of the
#: re-translation forced by a TLB miss mid-batch.
_TRANSLATE_SPAN = 1024
#: Adaptive bounds on the ops gathered per Phase B probe.  A mid-segment
#: stop (L1 miss, permission, atomic) restarts the gather one op later
#: and re-scans the window, so restart-heavy streams want it small; the
#: fixed numpy cost per probe means clean streams want it large.  The
#: span quarters on every restart and doubles on every completed window.
_GATHER_SPAN_MIN = 32
_GATHER_SPAN_MAX = 1024


def _zeros(n: int) -> List[int]:
    """A shared all-zero column of length >= n (never mutated by callers)."""
    global _ZEROS
    if len(_ZEROS) < n:
        _ZEROS = [0] * n
    return _ZEROS


def _trim_mixed_python(kinds: Sequence[int], line_runs, i: int, l1_stop: int):
    """Per-op prefix trim for mixed-kind segments (pure-Python kernel).

    Returns ``(stop, store_count, store_runs)`` — the fast-hit prefix end,
    the number of stores inside it, and the line runs containing stores.
    """
    stop = l1_stop
    store_count = 0
    store_runs = []
    broke = False
    for run in line_runs:
        run_lo, run_hi = run[0] + i, run[1] + i
        if run_lo >= stop:
            break
        state = run[4].state
        can_write = state is _MODIFIED or state is _EXCLUSIVE
        if not (can_write or state is _SHARED or state is _OWNED):
            stop = run_lo
            break
        has_store = False
        for j in range(run_lo, min(run_hi, stop)):
            k = kinds[j]
            if k == OP_LOAD:
                continue
            if k == OP_STORE and can_write:
                has_store = True
                store_count += 1
                continue
            stop = j
            broke = True
            break
        if has_store:
            store_runs.append(run)
        if broke:
            break
    return stop, store_count, store_runs


def _scalar_op(port, kind: int, vaddr: int, a: int, b: int):
    """Execute one op through the unchanged scalar port methods."""
    if kind == OP_LOAD:
        return port.load(vaddr)
    if kind == OP_STORE:
        return None, port.store(vaddr, a)
    if kind == OP_ATOMIC_ADD:
        return port.atomic_add(vaddr, a)
    if kind == OP_ATOMIC_CAS:
        return port.atomic_cas(vaddr, a, b)
    raise ValueError(f"unknown batch op kind {kind!r}")


def scalar_run_batch(port, vaddrs: Sequence[int],
                     kinds: Optional[Sequence[int]],
                     vals: Optional[Sequence[int]],
                     vals2: Optional[Sequence[int]]) -> BatchResult:
    """Reference implementation: a plain loop over the scalar port methods.

    Works against any :class:`~repro.mem.port.MemoryPort`; used when the
    columnar engine is disengaged and as the equivalence-test oracle.
    """
    n = len(vaddrs)
    values: List[object] = [None] * n
    lats = [0] * n
    if kinds is None:
        load = port.load
        for i in range(n):
            values[i], lats[i] = load(vaddrs[i])
        return values, lats
    for i in range(n):
        values[i], lats[i] = _scalar_op(
            port, kinds[i], vaddrs[i],
            vals[i] if vals is not None else 0,
            vals2[i] if vals2 is not None else 0)
    return values, lats


# --------------------------------------------------------------------------- #
# CCSVM coherent port engine
# --------------------------------------------------------------------------- #
def run_ccsvm_batch(port, vaddrs: Sequence[int],
                    kinds: Optional[Sequence[int]],
                    vals: Optional[Sequence[int]],
                    vals2: Optional[Sequence[int]]) -> BatchResult:
    """Run a batch against a :class:`~repro.mem.port.CoreMemoryPort`.

    ``kinds is None`` means every op is a load (the ``load_batch`` fast
    lane).  The caller guarantees the port is batch-eligible (TLB present
    with standard pages, fast path on, no SC checker).
    """
    n = len(vaddrs)
    values: List[object] = [None] * n
    lats = [0] * n
    if n == 0:
        return values, lats

    tlb = port.tlb
    coherence = port.coherence
    info = coherence._l1s.get(port.node)
    if info is None:
        # Match the scalar path's error for an unregistered node.
        return scalar_run_batch(port, vaddrs, kinds, vals, vals2)
    cache = info.cache
    hit_ps = info.hit_latency_ps
    stats = coherence.stats
    words = port.physical_memory._words

    npx = columnar.numpy_module() if columnar.USING_NUMPY else None
    kinds_arr = None
    if kinds is not None:
        # Pre-slice the operand columns once so residue dispatch indexes
        # them directly instead of re-testing ``is not None`` per op.
        if vals is None:
            vals = _zeros(n)
        if vals2 is None:
            vals2 = _zeros(n)
        if npx is not None:
            # No copy when split_ops already produced the ndarray column.
            kinds_arr = npx.asarray(kinds, dtype=npx.int64)
    # One ndarray of the address column for the pure gather phases: the
    # columnar kernels then slice views instead of re-converting the list
    # per window.  Scalar retries keep indexing the original sequence, so
    # the slow paths see native ints exactly as before.
    va_col = vaddrs
    if npx is not None:
        try:
            va_col = npx.asarray(vaddrs, dtype=npx.int64)
        except (OverflowError, ValueError):
            va_col = vaddrs

    # Cached Phase A translation for ops [tr_base, tr_stop).  A residue
    # op inside the span has a mapped page, so its scalar retry is a TLB
    # *hit* — an LRU touch, never a fill or eviction — which keeps the
    # span valid across mid-segment stops.  Entries only change on the
    # miss path, where ``i`` has reached ``tr_stop`` and the next
    # iteration re-translates anyway.
    tr_base = 0
    tr_stop = 0
    tr_runs: List = []
    tr_paddrs: Sequence[int] = []
    tr_ptr = 0
    span = _GATHER_SPAN_MAX

    i = 0
    while i < n:
        kind = kinds[i] if kinds is not None else OP_LOAD
        if kind == OP_ATOMIC_ADD or kind == OP_ATOMIC_CAS:
            # Atomics are always residue: the scalar path handles both the
            # L1-hit and the transaction case identically either way.
            values[i], lats[i] = _scalar_op(
                port, kind, vaddrs[i], vals[i], vals2[i])
            i += 1
            continue

        # Phase A: pure TLB gather, reused across restarts (see above).
        if i >= tr_stop:
            tr_base = i
            tr_stop, tr_runs, tr_paddrs = tlb.translate_batch(
                va_col, i, min(n, i + _TRANSLATE_SPAN))
            tr_ptr = 0
            if tr_stop == i:
                # TLB miss: the scalar retry records the miss and walks.
                values[i], lats[i] = _scalar_op(
                    port, kind, vaddrs[i],
                    vals[i] if vals is not None else 0, 0)
                i += 1
                continue

        # Phase B: pure L1 gather over a bounded window of the cached
        # physical addresses.  The window cap keeps a mid-segment stop
        # from making the next iteration re-scan the whole span; hitting
        # the cap just continues the loop from there (no residue op).
        seg_end = tr_stop if tr_stop <= i + span else i + span
        rel = i - tr_base
        paddrs = tr_paddrs[rel:rel + (seg_end - i)]
        l1_stop, line_runs = cache.gather_batch(paddrs, 0, seg_end - i)
        l1_stop += i

        # Phase C: trim to the fast-hit prefix (MOESI permission and op
        # kind), using gather-time state — sound because hit transitions
        # never reduce permission.
        stop = l1_stop
        store_count = 0
        store_runs = []
        seg_store_idx = None
        seg_store_mask = None
        if kinds is None:
            for run in line_runs:
                state = run[4].state
                if not (state is _MODIFIED or state is _EXCLUSIVE
                        or state is _SHARED or state is _OWNED):
                    stop = run[0] + i
                    break
        elif kinds_arr is not None:
            # Columnar trim: one Python pass over the (few) line runs for
            # permission, then vector ops over the per-op kinds.  Falls
            # back to the per-op walk only when a run is readable but not
            # writable (SHARED/OWNED), where the break point depends on
            # per-op kind × per-run permission jointly.
            rel_stop = l1_stop - i
            all_writable = True
            for run in line_runs:
                if run[0] >= rel_stop:
                    break
                state = run[4].state
                if state is _MODIFIED or state is _EXCLUSIVE:
                    continue
                if state is _SHARED or state is _OWNED:
                    all_writable = False
                    continue
                rel_stop = run[0]
                break
            kseg = kinds_arr[i:i + rel_stop]
            if rel_stop == 0 or not kseg.any():
                # All loads (or empty): permission alone bounds the prefix.
                stop = i + rel_stop
            elif all_writable:
                # Atomics are the only prefix breakers; stores all land on
                # writable lines.
                bad = kseg >= OP_ATOMIC_ADD
                if bad.any():
                    rel_stop = int(bad.argmax())
                    kseg = kseg[:rel_stop]
                stop = i + rel_stop
                if rel_stop:
                    store_mask = kseg == OP_STORE
                    store_count = int(store_mask.sum())
                    if store_count:
                        seg_store_mask = store_mask
                        seg_store_idx = npx.flatnonzero(store_mask).tolist()
                        p = 0
                        for run in line_runs:
                            if p >= store_count:
                                break
                            if seg_store_idx[p] < run[1]:
                                store_runs.append(run)
                                run_hi = run[1]
                                while (p < store_count
                                       and seg_store_idx[p] < run_hi):
                                    p += 1
            else:
                stop, store_count, store_runs = _trim_mixed_python(
                    kinds, line_runs, i, i + rel_stop)
        else:
            stop, store_count, store_runs = _trim_mixed_python(
                kinds, line_runs, i, l1_stop)

        if stop > i:
            count = stop - i
            # Commit: LRU/touches + hit counters for exactly [i, stop).
            # ``tr_ptr`` (monotonic — ``i`` only advances) skips cached
            # page runs wholly behind ``i``, whose LRU moves were already
            # committed with earlier segments.
            while tr_runs[tr_ptr][1] <= i:
                tr_ptr += 1
            tlb.commit_batch(tr_runs, i, stop, first=tr_ptr)
            cache.commit_batch(line_runs, 0, stop - i)
            stats.add("coherence.l1_hits", count)
            if store_count:
                stats.add("coherence.accesses.store", store_count)
            if count - store_count:
                stats.add("coherence.accesses.load", count - store_count)
            for run in store_runs:
                block = run[4]
                # Phase C verified write permission, and after_local_store
                # is MODIFIED from every writable state.
                block.state = MOESIState.MODIFIED
                block.dirty = True
            # Data movement; latency is the constant L1 hit.
            lats[i:stop] = [hit_ps] * count
            get = words.get
            if kinds is None or store_count == 0:
                if npx is not None:
                    # Mask the whole address column at once; .tolist()
                    # also unboxes to native ints for the dict probes,
                    # which then run as one C-level map.
                    pa_seq = (npx.asarray(paddrs[:count], dtype=npx.int64)
                              & -8).tolist()
                    vlist = list(map(get, pa_seq, _zeros(count)))
                    if max(vlist) >= _SIGN_BIT:
                        vlist = [word - _TWO_POW_64
                                 if word >= _SIGN_BIT else word
                                 for word in vlist]
                    values[i:stop] = vlist
                else:
                    values[i:stop] = [
                        word - _TWO_POW_64
                        if (word := get(pa & ~7, 0)) >= _SIGN_BIT else word
                        for pa in (paddrs if count == len(paddrs)
                                   else paddrs[:count])
                    ]
            elif seg_store_idx is not None:
                # Per-kind sub-vectors: mask the addresses columnar, gather
                # the load and store positions with vector fancy-indexing,
                # read the loads as one C-level map, scatter them back
                # through an object-array mask assignment, and write the
                # stores as one dict.update.  Reordering loads before
                # stores is safe only when no store writes a word a load
                # reads, so alias on the word sets; aliased prefixes take
                # an in-order pass with the kind flags unboxed once.
                pa_arr = npx.asarray(paddrs[:count], dtype=npx.int64) & -8
                load_mask = ~seg_store_mask
                st_addrs = pa_arr[seg_store_mask].tolist()
                ld_addrs = (pa_arr[load_mask].tolist()
                            if count - store_count else [])
                if set(st_addrs).isdisjoint(ld_addrs):
                    if ld_addrs:
                        vlist = list(map(get, ld_addrs,
                                         _zeros(len(ld_addrs))))
                        if max(vlist) >= _SIGN_BIT:
                            vlist = [word - _TWO_POW_64
                                     if word >= _SIGN_BIT else word
                                     for word in vlist]
                        seg = npx.empty(count, dtype=object)
                        seg[load_mask] = vlist
                        values[i:stop] = seg.tolist()
                    words.update(zip(st_addrs,
                                     [vals[i + x] & _WORD_MASK
                                      for x in seg_store_idx]))
                else:
                    for j, pa, is_load in zip(range(i, stop),
                                              pa_arr.tolist(),
                                              load_mask.tolist()):
                        if is_load:
                            word = get(pa, 0)
                            values[j] = (word - _TWO_POW_64
                                         if word >= _SIGN_BIT else word)
                        else:
                            words[pa] = vals[j] & _WORD_MASK
            else:
                for j, pa in zip(range(i, stop), paddrs):
                    pa &= ~7
                    if kinds[j] == OP_LOAD:
                        word = get(pa, 0)
                        values[j] = word - _TWO_POW_64 if word >= _SIGN_BIT \
                            else word
                    else:
                        words[pa] = vals[j] & _WORD_MASK

        if stop < seg_end:
            # L1 miss / upgrade / non-MOESI state: the scalar retry redoes
            # the TLB lookup (one hit, like the scalar sequence would
            # record) and takes the identical slow path.
            if span > _GATHER_SPAN_MIN:
                shrunk = span >> 2
                span = shrunk if shrunk > _GATHER_SPAN_MIN \
                    else _GATHER_SPAN_MIN
            k = kinds[stop] if kinds is not None else OP_LOAD
            values[stop], lats[stop] = _scalar_op(
                port, k, vaddrs[stop],
                vals[stop] if vals is not None else 0,
                vals2[stop] if vals2 is not None else 0)
            i = stop + 1
        else:
            if span < _GATHER_SPAN_MAX:
                span <<= 1
            i = seg_end
    return values, lats


# --------------------------------------------------------------------------- #
# APU flat-memory port engine
# --------------------------------------------------------------------------- #
def run_flat_batch(port, vaddrs: Sequence[int],
                   kinds: Optional[Sequence[int]],
                   vals: Optional[Sequence[int]],
                   vals2: Optional[Sequence[int]]) -> BatchResult:
    """Run a batch against a :class:`~repro.baseline.cpu.BaselineCPUPort`.

    The APU hierarchy has no translation and no coherence permissions: the
    fast prefix is simply "line resident in the first level", with the
    level's hit latency and a dirty bit for stores — exactly what
    :meth:`~repro.mem.private.PrivateHierarchy.access` does on a hit.
    Misses and atomics drop to the scalar port methods.
    """
    n = len(vaddrs)
    values: List[object] = [None] * n
    lats = [0] * n
    if n == 0:
        return values, lats

    first = port.hierarchy.levels[0]
    cache = first.cache
    hit_ps = first.hit_latency_ps
    words = port.memory._words

    npx = columnar.numpy_module() if columnar.USING_NUMPY else None
    kinds_arr = None
    if kinds is not None:
        if vals is None:
            vals = _zeros(n)
        if vals2 is None:
            vals2 = _zeros(n)
        if npx is not None:
            kinds_arr = npx.asarray(kinds, dtype=npx.int64)
    # As in the CCSVM engine: one address-column ndarray for the gather
    # phases, scalar retries keep the original sequence.
    va_col = vaddrs
    if npx is not None:
        try:
            va_col = npx.asarray(vaddrs, dtype=npx.int64)
        except (OverflowError, ValueError):
            va_col = vaddrs

    span = _GATHER_SPAN_MAX
    i = 0
    while i < n:
        kind = kinds[i] if kinds is not None else OP_LOAD
        if kind == OP_ATOMIC_ADD or kind == OP_ATOMIC_CAS:
            values[i], lats[i] = _scalar_op(
                port, kind, vaddrs[i], vals[i], vals2[i])
            i += 1
            continue

        # Adaptive gather window, as in the CCSVM engine: restarts shrink
        # it so they re-scan little, completed windows grow it back so
        # clean streams amortize the per-probe numpy cost.  Hitting the
        # cap just continues the loop from there.
        hi = n if n <= i + span else i + span
        stop, line_runs = cache.gather_batch(va_col, i, hi)
        if kinds is not None:
            # The gather is kind-blind; an atomic inside the resident
            # prefix must still drop to the scalar port, so trim to it.
            if kinds_arr is not None:
                bad = kinds_arr[i:stop] >= OP_ATOMIC_ADD
                if bad.any():
                    stop = i + int(bad.argmax())
            else:
                for j in range(i, stop):
                    k = kinds[j]
                    if k != OP_LOAD and k != OP_STORE:
                        stop = j
                        break
        if stop > i:
            cache.commit_batch(line_runs, i, stop)
            get = words.get
            if kinds is None:
                lats[i:stop] = [hit_ps] * (stop - i)
                if npx is not None:
                    pa_seq = (npx.asarray(va_col[i:stop], dtype=npx.int64)
                              & -8).tolist()
                    values[i:stop] = list(map(get, pa_seq,
                                              _zeros(stop - i)))
                else:
                    values[i:stop] = [get(va & ~7, 0)
                                      for va in vaddrs[i:stop]]
            elif kinds_arr is not None:
                count = stop - i
                lats[i:stop] = [hit_ps] * count
                store_mask = kinds_arr[i:stop] == OP_STORE
                if not store_mask.any():
                    pa_seq = (npx.asarray(va_col[i:stop], dtype=npx.int64)
                              & -8).tolist()
                    values[i:stop] = list(map(get, pa_seq, _zeros(count)))
                else:
                    # View (no copy) when va_col is the ndarray column.
                    va_arr = npx.asarray(va_col[i:stop],
                                         dtype=npx.int64) & -8
                    load_mask = ~store_mask
                    st_idx = npx.flatnonzero(store_mask).tolist()
                    st_addrs = va_arr[store_mask].tolist()
                    ld_addrs = va_arr[load_mask].tolist()
                    # Mark the dirty bit once per line run with a store.
                    p = 0
                    n_st = len(st_idx)
                    for run in line_runs:
                        if p >= n_st:
                            break
                        run_hi = run[1] - i
                        if st_idx[p] < run_hi:
                            run[4].dirty = True
                            while p < n_st and st_idx[p] < run_hi:
                                p += 1
                    if set(st_addrs).isdisjoint(ld_addrs):
                        if ld_addrs:
                            vlist = list(map(get, ld_addrs,
                                             _zeros(len(ld_addrs))))
                            seg = npx.empty(count, dtype=object)
                            seg[load_mask] = vlist
                            values[i:stop] = seg.tolist()
                        words.update(zip(st_addrs,
                                         [vals[i + x] for x in st_idx]))
                    else:
                        for j, va, is_load in zip(range(i, stop),
                                                  va_arr.tolist(),
                                                  load_mask.tolist()):
                            if is_load:
                                values[j] = get(va, 0)
                            else:
                                words[va] = vals[j]
            else:
                for run_lo, run_hi, _si, _way, block in line_runs:
                    run_hi = min(run_hi, stop)
                    if run_lo >= stop:
                        break
                    for j in range(run_lo, run_hi):
                        if kinds[j] == OP_LOAD:
                            values[j] = get(vaddrs[j] & ~7, 0)
                        else:
                            words[vaddrs[j] & ~7] = vals[j]
                            block.dirty = True
                        lats[j] = hit_ps
        if stop < hi:
            if span > _GATHER_SPAN_MIN:
                shrunk = span >> 2
                span = shrunk if shrunk > _GATHER_SPAN_MIN \
                    else _GATHER_SPAN_MIN
            if kinds is None:
                values[stop], lats[stop] = port.load(vaddrs[stop])
            else:
                values[stop], lats[stop] = _scalar_op(
                    port, kinds[stop], vaddrs[stop], vals[stop], vals2[stop])
            i = stop + 1
        else:
            if span < _GATHER_SPAN_MAX:
                span <<= 1
            i = stop
    return values, lats


# --------------------------------------------------------------------------- #
# Tuple-batch convenience (MemoryPort.run_batch)
# --------------------------------------------------------------------------- #
def split_ops(ops: Sequence[BatchOp]):
    """Split ``(kind, vaddr, a, b)`` tuples into columns.

    Returns ``(vaddrs, kinds, vals, vals2)`` with ``kinds`` collapsed to
    ``None`` when every op is a load.
    """
    if not ops:
        return [], None, None, None
    # One transpose through the selected columnar kernel: numpy does the
    # whole (n, 4) matrix in one shot; the stdlib kernel zip-transposes at
    # C speed.  Both collapse all-load batches to ``kinds=None``.
    return columnar.split_columns(ops)
