"""Non-coherent private hierarchies: any number of levels over DRAM.

:class:`PrivateHierarchy` generalises the APU baseline's original
L1-plus-optional-L2 model to an arbitrary stack of
:class:`~repro.mem.levels.CacheLevel` s over a :class:`DRAMModel`: an
access walks down the stack paying each level's hit latency until it hits
(or reaches DRAM), fills every missed level on the way back, and writes
dirty victims back to the next level down (the deepest level's victims go
to DRAM).  For the two-level shape this reproduces the historical
``PrivateCacheHierarchy`` behaviour — and counters — exactly; deeper or
shared shapes (a pooled L2 between cores, a third level) come for free
because levels are first-class objects.

Sharing: passing the same :class:`CacheLevel` instance to several
hierarchies makes those cores contend for its capacity.  No coherence is
modelled between the private levels above a shared one — appropriate for
the APU baseline, whose cross-core sharing costs the paper's pthreads
model absorbs into its phase-synchronisation overheads.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.errors import MemoryError_
from repro.mem.levels import CacheLevel, DRAMLevel
from repro.memory.address import CACHE_LINE_SIZE
from repro.memory.dram import DRAMModel
from repro.sim.stats import StatsRegistry


class PrivateHierarchy:
    """A write-back, write-allocate stack of cache levels over DRAM."""

    def __init__(self, name: str, dram: DRAMModel,
                 levels: Sequence[CacheLevel],
                 stats: Optional[StatsRegistry] = None,
                 line_size: int = CACHE_LINE_SIZE) -> None:
        if not levels:
            raise MemoryError_(f"hierarchy {name!r} needs at least one cache level")
        self.name = name
        self.dram = dram
        #: The hierarchy's terminus: all line fills and writebacks that
        #: fall off the deepest cache level go through this DRAM level.
        self.dram_level = DRAMLevel(dram, line_size=line_size)
        self.levels: List[CacheLevel] = list(levels)
        self.stats = stats if stats is not None else StatsRegistry()
        self.line_size = line_size
        # Precomputed per-level writeback counter names (hot path).
        self._writeback_stats = [f"{name}.{level.label}_writebacks"
                                 for level in self.levels]

    # ------------------------------------------------------------------ #
    # Access path
    # ------------------------------------------------------------------ #
    def access(self, address: int, is_write: bool) -> int:
        """Access ``address``; return the latency and count DRAM traffic."""
        first = self.levels[0]
        latency = first.hit_latency_ps
        block = first.cache.lookup(address)
        if block is not None:
            if is_write:
                block.dirty = True
            return latency

        # Miss in the first level: walk down until a hit (or DRAM).
        line = first.cache.line_address(address)
        hit_index = len(self.levels)
        for index in range(1, len(self.levels)):
            level = self.levels[index]
            latency += level.hit_latency_ps
            if level.cache.lookup(line) is not None:
                hit_index = index
                break
        else:
            latency += self.dram_level.read()

        # Fill every missed level from the bottom up; dirty victims write
        # back to the next level down.
        for index in range(hit_index - 1, 0, -1):
            _, victim = self.levels[index].cache.insert(line)
            if victim is not None and victim.dirty:
                self._writeback(index, victim.line_address)
        block, victim = first.cache.insert(line, dirty=is_write)
        if is_write:
            block.dirty = True
        if victim is not None and victim.dirty:
            self._writeback(0, victim.line_address)
        return latency

    def _writeback(self, index: int, line: int) -> None:
        """Write a dirty line evicted from ``levels[index]`` one level down."""
        if index + 1 >= len(self.levels):
            self.dram_level.write()
        else:
            target = self.levels[index + 1]
            block = target.cache.peek(line)
            if block is None:
                block, victim = target.cache.insert(line, dirty=True)
                if victim is not None and victim.dirty:
                    self._writeback(index + 1, victim.line_address)
            block.dirty = True
        self.stats.add(self._writeback_stats[index])

    # ------------------------------------------------------------------ #
    # Maintenance
    # ------------------------------------------------------------------ #
    def flush(self) -> Tuple[int, int]:
        """Write back every dirty line to DRAM; return ``(lines, dirty_lines)``.

        Flushes every level in this hierarchy's chain, shared levels
        included (a flush models coherent DMA making *all* cached data
        visible, so a pooled level must drain too; flushing it through a
        second core's hierarchy then finds it already empty).
        """
        flushed = 0
        dirty = 0
        for level in self.levels:
            for block in level.cache.flush_all():
                flushed += 1
                if block.dirty:
                    dirty += 1
                    self.dram_level.write()
        self.stats.add(f"{self.name}.flush_dirty_lines", dirty)
        return flushed, dirty
