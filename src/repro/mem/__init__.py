"""``repro.mem`` — the unified, composable memory-hierarchy subsystem.

Both machines of the paper are assemblies of the same few parts:

* :class:`~repro.mem.levels.LevelSpec` — the declarative *shape* of one
  cache level (capacity, associativity, line size, latency, replacement);
* :class:`~repro.mem.levels.CacheLevel` — a built level: one
  :class:`~repro.cache.cache.SetAssociativeCache` plus its timing, ready
  to be stacked privately or shared between ports;
* :class:`~repro.mem.levels.DRAMLevel` — the hierarchy's off-chip
  terminus, wrapping a :class:`~repro.memory.dram.DRAMModel`;
* :class:`~repro.mem.private.PrivateHierarchy` — a non-coherent stack of
  levels over DRAM (the APU baseline's timing model), any depth, with
  lower levels optionally shared between cores;
* :class:`~repro.mem.port.CoreMemoryPort` — the per-core
  translate → coherence → data path of the CCSVM chip, with a combined
  TLB-hit + L1-hit fast path;
* :mod:`repro.mem.assemble` — builders that turn the ``repro.config``
  hierarchy-shape dataclasses into levels for either machine.

The MOESI directory controller itself stays in
:mod:`repro.coherence.protocol`; ``repro.mem`` composes it (registering
L1 levels, stacking an optional shared L3 between the L2 banks and DRAM)
rather than reimplementing it.
"""

from repro.mem.levels import CacheLevel, DRAMLevel, LevelSpec, build_cache
from repro.mem.port import CoreMemoryPort, MemoryPort, PageFaultHandler
from repro.mem.private import PrivateHierarchy
from repro.mem.replay import ReplayResult, replay_trace, replay_trace_flat

__all__ = [
    "CacheLevel",
    "CoreMemoryPort",
    "DRAMLevel",
    "LevelSpec",
    "MemoryPort",
    "PageFaultHandler",
    "PrivateHierarchy",
    "ReplayResult",
    "build_cache",
    "replay_trace",
    "replay_trace_flat",
]
