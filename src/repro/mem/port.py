"""Per-core memory ports: the translate → coherence → data path.

Every core — CPU or MTTOP — owns one :class:`CoreMemoryPort`.  A memory
operation flows through it exactly as the paper describes (Section 3.2):

1. the virtual address is looked up in the core's private TLB (unless the
   system shape disables TLBs — the ``ccsvm-no-tlb`` preset — in which
   case every access pays a hardware walk);
2. on a TLB miss the core's hardware page-table walker walks the process
   page table (identified by the CR3 the core was given);
3. if the walk faults, the fault is handled — directly by the OS for a CPU
   core, or forwarded through the MIFD to a CPU core for an MTTOP core;
4. the physical address is presented to the MOESI coherent memory hierarchy
   (L1 → directory/L2 → DRAM), which returns the access latency;
5. the data itself is read from / written to simulated physical memory, so
   programs compute real results.

Because steps 1 and 4 are overwhelmingly the common case — a TLB hit
followed by an L1 hit with sufficient permission — the port takes a
combined **fast path** for them: the TLB entry yields the physical
address with zero latency and the coherent L1 is probed through
:meth:`~repro.coherence.protocol.CoherentMemorySystem.l1_load_hit_ps` /
``l1_store_hit_ps``, which perform the identical state transitions and
counter updates but skip the per-access ``AccessResult`` allocation and
enum dispatch of the general transaction path.  Anything else — TLB miss,
L1 miss, upgrade-from-invalid — falls back to the unchanged general path,
so timing and statistics are bit-for-bit identical either way
(``fast_path=False`` keeps the legacy path selectable; the
``benchmarks/test_access_path.py`` microbenchmark measures the win).

:class:`MemoryPort` is the structural protocol all port implementations
share — this one, the APU baseline's :class:`~repro.baseline.cpu.BaselineCPUPort`,
and the GPU model's internal ports — and is what
:func:`~repro.cores.interpreter.execute_memory_operation` programs against.
"""

from __future__ import annotations

from typing import (Callable, List, Optional, Protocol, Sequence, Tuple,
                    runtime_checkable)

from repro.coherence.protocol import CoherentMemorySystem
from repro.core.consistency import SequentialConsistencyChecker
from repro.errors import VirtualMemoryError
from repro.mem.batch import (BatchOp, BatchResult, OP_STORE, run_ccsvm_batch,
                             scalar_run_batch, split_ops)
from repro.memory.physical import PhysicalMemory
from repro.sim.stats import StatsRegistry
from repro.vm.manager import AddressSpace, VirtualMemoryManager
from repro.vm.tlb import TLB
from repro.vm.walker import PageTableWalker

#: Fault handler: ``(port, vaddr, is_write) -> latency_ps``.  CPU ports call
#: straight into the OS; MTTOP ports are wired to the MIFD's fault forwarding.
PageFaultHandler = Callable[["CoreMemoryPort", int, bool], int]


@runtime_checkable
class MemoryPort(Protocol):
    """What every memory port provides to the instruction interpreters."""

    #: Engine time of the issuing core.  Cores write this before each
    #: access; implementations default it to 0 so the interpreters can
    #: assign it unconditionally instead of ``hasattr``-probing per step.
    current_time_ps: int

    def load(self, vaddr: int) -> Tuple[int, int]:
        """Load the word at ``vaddr``; returns ``(value, latency_ps)``."""
        ...  # pragma: no cover - protocol

    def store(self, vaddr: int, value: int) -> int:
        """Store ``value`` to ``vaddr``; returns the latency."""
        ...  # pragma: no cover - protocol

    def atomic_add(self, vaddr: int, delta: int) -> Tuple[int, int]:
        """Atomic fetch-and-add; returns ``(old_value, latency_ps)``."""
        ...  # pragma: no cover - protocol

    def atomic_cas(self, vaddr: int, expected: int, new: int) -> Tuple[int, int]:
        """Atomic compare-and-swap; returns ``(old_value, latency_ps)``."""
        ...  # pragma: no cover - protocol

    def run_batch(self, ops: Sequence[BatchOp]) -> BatchResult:
        """Run a mixed batch of ``(kind, vaddr, a, b)`` ops in order;
        returns ``(values, latencies)`` with ``None`` values for stores."""
        ...  # pragma: no cover - protocol

    def load_batch(self, vaddrs: Sequence[int]) -> BatchResult:
        """Load a vector of addresses; returns ``(values, latencies)``."""
        ...  # pragma: no cover - protocol

    def store_batch(self, vaddrs: Sequence[int],
                    values: Sequence[int]) -> List[int]:
        """Store a vector of values; returns the per-op latencies."""
        ...  # pragma: no cover - protocol


class CoreMemoryPort:
    """The translation + coherence + data path for one CCSVM core."""

    def __init__(self, node: str, tlb: Optional[TLB], walker: PageTableWalker,
                 coherence: CoherentMemorySystem, physical_memory: PhysicalMemory,
                 vm_manager: VirtualMemoryManager,
                 page_fault_handler: Optional[PageFaultHandler] = None,
                 stats: Optional[StatsRegistry] = None,
                 sc_checker: Optional[SequentialConsistencyChecker] = None,
                 fast_path: bool = True, batch_enabled: bool = True) -> None:
        self.node = node
        #: ``None`` models a chip shape without TLBs (every access walks).
        self.tlb = tlb
        self.walker = walker
        self.coherence = coherence
        self.physical_memory = physical_memory
        self.vm_manager = vm_manager
        self.page_fault_handler = page_fault_handler
        self.stats = stats if stats is not None else StatsRegistry()
        self.sc_checker = sc_checker
        self.fast_path = fast_path
        #: The ``batch_access`` config knob; when off, batch calls loop
        #: over the scalar methods instead of the columnar engine.
        self.batch_enabled = batch_enabled
        self._space: Optional[AddressSpace] = None
        self._page_faults_stat = f"{node}.page_faults"
        #: Engine time of the issuing core, updated by the core before each
        #: access so SC-checker timestamps are meaningful.
        self.current_time_ps = 0

    # ------------------------------------------------------------------ #
    # Address-space (CR3) management
    # ------------------------------------------------------------------ #
    def set_address_space(self, space: AddressSpace) -> None:
        """Load a process's CR3 into this core (and flush nothing — ASIDs
        are not modelled; runtimes flush explicitly when needed)."""
        self._space = space

    @property
    def address_space(self) -> AddressSpace:
        """The process address space this core currently translates against."""
        if self._space is None:
            raise VirtualMemoryError(
                f"core {self.node} has no address space (CR3 not set)"
            )
        return self._space

    @property
    def cr3(self) -> int:
        """The physical root of the current page table."""
        return self.address_space.cr3

    @property
    def has_address_space(self) -> bool:
        """True once :meth:`set_address_space` has been called."""
        return self._space is not None

    # ------------------------------------------------------------------ #
    # Translation
    # ------------------------------------------------------------------ #
    def _default_fault_handler(self, vaddr: int, is_write: bool) -> int:
        return self.vm_manager.handle_page_fault(self.address_space, vaddr,
                                                 is_write=is_write)

    def translate(self, vaddr: int, is_write: bool) -> Tuple[int, int]:
        """Translate ``vaddr``; return ``(paddr, latency_ps)``.

        Handles TLB hits, hardware walks, page faults (possibly forwarded to
        a CPU through the MIFD) and TLB refills.
        """
        if self.tlb is not None:
            entry = self.tlb.lookup(vaddr)
            if entry is not None:
                return entry.physical_address(vaddr), 0
        return self._translate_slow(vaddr, is_write)

    def _translate_slow(self, vaddr: int, is_write: bool) -> Tuple[int, int]:
        """Walk (and, on a fault, handle + re-walk), then refill the TLB."""
        space = self.address_space
        latency = 0
        walk = self.walker.walk(space.page_table, vaddr)
        latency += walk.latency_ps
        if walk.page_fault:
            if self.page_fault_handler is not None:
                latency += self.page_fault_handler(self, vaddr, is_write)
            else:
                latency += self._default_fault_handler(vaddr, is_write)
            self.stats.add(self._page_faults_stat)
            # The faulting access retries its walk after the handler returns.
            walk = self.walker.walk(space.page_table, vaddr)
            latency += walk.latency_ps
            if walk.page_fault:
                raise VirtualMemoryError(
                    f"page fault at {vaddr:#x} persists after handling"
                )
        translation = walk.translation
        assert translation is not None
        if self.tlb is not None:
            self.tlb.insert(translation.vpn, translation.frame_address,
                            translation.writable)
        return translation.physical_address(vaddr), latency

    # ------------------------------------------------------------------ #
    # Data access
    # ------------------------------------------------------------------ #
    def _resolve_load(self, vaddr: int) -> Tuple[int, int]:
        """Translate + obtain read permission; returns ``(paddr, latency)``.

        The combined fast path: a TLB hit yields the physical address for
        free and the coherent L1 is probed for a read hit; everything
        else falls back to the general transaction path.
        """
        if self.fast_path and self.tlb is not None:
            entry = self.tlb.lookup(vaddr)
            if entry is not None:
                paddr = entry.physical_address(vaddr)
                latency = self.coherence.l1_load_hit_ps(self.node, paddr)
                if latency is None:
                    latency = self.coherence.load(self.node, paddr,
                                                  self.current_time_ps).latency_ps
                return paddr, latency
            paddr, translate_ps = self._translate_slow(vaddr, is_write=False)
        else:
            paddr, translate_ps = self.translate(vaddr, is_write=False)
        result = self.coherence.load(self.node, paddr, self.current_time_ps)
        return paddr, translate_ps + result.latency_ps

    def _write_transaction(self, paddr: int, atomic: bool) -> int:
        """General coherence transaction for a store/atomic; returns latency."""
        if atomic:
            return self.coherence.atomic(self.node, paddr,
                                         self.current_time_ps).latency_ps
        return self.coherence.store(self.node, paddr,
                                    self.current_time_ps).latency_ps

    def _resolve_write(self, vaddr: int, atomic: bool) -> Tuple[int, int]:
        """Translate + obtain exclusive permission; returns ``(paddr, latency)``."""
        if self.fast_path and self.tlb is not None:
            entry = self.tlb.lookup(vaddr)
            if entry is not None:
                paddr = entry.physical_address(vaddr)
                latency = self.coherence.l1_store_hit_ps(self.node, paddr,
                                                         self.current_time_ps,
                                                         atomic=atomic)
                if latency is None:
                    latency = self._write_transaction(paddr, atomic)
                return paddr, latency
            paddr, translate_ps = self._translate_slow(vaddr, is_write=True)
        else:
            paddr, translate_ps = self.translate(vaddr, is_write=True)
        return paddr, translate_ps + self._write_transaction(paddr, atomic)

    def load(self, vaddr: int) -> Tuple[int, int]:
        """Coherent load of the word at ``vaddr``; returns ``(value, latency_ps)``."""
        paddr, latency = self._resolve_load(vaddr)
        value = self.physical_memory.read_word(paddr)
        if self.sc_checker is not None:
            self.sc_checker.record_load(self.node, paddr, value, self.current_time_ps)
        return value, latency

    def store(self, vaddr: int, value: int) -> int:
        """Coherent store of ``value`` to ``vaddr``; returns the latency."""
        paddr, latency = self._resolve_write(vaddr, atomic=False)
        self.physical_memory.write_word(paddr, value)
        if self.sc_checker is not None:
            self.sc_checker.record_store(self.node, paddr, value, self.current_time_ps)
        return latency

    def atomic_add(self, vaddr: int, delta: int) -> Tuple[int, int]:
        """Atomic fetch-and-add; returns ``(old_value, latency_ps)``.

        Performed at the L1 after obtaining exclusive coherence permission,
        as the paper's MTTOP cores do (Section 3.2.4).
        """
        paddr, latency = self._resolve_write(vaddr, atomic=True)
        old = self.physical_memory.read_word(paddr)
        new = old + delta
        self.physical_memory.write_word(paddr, new)
        if self.sc_checker is not None:
            self.sc_checker.record_atomic(self.node, paddr, old, new,
                                          self.current_time_ps)
        return old, latency

    def atomic_cas(self, vaddr: int, expected: int, new: int) -> Tuple[int, int]:
        """Atomic compare-and-swap; returns ``(old_value, latency_ps)``."""
        paddr, latency = self._resolve_write(vaddr, atomic=True)
        old = self.physical_memory.read_word(paddr)
        stored = new if old == expected else old
        self.physical_memory.write_word(paddr, stored)
        if self.sc_checker is not None:
            self.sc_checker.record_atomic(self.node, paddr, old, stored,
                                          self.current_time_ps)
        return old, latency

    # ------------------------------------------------------------------ #
    # Batched access
    # ------------------------------------------------------------------ #
    def _use_columnar(self) -> bool:
        """Whether the columnar engine may run instead of a scalar loop.

        The engine replicates exactly the combined fast path, so it
        requires the same preconditions: fast path on, a TLB with the
        standard page geometry, and no SC checker (the checker records
        per-access orderings the bulk path would have to replay anyway).
        """
        tlb = self.tlb
        return (self.batch_enabled and self.fast_path
                and self.sc_checker is None
                and tlb is not None and tlb.batch_shift is not None)

    def run_batch(self, ops: Sequence[BatchOp]) -> BatchResult:
        """Run a mixed op batch in order; see :mod:`repro.mem.batch`."""
        vaddrs, kinds, vals, vals2 = split_ops(ops)
        if self._use_columnar():
            return run_ccsvm_batch(self, vaddrs, kinds, vals, vals2)
        return scalar_run_batch(self, vaddrs, kinds, vals, vals2)

    def load_batch(self, vaddrs: Sequence[int]) -> BatchResult:
        """Load a vector of addresses; returns ``(values, latencies)``."""
        if self._use_columnar():
            return run_ccsvm_batch(self, vaddrs, None, None, None)
        return scalar_run_batch(self, vaddrs, None, None, None)

    def store_batch(self, vaddrs: Sequence[int],
                    values: Sequence[int]) -> List[int]:
        """Store a vector of values; returns the per-op latencies."""
        kinds = [OP_STORE] * len(vaddrs)
        if self._use_columnar():
            return run_ccsvm_batch(self, vaddrs, kinds, values, None)[1]
        return scalar_run_batch(self, vaddrs, kinds, values, None)[1]
