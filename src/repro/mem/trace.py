"""Address-trace capture and replay.

Capturing a workload records the exact operation stream every simulated
thread yields — the host program on its CPU core and each MTTOP device
thread — without perturbing the run: the recorder is a transparent
generator wrapper, so the traced simulation is bit-for-bit identical to an
untraced one.  A saved trace can then be *replayed* under a different
memory-hierarchy shape (``ccsvm-l3``, ``ccsvm-no-tlb``, a resized L2, ...)
without re-deriving the workload: the replay feeds the recorded operations
back through a fresh chip, so a fixed-workload shape sweep costs one
generator pass per point instead of a full workload recomputation.

Replay is exact — byte-identical to simulating the target shape directly —
when the workload's operation stream does not depend on cross-thread
timing.  That holds for data-parallel workloads whose only synchronisation
is signal/wait (``vector_add``: each device thread's stream is a function
of its ``tid`` and the input data).  Workloads whose control flow embeds
arrival order (sense-reversing barriers, atomic-ticket loops) may yield
different streams under different shapes, so their traces replay the
*captured* interleaving rather than the target shape's own; replay is
still a valid simulation, but no longer byte-equal to a direct run.

Traces serialise to a small JSON format (one list entry per operation), so
they can be stored next to benchmark results and replayed by
``repro sweep`` through the ``trace_replay`` workload variant.
"""

from __future__ import annotations

import json
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional

from repro.core.xthreads.api import (
    CpuMttopBarrier,
    CreateMThread,
    SignalCond,
    WaitCond,
)
from repro.cores.interpreter import ThreadProgram
from repro.cores.isa import (
    AtomicAdd,
    AtomicCAS,
    AtomicDec,
    AtomicInc,
    Compute,
    Free,
    Load,
    LoadVector,
    Malloc,
    Operation,
    Store,
    StoreVector,
    WaitValue,
)
from repro.errors import ReproError

#: Trace file format version.  Format 2 added the global ``order`` column
#: (the interleaving of stream ops in capture order); format-1 files still
#: load, falling back to the canonical hosts-then-tasks order.
TRACE_FORMAT = 2

#: Formats :meth:`Trace.from_dict` accepts.
_SUPPORTED_FORMATS = (1, 2)

#: Stream key of the ``i``-th host thread: ``("h", i)``; of device thread
#: ``tid`` of the ``seq``-th submitted task: ``("t", seq, tid)``.
StreamKey = tuple


class TraceError(ReproError):
    """A trace could not be recorded, serialised or replayed."""


# --------------------------------------------------------------------------- #
# Operation <-> JSON row encoding
# --------------------------------------------------------------------------- #
def encode_operation(operation: Operation) -> list:
    """Encode one operation as a compact JSON-serialisable list."""
    if isinstance(operation, Load):
        return ["ld", operation.vaddr]
    if isinstance(operation, Store):
        return ["st", operation.vaddr, operation.value]
    if isinstance(operation, LoadVector):
        return ["ldv", list(operation.vaddrs)]
    if isinstance(operation, StoreVector):
        return ["stv", list(operation.vaddrs), list(operation.values)]
    if isinstance(operation, AtomicAdd):
        return ["aadd", operation.vaddr, operation.delta]
    if isinstance(operation, AtomicInc):
        return ["ainc", operation.vaddr]
    if isinstance(operation, AtomicDec):
        return ["adec", operation.vaddr]
    if isinstance(operation, AtomicCAS):
        return ["acas", operation.vaddr, operation.expected, operation.new]
    if isinstance(operation, WaitValue):
        return ["wait", operation.vaddr, operation.value,
                1 if operation.negate else 0]
    if isinstance(operation, Compute):
        return ["cmp", operation.amount]
    if isinstance(operation, Malloc):
        return ["mal", operation.size]
    if isinstance(operation, Free):
        return ["fre", operation.vaddr]
    if isinstance(operation, CreateMThread):
        args = list(operation.args) if isinstance(operation.args, (list, tuple)) \
            else operation.args
        kernel = operation.kernel if isinstance(operation.kernel, str) \
            else getattr(operation.kernel, "__qualname__", "?")
        return ["cmt", kernel, args,
                operation.first_thread, operation.last_thread]
    if isinstance(operation, WaitCond):
        return ["wcond", operation.condition_vaddr, operation.first_thread,
                operation.last_thread, operation.value]
    if isinstance(operation, SignalCond):
        return ["scond", operation.condition_vaddr, operation.first_thread,
                operation.last_thread, operation.value]
    if isinstance(operation, CpuMttopBarrier):
        return ["cbar", operation.barrier_vaddr, operation.sense_vaddr,
                operation.first_thread, operation.last_thread]
    raise TraceError(f"operation {operation!r} is not traceable")


def decode_operation(row: list) -> Operation:
    """Decode one :func:`encode_operation` row back into an operation.

    A decoded :class:`CreateMThread` carries its recorded kernel *name*
    in place of the callable; the replayer substitutes the recorded
    device streams for it (see :func:`replay_host_program`).
    """
    tag = row[0]
    if tag == "ld":
        return Load(row[1])
    if tag == "st":
        return Store(row[1], row[2])
    if tag == "ldv":
        return LoadVector(tuple(row[1]))
    if tag == "stv":
        return StoreVector(tuple(row[1]), tuple(row[2]))
    if tag == "aadd":
        return AtomicAdd(row[1], row[2])
    if tag == "ainc":
        return AtomicInc(row[1])
    if tag == "adec":
        return AtomicDec(row[1])
    if tag == "acas":
        return AtomicCAS(row[1], row[2], row[3])
    if tag == "wait":
        return WaitValue(row[1], row[2], bool(row[3]))
    if tag == "cmp":
        return Compute(row[1])
    if tag == "mal":
        return Malloc(row[1])
    if tag == "fre":
        return Free(row[1])
    if tag == "cmt":
        args = tuple(row[2]) if isinstance(row[2], list) else row[2]
        return CreateMThread(row[1], args, row[3], row[4])
    if tag == "wcond":
        return WaitCond(row[1], row[2], row[3], row[4])
    if tag == "scond":
        return SignalCond(row[1], row[2], row[3], row[4])
    if tag == "cbar":
        return CpuMttopBarrier(row[1], row[2], row[3], row[4])
    raise TraceError(f"unknown trace row tag {tag!r}")


# --------------------------------------------------------------------------- #
# The trace itself
# --------------------------------------------------------------------------- #
@dataclass
class Trace:
    """One recorded (workload, params, seed) run.

    ``hosts[i]`` is the ``i``-th host thread's stream (index 0 is the main
    host, further entries are ``extra_hosts``); ``tasks[seq][tid]`` is the
    stream of device thread ``tid`` of the ``seq``-th submitted task.
    ``meta`` carries whatever the capturing workload wants to remember —
    conventionally ``output_vaddr``/``output_length``/``expected`` so a
    replay can verify its produced results.
    """

    workload: str = ""
    params: Dict[str, object] = field(default_factory=dict)
    seed: int = 0
    preset: str = ""
    hosts: List[List[Operation]] = field(default_factory=list)
    tasks: Dict[int, Dict[int, List[Operation]]] = field(default_factory=dict)
    meta: Dict[str, object] = field(default_factory=dict)
    #: Global capture order: one :data:`StreamKey` per recorded operation,
    #: in the order the simulation issued them across all threads.  Empty
    #: for hand-built traces; :meth:`effective_order` falls back to the
    #: canonical hosts-then-tasks order when it does not cover every op.
    order: List[StreamKey] = field(default_factory=list)

    @property
    def host_ops(self) -> List[Operation]:
        """The main host thread's stream (shorthand for ``hosts[0]``)."""
        return self.hosts[0] if self.hosts else []

    @property
    def operation_count(self) -> int:
        """Total recorded operations across every host and device thread."""
        total = sum(len(ops) for ops in self.hosts)
        for streams in self.tasks.values():
            total += sum(len(ops) for ops in streams.values())
        return total

    def stream(self, key: StreamKey) -> List[Operation]:
        """The operation list a :data:`StreamKey` names."""
        if key[0] == "h":
            return self.hosts[key[1]]
        if key[0] == "t":
            return self.tasks[key[1]][key[2]]
        raise TraceError(f"unknown stream key {key!r}")

    def _canonical_order(self) -> List[StreamKey]:
        """Hosts in index order, then tasks by ``(seq, tid)`` — the order
        format-1 traces (and hand-built ones) replay in."""
        order: List[StreamKey] = []
        for index, ops in enumerate(self.hosts):
            order.extend([("h", index)] * len(ops))
        for seq in sorted(self.tasks):
            streams = self.tasks[seq]
            for tid in sorted(streams):
                order.extend([("t", seq, tid)] * len(streams[tid]))
        return order

    def effective_order(self) -> List[StreamKey]:
        """The capture order if it covers every op, else the canonical one.

        The returned list may alias :attr:`order`; treat it as read-only.
        """
        if len(self.order) == self.operation_count and self.order:
            return self.order
        return self._canonical_order()

    def interleaved(self) -> Iterator[tuple]:
        """Yield ``(stream_key, operation)`` in global capture order."""
        cursors: Dict[StreamKey, int] = {}
        streams: Dict[StreamKey, List[Operation]] = {}
        for key in self.effective_order():
            stream = streams.get(key)
            if stream is None:
                stream = streams[key] = self.stream(key)
            index = cursors.get(key, 0)
            cursors[key] = index + 1
            yield key, stream[index]

    def to_dict(self) -> dict:
        """Serialise to the JSON trace format."""
        table: List[list] = []
        table_index: Dict[StreamKey, int] = {}
        order_ints: List[int] = []
        for key in self.effective_order():
            ix = table_index.get(key)
            if ix is None:
                ix = table_index[key] = len(table)
                table.append(list(key))
            order_ints.append(ix)
        return {
            "format": TRACE_FORMAT,
            "workload": self.workload,
            "params": self.params,
            "seed": self.seed,
            "preset": self.preset,
            "meta": self.meta,
            "hosts": [[encode_operation(op) for op in ops]
                      for ops in self.hosts],
            "tasks": {
                str(seq): {str(tid): [encode_operation(op) for op in ops]
                           for tid, ops in streams.items()}
                for seq, streams in self.tasks.items()
            },
            "streams": table,
            "order": order_ints,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Trace":
        """Load from the JSON trace format (formats 1 and 2)."""
        if data.get("format") not in _SUPPORTED_FORMATS:
            raise TraceError(
                f"unsupported trace format {data.get('format')!r} "
                f"(expected one of {_SUPPORTED_FORMATS})"
            )
        table = [tuple(key) for key in data.get("streams", [])]
        try:
            order = [table[ix] for ix in data.get("order", [])]
        except IndexError:
            raise TraceError("trace order references an unknown stream") \
                from None
        return cls(
            workload=data.get("workload", ""),
            params=dict(data.get("params", {})),
            seed=data.get("seed", 0),
            preset=data.get("preset", ""),
            meta=dict(data.get("meta", {})),
            hosts=[[decode_operation(row) for row in ops]
                   for ops in data.get("hosts", [])],
            tasks={
                int(seq): {int(tid): [decode_operation(row) for row in ops]
                           for tid, ops in streams.items()}
                for seq, streams in data.get("tasks", {}).items()
            },
            order=order,
        )

    def save(self, path) -> None:
        """Write the trace as JSON to ``path``."""
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_dict(), handle, separators=(",", ":"))
            handle.write("\n")

    @classmethod
    def load(cls, path) -> "Trace":
        """Read a JSON trace from ``path``."""
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_dict(json.load(handle))


# --------------------------------------------------------------------------- #
# Recording
# --------------------------------------------------------------------------- #
class TraceRecorder:
    """Records every operation stream of one chip run.

    Attach to a chip with :meth:`repro.core.chip.CCSVMChip.attach_trace_recorder`
    before calling ``run``; afterwards :attr:`trace` holds the full trace.
    The wrappers are transparent: operations and the values sent back flow
    through unchanged, and a retried operation (spin-wait) is recorded
    once, because cores re-execute a pending operation without resuming
    the generator.
    """

    def __init__(self, workload: str = "", params: Optional[dict] = None,
                 seed: int = 0, preset: str = "") -> None:
        self.trace = Trace(workload=workload, params=dict(params or {}),
                           seed=seed, preset=preset)

    def wrap_host(self, program: ThreadProgram) -> ThreadProgram:
        """Wrap one host thread's program, appending a new host stream."""
        stream: List[Operation] = []
        key = ("h", len(self.trace.hosts))
        self.trace.hosts.append(stream)
        return self._record(program, stream, key)

    def wrap_device(self, task_seq: int, tid: int,
                    program: ThreadProgram) -> ThreadProgram:
        """Wrap one device thread's program (the MIFD ``program_wrapper``)."""
        streams = self.trace.tasks.setdefault(task_seq, {})
        return self._record(program, streams.setdefault(tid, []),
                            ("t", task_seq, tid))

    def _record(self, program: ThreadProgram, stream: List[Operation],
                key: tuple) -> ThreadProgram:
        order = self.trace.order
        value = None
        while True:
            try:
                operation = program.send(value)
            except StopIteration:
                return
            stream.append(operation)
            order.append(key)
            value = yield operation


#: Recorder auto-attached to every chip built while a :func:`capture`
#: context is active (:meth:`repro.core.chip.CCSVMChip.run` checks it).
_ACTIVE_RECORDER: Optional[TraceRecorder] = None


def active_recorder() -> Optional[TraceRecorder]:
    """The recorder of the enclosing :func:`capture` context, if any."""
    return _ACTIVE_RECORDER


@contextmanager
def capture(workload: str = "", params: Optional[dict] = None,
            seed: int = 0, preset: str = "") -> Iterator[TraceRecorder]:
    """Record every chip run in the ``with`` body into one recorder.

    Lets a registered workload variant be traced without exposing its
    internal chip: any :class:`~repro.core.chip.CCSVMChip` constructed and
    run inside the context attaches the recorder automatically.
    """
    global _ACTIVE_RECORDER
    if _ACTIVE_RECORDER is not None:
        raise TraceError("a trace capture is already active")
    recorder = TraceRecorder(workload=workload, params=params, seed=seed,
                             preset=preset)
    _ACTIVE_RECORDER = recorder
    try:
        yield recorder
    finally:
        _ACTIVE_RECORDER = None


# --------------------------------------------------------------------------- #
# Replay
# --------------------------------------------------------------------------- #
def replay_host_program(trace: Trace) -> ThreadProgram:
    """Build a host program that re-yields the trace's operation streams.

    Each recorded :class:`CreateMThread` is re-issued with a kernel that
    serves the recorded device streams by ``tid``, matched to tasks in
    submission order.  Values the simulator sends back are ignored — the
    recorded stream already embeds the run's control flow.  Only
    single-host traces replay: with several host threads the mapping from
    a host's ``CreateMThread`` ordinal to the MIFD's global submission
    order would depend on timing.
    """
    if len(trace.hosts) != 1:
        raise TraceError(
            f"replay needs a single-host trace, got {len(trace.hosts)} "
            "host streams"
        )
    task_counter = [0]

    def host():
        for operation in trace.host_ops:
            if isinstance(operation, CreateMThread):
                seq = task_counter[0]
                task_counter[0] += 1
                operation = CreateMThread(_replay_kernel(trace, seq),
                                          operation.args,
                                          operation.first_thread,
                                          operation.last_thread)
            yield operation

    return host()


def _replay_kernel(trace: Trace, task_seq: int) -> Callable:
    streams = trace.tasks.get(task_seq)
    if streams is None:
        raise TraceError(f"trace has no recorded task #{task_seq}")

    def kernel(tid: int, args) -> ThreadProgram:
        ops = streams.get(tid)
        if ops is None:
            raise TraceError(
                f"trace task #{task_seq} has no stream for thread {tid}"
            )
        for operation in ops:
            yield operation

    return kernel
