"""Cache-only replay: walk a captured trace through a bare hierarchy.

``repro.mem.trace`` replay still pays for the whole machine — cores, the
sim engine, the MIFD, the xthreads runtime — even though a fixed trace's
reference stream is identical under every hierarchy shape.  This module
drops everything except the memory system itself: it assembles the same
TLBs, private L1s, MOESI-directory L2 banks, optional L3 and DRAM model a
:class:`~repro.core.chip.CCSVMChip` would build (same names, same latency
parameters), then feeds the recorded per-thread operation streams through
the ports directly, interleaved in global capture order.

Because the ports, the coherence controller and the VM manager are the
*identical* objects direct simulation uses, every hierarchy counter —
``tlb.*``, ``walker.*``, ``l1d.*``, ``l2.*``, ``l3.*``, ``coherence.*``,
``dram.*``, ``network.*``, ``os.*`` — matches a full simulation of the
same stream exactly.  What cache-only replay does *not* reproduce are the
core/engine-side counters (instructions, engine steps, xthreads service
stats) and the simulated makespan: :attr:`ReplayResult.time_ps` is the sum
of per-access latencies (a serial cost proxy), not the parallel schedule's
finish time.

Synchronisation operations expand to their deterministic memory footprint
(the footprint the runtime performs when the condition is already true):

* ``WaitValue``/``WaitCond`` poll each watched slot once — the recorded
  stream embeds the captured interleaving, so the poll succeeds by
  construction;
* ``SignalCond`` stores its value into every slot in ``[first, last]``,
  exactly like ``XThreadsRuntime._cpu_signal``;
* ``CpuMttopBarrier`` reads each slot, clears it, then flips the sense
  word — the satisfied-barrier sequence.

Spin *re*-polls are timing-dependent and are not recorded in traces, so a
trace whose capture involved spinning replays with fewer poll loads than
the original run; for single-threaded (host-only) traces the replay is
counter-exact, which is what the equivalence gate in
``tests/mem/test_replay_equivalence.py`` locks down.

Device streams are placed on MTTOP nodes with the MIFD's round-robin
chunk rule (SIMD-width chunks, one core per chunk, cursor persisting
across tasks), which matches the real MIFD whenever thread contexts never
run out — true for every builtin workload at default sizes.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple, Union

from repro.baseline.cpu import BaselineCPUPort
from repro.baseline.memory import FlatMemory, PrivateCacheHierarchy
from repro.coherence.protocol import CoherentMemorySystem
from repro.config import (
    APUSystemConfig,
    CCSVMSystemConfig,
    ConfigurationError,
    amd_apu_system,
    ccsvm_system,
)
from repro.core.xthreads.api import (
    CpuMttopBarrier,
    CreateMThread,
    SignalCond,
    WaitCond,
    cond_entry,
)
from repro.cores.isa import (
    AtomicAdd,
    AtomicCAS,
    AtomicDec,
    AtomicInc,
    Compute,
    Free,
    Load,
    LoadVector,
    Malloc,
    Store,
    StoreVector,
    WaitValue,
)
from repro.interconnect.network import NetworkModel
from repro.interconnect.topology import Torus2DTopology
from repro.mem.assemble import (
    build_apu_shared_l2,
    build_ccsvm_l1,
    build_l2_banks,
    build_l3_level,
)
from repro.mem.batch import OP_ATOMIC_ADD, OP_ATOMIC_CAS, OP_LOAD, OP_STORE
from repro.mem.port import CoreMemoryPort
from repro.mem.trace import Trace, TraceError
from repro.memory.dram import DRAMModel
from repro.memory.physical import FrameAllocator, PhysicalMemory
from repro.sim.clock import ClockDomain, ns_to_ps
from repro.sim.stats import StatsRegistry
from repro.vm.manager import VirtualMemoryManager
from repro.vm.shootdown import TLBShootdownController
from repro.vm.tlb import TLB
from repro.vm.walker import PageTableWalker


@dataclass(frozen=True)
class ReplayResult:
    """Outcome of one cache-only replay."""

    #: Sum of every access's latency — a serial cost proxy for comparing
    #: hierarchy shapes, *not* the parallel makespan a full run reports.
    time_ps: int
    #: Operations replayed (memory + allocation + expanded sync footprint).
    operations: int
    stats: StatsRegistry

    @property
    def dram_accesses(self) -> int:
        """Off-chip DRAM accesses performed during the replay."""
        return self.stats.get("dram.reads") + self.stats.get("dram.writes")

    def stats_snapshot(self) -> Dict[str, int]:
        """A plain-dict copy of every counter (useful for diffing)."""
        return self.stats.to_dict()


# --------------------------------------------------------------------------- #
# CCSVM hierarchy — the chip's memory system without the chip
# --------------------------------------------------------------------------- #
class CCSVMReplayHierarchy:
    """The CCSVM memory system exactly as :class:`CCSVMChip` assembles it.

    Node names, cache geometry, walker latencies and the coherence fabric
    are byte-for-byte the chip's; only cores, engine, MIFD and runtime are
    absent.  One :class:`CoreMemoryPort` exists per cpu/mttop node, all
    sharing a single process address space.
    """

    def __init__(self, config: CCSVMSystemConfig,
                 fast_access_path: bool = True) -> None:
        cfg = config
        if cfg.mttop.write_through:
            raise ConfigurationError(
                "mttop.write_through=true is not modeled (write-back MTTOP "
                "L1s only); cannot replay against this shape")
        self.config = cfg
        self.stats = StatsRegistry()

        # Memory + VM (chip: _build_memory).
        self.physical_memory = PhysicalMemory(cfg.dram.size_bytes)
        self.frames = FrameAllocator(cfg.dram.size_bytes)
        self.vm = VirtualMemoryManager(self.physical_memory, self.frames,
                                       stats=self.stats)
        self.dram = DRAMModel(cfg.dram.latency_ns, stats=self.stats,
                              name="dram")
        self.shootdown = TLBShootdownController(stats=self.stats)

        # Interconnect (chip: _build_interconnect).
        self.cpu_nodes = [f"cpu{i}" for i in range(cfg.cpu.count)]
        self.mttop_nodes = [f"mttop{i}" for i in range(cfg.mttop.count)]
        self.l2_nodes = [f"l2b{i}" for i in range(cfg.l2.banks)]
        self.memory_node = "mem0"
        all_nodes = (self.cpu_nodes + self.mttop_nodes + self.l2_nodes
                     + [self.memory_node])
        self.topology = Torus2DTopology.fit(all_nodes)
        self.network = NetworkModel(
            self.topology, link_bandwidth_gbps=cfg.noc.link_bandwidth_gbps,
            per_hop_latency_ns=cfg.noc.hop_latency_ns, stats=self.stats)

        # Shared L2 banks + optional L3 + MOESI (chip: _build_l2_and_coherence).
        self.cpu_clock = ClockDomain.from_ghz("cpu", cfg.cpu.frequency_ghz)
        self.mttop_clock = ClockDomain.from_mhz("mttop",
                                                cfg.mttop.frequency_mhz)
        self._l2_hit_ps = self.cpu_clock.cycles_to_ps(
            cfg.l2.hit_latency_cpu_cycles)
        self.l2_banks = build_l2_banks(cfg, self.l2_nodes, self._l2_hit_ps,
                                       stats=self.stats)
        self.l3_level = build_l3_level(cfg, self.cpu_clock, stats=self.stats)
        self.coherence = CoherentMemorySystem(self.network, self.dram,
                                              self.l2_banks, self.memory_node,
                                              stats=self.stats,
                                              l3=self.l3_level)

        # Per-node L1 + TLB + walker + port (chip: _build_cores, minus the
        # cores themselves).
        self.ports: Dict[str, CoreMemoryPort] = {}
        cpu_l1_hit_ps = self.cpu_clock.cycles_to_ps(cfg.cpu.l1_hit_cycles)
        for node in self.cpu_nodes:
            l1 = build_ccsvm_l1(node, size_bytes=cfg.cpu.l1_size_bytes,
                                associativity=cfg.cpu.l1_associativity,
                                hit_latency_ps=cpu_l1_hit_ps,
                                replacement=cfg.cpu.l1_replacement,
                                stats=self.stats)
            self.coherence.register_l1(node, l1, cpu_l1_hit_ps)
            port = self._make_port(node, cfg.cpu.tlb_entries,
                                   fast_access_path)
            if port.tlb is not None:
                self.shootdown.register_cpu_tlb(port.tlb)
            self.ports[node] = port
        mttop_l1_hit_ps = self.mttop_clock.cycles_to_ps(
            cfg.mttop.l1_hit_cycles)
        for node in self.mttop_nodes:
            l1 = build_ccsvm_l1(node, size_bytes=cfg.mttop.l1_size_bytes,
                                associativity=cfg.mttop.l1_associativity,
                                hit_latency_ps=mttop_l1_hit_ps,
                                replacement=cfg.mttop.l1_replacement,
                                stats=self.stats)
            self.coherence.register_l1(node, l1, mttop_l1_hit_ps)
            port = self._make_port(node, cfg.mttop.tlb_entries,
                                   fast_access_path)
            if port.tlb is not None:
                self.shootdown.register_mttop_tlb(port.tlb)
            self.ports[node] = port

        self.space = self.vm.create_address_space()
        for port in self.ports.values():
            port.set_address_space(self.space)

    def _make_port(self, node: str, tlb_entries: int,
                   fast_access_path: bool) -> CoreMemoryPort:
        tlb: Optional[TLB] = None
        if self.config.tlb_enabled:
            tlb = TLB(entries=tlb_entries, stats=self.stats,
                      name=f"tlb.{node}")
        hop_ps = ns_to_ps(self.config.noc.hop_latency_ns)
        walker = PageTableWalker(
            self.physical_memory,
            default_entry_latency_ps=self._l2_hit_ps + 4 * hop_ps,
            stats=self.stats, name=f"walker.{node}")
        return CoreMemoryPort(node=node, tlb=tlb, walker=walker,
                              coherence=self.coherence,
                              physical_memory=self.physical_memory,
                              vm_manager=self.vm, stats=self.stats,
                              sc_checker=None, fast_path=fast_access_path,
                              batch_enabled=self.config.batch_access)


# --------------------------------------------------------------------------- #
# Stream walking
# --------------------------------------------------------------------------- #
def _mifd_placement(trace: Trace, simd_width: int,
                    mttop_nodes: List[str]) -> Dict[Tuple[int, int], str]:
    """Map every ``(task_seq, tid)`` to its MTTOP node.

    Replicates ``MIFD.submit_task``: tasks in submission (seq) order, each
    split into SIMD-width chunks of ascending tids, chunks assigned
    round-robin with a cursor that persists across tasks.
    """
    placement: Dict[Tuple[int, int], str] = {}
    if not trace.tasks:
        return placement
    if not mttop_nodes:
        raise TraceError("trace has device streams but the target shape "
                         "has no MTTOP cores")
    cursor = 0
    count = len(mttop_nodes)
    for seq in sorted(trace.tasks):
        tids = sorted(trace.tasks[seq])
        for start in range(0, len(tids), simd_width):
            node = mttop_nodes[cursor % count]
            cursor += 1
            for tid in tids[start:start + simd_width]:
                placement[(seq, tid)] = node
    return placement


class _PortWalker:
    """Feeds one interleaved trace through a set of ports.

    The batch lane coalesces consecutive plain memory ops bound for the
    same node into one ``port.run_batch`` call (the columnar engine is
    counter- and latency-identical to the scalar loop, so coalescing is
    free); any other operation flushes the pending batch first.  Batches
    are capped at :data:`_BATCH_CAP` ops: the engine's per-segment gather
    window scales with the batch, so an unbounded batch turns segment
    restarts (cold misses, atomics) super-linear.  The cap is invisible —
    splitting a batch anywhere is counter- and latency-identical.

    The grouping depends only on the trace (never on the hierarchy
    shape), so :func:`_compile` runs this lane once per trace to produce
    a flat program that every subsequent shape evaluation replays without
    re-interleaving streams or re-dispatching operation types.
    """

    _BATCH_CAP = 1024

    def __init__(self, ports: Dict[str, object], engine: str) -> None:
        if engine not in ("batch", "scalar"):
            raise TraceError(f"unknown replay engine {engine!r} "
                             "(expected 'batch' or 'scalar')")
        self.ports = ports
        self.batched = engine == "batch"
        self.time_ps = 0
        self.operations = 0
        self._pending: List[tuple] = []
        self._pending_node: Optional[str] = None

    # -- batch lane ---------------------------------------------------- #
    def _flush(self) -> None:
        if not self._pending:
            return
        port = self.ports[self._pending_node]
        if len(self._pending) < 4:
            # Device streams interleave nodes op-by-op; runt batches are
            # cheaper through the scalar port calls (counter-identical —
            # the engine guarantees batch == scalar at any split).
            for op in self._pending:
                self._scalar(port, op)
            self._pending = []
            return
        _values, lats = port.run_batch(self._pending)
        self.time_ps += sum(lats)
        self.operations += len(self._pending)
        self._pending = []

    def _scalar(self, port, op: tuple) -> None:
        kind = op[0]
        if kind == OP_LOAD:
            _value, lat = port.load(op[1])
        elif kind == OP_STORE:
            lat = port.store(op[1], op[2])
        elif kind == OP_ATOMIC_ADD:
            _value, lat = port.atomic_add(op[1], op[2])
        else:
            _value, lat = port.atomic_cas(op[1], op[2], op[3])
        self.time_ps += lat
        self.operations += 1

    def _push(self, node: str, op: tuple) -> None:
        if self.batched:
            if self._pending and (self._pending_node != node or
                                  len(self._pending) >= self._BATCH_CAP):
                self._flush()
            self._pending_node = node
            self._pending.append(op)
            return
        self._scalar(self.ports[node], op)

    # -- per-operation dispatch ---------------------------------------- #
    def memory_op(self, node: str, operation) -> bool:
        """Push ``operation`` if it is a plain memory op; False otherwise."""
        if isinstance(operation, Load):
            self._push(node, (OP_LOAD, operation.vaddr, 0, 0))
        elif isinstance(operation, Store):
            self._push(node, (OP_STORE, operation.vaddr, operation.value, 0))
        elif isinstance(operation, LoadVector):
            for vaddr in operation.vaddrs:
                self._push(node, (OP_LOAD, vaddr, 0, 0))
        elif isinstance(operation, StoreVector):
            for vaddr, value in zip(operation.vaddrs, operation.values):
                self._push(node, (OP_STORE, vaddr, value, 0))
        elif isinstance(operation, AtomicAdd):
            self._push(node, (OP_ATOMIC_ADD, operation.vaddr,
                              operation.delta, 0))
        elif isinstance(operation, AtomicInc):
            self._push(node, (OP_ATOMIC_ADD, operation.vaddr, 1, 0))
        elif isinstance(operation, AtomicDec):
            self._push(node, (OP_ATOMIC_ADD, operation.vaddr, -1, 0))
        elif isinstance(operation, AtomicCAS):
            self._push(node, (OP_ATOMIC_CAS, operation.vaddr,
                              operation.expected, operation.new))
        elif isinstance(operation, WaitValue):
            # One poll: the captured interleaving satisfied the wait.
            self._push(node, (OP_LOAD, operation.vaddr, 0, 0))
        else:
            return False
        return True

    def scalar_load(self, node: str, vaddr: int) -> int:
        self._flush()
        port = self.ports[node]
        value, lat = port.load(vaddr)
        self.time_ps += lat
        self.operations += 1
        return value

    def scalar_store(self, node: str, vaddr: int, value: int) -> None:
        self._flush()
        port = self.ports[node]
        self.time_ps += port.store(vaddr, value)
        self.operations += 1


# --------------------------------------------------------------------------- #
# Trace programs — interleave and dispatch once, replay per shape
# --------------------------------------------------------------------------- #
class _ProgramBuilder(_PortWalker):
    """A :class:`_PortWalker` whose flushes emit program instructions.

    Instructions (plain tuples, shape-independent):

    * ``("B", node, ops)`` — a coalesced run of plain memory op tuples;
    * ``("M", size)`` / ``("F", vaddr)`` — allocator calls;
    * ``("X", node, sense_vaddr)`` — a barrier's sense read-and-flip
      (value-dependent, so it stays scalar at run time).
    """

    def __init__(self) -> None:
        super().__init__(ports={}, engine="batch")
        self.program: List[tuple] = []

    def _flush(self) -> None:
        if self._pending:
            self.program.append(("B", self._pending_node, self._pending))
            self._pending = []

    def emit(self, instruction: tuple) -> None:
        self._flush()
        self.program.append(instruction)


def _compile_ccsvm(trace: Trace, simd_width: int,
                   mttop_count: int) -> List[tuple]:
    """Compile a trace against a MTTOP layout (CCSVM op set)."""
    mttop_nodes = [f"mttop{i}" for i in range(mttop_count)]
    placement = _mifd_placement(trace, simd_width, mttop_nodes)
    builder = _ProgramBuilder()
    for key, operation in trace.interleaved():
        node = (f"cpu{key[1]}" if key[0] == "h"
                else placement[(key[1], key[2])])
        if builder.memory_op(node, operation):
            continue
        if isinstance(operation, (Compute, CreateMThread)):
            continue
        if isinstance(operation, Malloc):
            builder.emit(("M", operation.size))
            continue
        if isinstance(operation, Free):
            builder.emit(("F", operation.vaddr))
            continue
        if isinstance(operation, WaitCond):
            for tid in range(operation.first_thread,
                             operation.last_thread + 1):
                builder._push(node, (OP_LOAD, cond_entry(
                    operation.condition_vaddr, tid), 0, 0))
            continue
        if isinstance(operation, SignalCond):
            # Mirrors XThreadsRuntime._cpu_signal: one store per slot.
            for tid in range(operation.first_thread,
                             operation.last_thread + 1):
                builder._push(node, (OP_STORE, cond_entry(
                    operation.condition_vaddr, tid), operation.value, 0))
            continue
        if isinstance(operation, CpuMttopBarrier):
            # The satisfied-barrier sequence: read every slot, clear every
            # slot, flip the sense word.
            for tid in range(operation.first_thread,
                             operation.last_thread + 1):
                builder._push(node, (OP_LOAD, cond_entry(
                    operation.barrier_vaddr, tid), 0, 0))
            for tid in range(operation.first_thread,
                             operation.last_thread + 1):
                builder._push(node, (OP_STORE, cond_entry(
                    operation.barrier_vaddr, tid), 0, 0))
            builder.emit(("X", node, operation.sense_vaddr))
            continue
        raise TraceError(f"cache replay cannot execute {operation!r}")
    builder._flush()
    return builder.program


def _compile_flat(trace: Trace) -> List[tuple]:
    """Compile a host-only trace (flat-memory op subset)."""
    builder = _ProgramBuilder()
    for key, operation in trace.interleaved():
        node = f"cpu{key[1]}"
        if builder.memory_op(node, operation):
            continue
        if isinstance(operation, Compute):
            continue
        if isinstance(operation, Malloc):
            builder.emit(("M", operation.size))
            continue
        if isinstance(operation, Free):
            builder.emit(("F", operation.vaddr))
            continue
        raise TraceError(f"the flat-memory replayer cannot execute "
                         f"{operation!r}")
    builder._flush()
    return builder.program


def _compiled_program(trace: Trace, key: tuple, compile_fn) -> List[tuple]:
    """The trace's compiled program for ``key``, built at most once.

    Programs depend only on the trace and the MTTOP layout — never on
    cache/TLB shape — so a DSE sweep re-interleaves and re-dispatches the
    stream exactly once, not once per design point.
    """
    programs = trace.__dict__.setdefault("_replay_programs", {})
    program = programs.get(key)
    if program is None:
        program = programs[key] = compile_fn()
    return program


def _run_program(program: List[tuple], ports: Dict[str, object],
                 batched: bool, do_malloc, do_free) -> Tuple[int, int]:
    """Execute a compiled program; returns ``(time_ps, operations)``.

    Counter- and latency-identical to walking the trace through a
    :class:`_PortWalker`: the program *is* that walker's batch grouping,
    precomputed.
    """
    time_ps = 0
    operations = 0
    for ins in program:
        tag = ins[0]
        if tag == "B":
            ops = ins[2]
            port = ports[ins[1]]
            if batched and len(ops) >= 4:
                _values, lats = port.run_batch(ops)
                time_ps += sum(lats)
            else:
                for op in ops:
                    kind = op[0]
                    if kind == OP_LOAD:
                        _value, lat = port.load(op[1])
                    elif kind == OP_STORE:
                        lat = port.store(op[1], op[2])
                    elif kind == OP_ATOMIC_ADD:
                        _value, lat = port.atomic_add(op[1], op[2])
                    else:
                        _value, lat = port.atomic_cas(op[1], op[2], op[3])
                    time_ps += lat
            operations += len(ops)
        elif tag == "M":
            do_malloc(ins[1])
            operations += 1
        elif tag == "F":
            do_free(ins[1])
            operations += 1
        else:  # "X": barrier sense read-and-flip
            port = ports[ins[1]]
            sense, lat = port.load(ins[2])
            time_ps += lat
            time_ps += port.store(ins[2], 1 - sense)
            operations += 2
    return time_ps, operations


#: Small FIFO of parsed traces keyed by (path, mtime, size): a DSE sweep
#: hands every design point the same trace *path*, and parsing a large
#: JSON stream per point would dwarf the replay itself.
_TRACE_CACHE: Dict[tuple, Trace] = {}
_TRACE_CACHE_MAX = 8


def load_trace_cached(path: str) -> Trace:
    """Load a trace file, reusing the parsed object for an unchanged file.

    The cached :class:`Trace` also carries its compiled replay programs,
    so repeated shape evaluations of one capture skip both the JSON parse
    and the stream interleave.  Callers must not mutate the result.
    """
    st = os.stat(path)
    key = (os.path.abspath(path), st.st_mtime_ns, st.st_size)
    trace = _TRACE_CACHE.get(key)
    if trace is None:
        while len(_TRACE_CACHE) >= _TRACE_CACHE_MAX:
            _TRACE_CACHE.pop(next(iter(_TRACE_CACHE)))
        trace = _TRACE_CACHE[key] = Trace.load(path)
    return trace


# --------------------------------------------------------------------------- #
# CCSVM replay
# --------------------------------------------------------------------------- #
def replay_trace(trace: Union[Trace, str],
                 config: Optional[CCSVMSystemConfig] = None,
                 engine: str = "batch") -> ReplayResult:
    """Replay a trace (object or file path) through a CCSVM hierarchy
    shape, cache-only.

    ``engine='batch'`` coalesces same-node runs of plain memory ops
    through the columnar batch engine; ``'scalar'`` walks the unchanged
    per-word port methods.  Both produce identical counters and time.
    """
    if engine not in ("batch", "scalar"):
        raise TraceError(f"unknown replay engine {engine!r} "
                         "(expected 'batch' or 'scalar')")
    if isinstance(trace, str):
        trace = load_trace_cached(trace)
    hierarchy = CCSVMReplayHierarchy(config if config is not None
                                     else ccsvm_system())
    cfg = hierarchy.config
    if len(trace.hosts) > len(hierarchy.cpu_nodes):
        raise TraceError(
            f"{len(trace.hosts)} host streams exceed {cfg.cpu.count} "
            "CPU cores")
    simd = cfg.mttop.simd_width
    count = len(hierarchy.mttop_nodes)
    program = _compiled_program(
        trace, ("ccsvm", simd, count),
        lambda: _compile_ccsvm(trace, simd, count))
    vm, space = hierarchy.vm, hierarchy.space
    # The deterministic bump allocator hands back the captured run's
    # addresses, so recorded pointers stay valid.
    time_ps, operations = _run_program(
        program, hierarchy.ports, engine == "batch",
        lambda size: vm.malloc(space, size),
        lambda vaddr: vm.free(space, vaddr))
    return ReplayResult(time_ps=time_ps, operations=operations,
                        stats=hierarchy.stats)


# --------------------------------------------------------------------------- #
# Baseline (flat-memory) replay — the apu-shared-l2 family
# --------------------------------------------------------------------------- #
def replay_trace_flat(trace: Union[Trace, str],
                      config: Optional[APUSystemConfig] = None,
                      engine: str = "batch") -> ReplayResult:
    """Replay a trace's host streams through the APU cache hierarchy.

    Builds the same per-core :class:`PrivateCacheHierarchy` stacks (and
    pooled shared L2, when ``config.cpu.l2_shared``) the
    :class:`~repro.baseline.apu.AMDAPU` machine assembles, and walks host
    stream ``i`` through core ``i``'s port.  Device streams have no APU
    CPU analog, so traces with device tasks are rejected.
    """
    if engine not in ("batch", "scalar"):
        raise TraceError(f"unknown replay engine {engine!r} "
                         "(expected 'batch' or 'scalar')")
    if isinstance(trace, str):
        trace = load_trace_cached(trace)
    if config is None:
        config = amd_apu_system()
    if trace.tasks:
        raise TraceError("the flat-memory replayer takes host-only traces "
                         "(device streams have no APU CPU analog)")
    if len(trace.hosts) > config.cpu.count:
        raise TraceError(f"{len(trace.hosts)} host streams exceed "
                         f"{config.cpu.count} APU CPU cores")

    stats = StatsRegistry()
    memory = FlatMemory()
    dram = DRAMModel(config.dram.latency_ns, stats=stats, name="dram")
    shared_l2 = build_apu_shared_l2(config, stats=stats)
    ports: Dict[str, BaselineCPUPort] = {}
    for index in range(len(trace.hosts)):
        hierarchy = PrivateCacheHierarchy(
            name=f"apu_cpu{index}",
            dram=dram,
            l1_size_bytes=config.cpu.l1_size_bytes,
            l1_associativity=config.cpu.l1_associativity,
            l1_hit_ps=ns_to_ps(config.cpu.l1_hit_ns),
            l2_size_bytes=config.cpu.l2_size_bytes,
            l2_associativity=config.cpu.l2_associativity,
            l2_hit_ps=ns_to_ps(config.cpu.l2_hit_ns),
            l1_replacement=config.cpu.l1_replacement,
            l2_replacement=config.cpu.l2_replacement,
            shared_l2=shared_l2,
            stats=stats)
        ports[f"cpu{index}"] = BaselineCPUPort(memory, hierarchy)

    program = _compiled_program(trace, ("flat",),
                                lambda: _compile_flat(trace))
    # BaselineCPUCore services Malloc from the flat bump allocator without
    # touching the hierarchy (and treats Free as a no-op); mirror it for
    # state parity.
    time_ps, operations = _run_program(
        program, ports, engine == "batch",
        lambda size: memory.allocate(size),
        lambda vaddr: None)
    return ReplayResult(time_ps=time_ps, operations=operations, stats=stats)
