"""Assemble :mod:`repro.mem` levels from the ``repro.config`` shape dataclasses.

This is the one place that knows how a configuration dataclass maps onto
built memory-hierarchy parts, for *both* machines:

* the CCSVM chip's per-core L1 tag stores, banked shared L2 (with its
  directory slices) and optional memory-side L3;
* the APU baseline's per-core private hierarchies, whose L2 level is
  either private per core or one pooled :class:`CacheLevel` shared by all
  of them, depending on the configured shape.

:class:`~repro.core.chip.CCSVMChip` and
:class:`~repro.baseline.apu.AMDAPU` call these builders instead of
hand-constructing caches, so a new hierarchy shape is a config change —
reachable by dotted-path overrides — not a new code path.
"""

from __future__ import annotations

from typing import List, Optional

from repro.cache.cache import SetAssociativeCache
from repro.coherence.directory import Directory
from repro.coherence.protocol import L2Bank
from repro.config import APUSystemConfig, CCSVMSystemConfig
from repro.mem.levels import CacheLevel, LevelSpec, build_cache
from repro.sim.clock import ClockDomain, ns_to_ps
from repro.sim.stats import StatsRegistry


# --------------------------------------------------------------------------- #
# CCSVM chip
# --------------------------------------------------------------------------- #
def build_ccsvm_l1(node: str, *, size_bytes: int, associativity: int,
                   hit_latency_ps: int, replacement: str,
                   stats: Optional[StatsRegistry] = None) -> SetAssociativeCache:
    """One core's private L1 data cache (registered with the directory)."""
    spec = LevelSpec(label="l1", size_bytes=size_bytes,
                     associativity=associativity,
                     hit_latency_ps=hit_latency_ps, replacement=replacement)
    return build_cache(spec, f"l1d.{node}", stats=stats)


def build_l2_banks(config: CCSVMSystemConfig, node_names: List[str],
                   hit_latency_ps: int,
                   stats: Optional[StatsRegistry] = None) -> List[L2Bank]:
    """The banked, inclusive shared L2 with one directory slice per bank."""
    spec = LevelSpec(label="l2", size_bytes=config.l2.bank_size_bytes,
                     associativity=config.l2.associativity,
                     hit_latency_ps=hit_latency_ps,
                     replacement=config.l2.replacement)
    banks: List[L2Bank] = []
    for index, node in enumerate(node_names):
        cache = build_cache(spec, f"l2.bank{index}", stats=stats)
        banks.append(L2Bank(name=node, cache=cache,
                            directory=Directory(name=f"dir{index}"),
                            hit_latency_ps=hit_latency_ps))
    return banks


def build_l3_level(config: CCSVMSystemConfig, cpu_clock: ClockDomain,
                   stats: Optional[StatsRegistry] = None
                   ) -> Optional[CacheLevel]:
    """The optional memory-side L3 (``None`` when the shape disables it)."""
    if not config.l3.enabled:
        return None
    spec = LevelSpec(
        label="l3", size_bytes=config.l3.total_size_bytes,
        associativity=config.l3.associativity,
        hit_latency_ps=cpu_clock.cycles_to_ps(config.l3.hit_latency_cpu_cycles),
        replacement=config.l3.replacement)
    return CacheLevel(spec, name="l3", stats=stats)


# --------------------------------------------------------------------------- #
# APU baseline
# --------------------------------------------------------------------------- #
def build_apu_shared_l2(config: APUSystemConfig,
                        stats: Optional[StatsRegistry] = None
                        ) -> Optional[CacheLevel]:
    """The pooled L2 level all CPU cores share (``None`` for private L2s)."""
    if not (config.cpu.l2_shared and config.cpu.l2_size_bytes):
        return None
    spec = LevelSpec(label="l2", size_bytes=config.cpu.l2_size_bytes,
                     associativity=config.cpu.l2_associativity,
                     hit_latency_ps=ns_to_ps(config.cpu.l2_hit_ns),
                     replacement=config.cpu.l2_replacement)
    return CacheLevel(spec, name="apu_cpu_shared.l2", stats=stats)
