"""Declarative memory-hierarchy levels.

A :class:`LevelSpec` describes the *shape* of one cache level — everything
Table 2 says about a cache, and nothing about how it is wired.  Building a
spec yields a :class:`CacheLevel`: the tag store plus its timing, which the
assemblies in :mod:`repro.mem.private` (APU baseline) and
:mod:`repro.mem.assemble` (CCSVM chip) stack into hierarchies.  Because the
level is a first-class object, *sharing* a level between cores is simply
passing the same :class:`CacheLevel` to several hierarchies — which is how
the ``apu-shared-l2`` preset pools the APU's four private L2s, and how the
``ccsvm-l3`` preset slots a memory-side cache under the L2 banks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.cache.cache import CacheConfig, SetAssociativeCache
from repro.memory.address import CACHE_LINE_SIZE
from repro.memory.dram import DRAMModel
from repro.sim.stats import StatsRegistry


@dataclass(frozen=True)
class LevelSpec:
    """The declarative shape of one cache level.

    ``label`` names the level's position (``"l1"``, ``"l2"``, ``"l3"``) and
    keys the hierarchy's per-level counters (``<hier>.<label>_writebacks``).
    Geometry validation (power-of-two sets, divisibility) happens when the
    level is built, via :class:`~repro.cache.cache.CacheConfig`, so a
    mis-shaped level fails at machine construction for *both* machines.
    """

    label: str
    size_bytes: int
    associativity: int
    hit_latency_ps: int = 0
    line_size: int = CACHE_LINE_SIZE
    replacement: str = "lru"

    def cache_config(self, name: str) -> CacheConfig:
        """The :class:`~repro.cache.cache.CacheConfig` this spec describes."""
        return CacheConfig(size_bytes=self.size_bytes,
                           associativity=self.associativity,
                           line_size=self.line_size,
                           hit_latency_ps=self.hit_latency_ps,
                           replacement=self.replacement,
                           name=name)


def build_cache(spec: LevelSpec, name: str,
                stats: Optional[StatsRegistry] = None) -> SetAssociativeCache:
    """Build the bare tag store a spec describes (validates geometry)."""
    return SetAssociativeCache(spec.cache_config(name), stats=stats)


class CacheLevel:
    """One built cache level: a tag store plus its hit latency.

    A level may be private to one hierarchy or shared between several —
    the level itself does not care; sharing is an assembly decision.
    """

    def __init__(self, spec: LevelSpec, name: str,
                 stats: Optional[StatsRegistry] = None) -> None:
        self.spec = spec
        self.label = spec.label
        self.name = name
        self.cache = build_cache(spec, name, stats=stats)
        self.hit_latency_ps = spec.hit_latency_ps

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"CacheLevel({self.name}, {self.spec.size_bytes}B, "
                f"{self.spec.associativity}-way)")


class DRAMLevel:
    """The off-chip terminus of a hierarchy, wrapping a :class:`DRAMModel`."""

    label = "dram"

    def __init__(self, dram: DRAMModel, line_size: int = CACHE_LINE_SIZE) -> None:
        self.dram = dram
        self.line_size = line_size

    def read(self) -> int:
        """Read one line; returns the latency in ps."""
        return self.dram.read(self.line_size)

    def write(self) -> int:
        """Write one line back; returns the latency in ps."""
        return self.dram.write(self.line_size)
