"""Cache block (line) metadata."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional


@dataclass
class CacheBlock:
    """Metadata for one cache line resident in a cache.

    ``state`` is deliberately untyped at this layer: private caches store a
    MOESI state from :mod:`repro.coherence.states`, while the non-coherent
    caches used by the APU baseline store a simple valid/dirty pair.  The
    cache itself only cares about presence and eviction.
    """

    line_address: int
    state: Optional[object] = None
    dirty: bool = False
    #: Opaque owner tag, used by the shared L2 to remember which directory
    #: entry this block belongs to (kept here to avoid a parallel dict).
    owner_token: Optional[object] = None
    #: Insertion timestamp (engine picoseconds) for debugging and ablation.
    inserted_at_ps: int = field(default=0)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"CacheBlock({self.line_address:#x}, state={self.state}, "
                f"dirty={self.dirty})")
