"""Cache substrate: set-associative caches and replacement policies.

Caches in this package are *tag stores with timing and bookkeeping*; the data
itself always lives in :class:`~repro.memory.physical.PhysicalMemory`.  This
is the standard structure for coherence studies — what matters for the
evaluation is which lines are where and in which coherence state, not a
duplicate copy of their bytes.
"""

from repro.cache.block import CacheBlock
from repro.cache.cache import CacheConfig, SetAssociativeCache
from repro.cache.replacement import (
    LRUReplacement,
    PseudoLRUReplacement,
    RandomReplacement,
    ReplacementPolicy,
    make_replacement_policy,
)

__all__ = [
    "CacheBlock",
    "CacheConfig",
    "LRUReplacement",
    "PseudoLRUReplacement",
    "RandomReplacement",
    "ReplacementPolicy",
    "SetAssociativeCache",
    "make_replacement_policy",
]
