"""Replacement policies for set-associative caches.

The paper's configuration does not name a replacement policy, so the default
everywhere is true LRU; tree-based pseudo-LRU and random are provided both
for ablations and because they are cheap to support once the policy is an
object the cache delegates to.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from typing import Dict, List

from repro.errors import CacheError


class ReplacementPolicy(ABC):
    """Chooses a victim way within one cache set.

    One policy instance manages one set of ``associativity`` ways.  The
    cache calls :meth:`touch` on every hit/fill and :meth:`victim` when it
    needs to evict.
    """

    def __init__(self, associativity: int) -> None:
        if associativity <= 0:
            raise CacheError("associativity must be positive")
        self.associativity = associativity

    @abstractmethod
    def touch(self, way: int) -> None:
        """Record a reference to ``way``."""

    @abstractmethod
    def victim(self, occupied_ways: List[int]) -> int:
        """Choose the way to evict.  ``occupied_ways`` lists valid ways."""

    def reset(self) -> None:
        """Forget all recency state (optional for subclasses)."""


class LRUReplacement(ReplacementPolicy):
    """True least-recently-used replacement."""

    def __init__(self, associativity: int) -> None:
        super().__init__(associativity)
        self._timestamps: Dict[int, int] = {}
        self._clock = 0

    def touch(self, way: int) -> None:
        self._clock += 1
        self._timestamps[way] = self._clock

    def victim(self, occupied_ways: List[int]) -> int:
        if len(occupied_ways) < self.associativity:
            # Prefer an empty way before evicting anything.
            for way in range(self.associativity):
                if way not in occupied_ways:
                    return way
        return min(occupied_ways, key=lambda way: self._timestamps.get(way, 0))

    def reset(self) -> None:
        self._timestamps.clear()
        self._clock = 0


class PseudoLRUReplacement(ReplacementPolicy):
    """Tree-based pseudo-LRU (the policy most real L1s implement).

    Requires power-of-two associativity.  Maintains a binary tree of
    "direction" bits; a touch flips bits away from the touched way and a
    victim lookup follows the bits.
    """

    def __init__(self, associativity: int) -> None:
        super().__init__(associativity)
        if associativity & (associativity - 1):
            raise CacheError("pseudo-LRU requires power-of-two associativity")
        self._bits = [False] * max(1, associativity - 1)

    def touch(self, way: int) -> None:
        node = 0
        span = self.associativity
        while span > 1:
            half = span // 2
            go_right = way >= half
            self._bits[node] = not go_right
            node = 2 * node + (2 if go_right else 1)
            if go_right:
                way -= half
            span = half

    def victim(self, occupied_ways: List[int]) -> int:
        if len(occupied_ways) < self.associativity:
            for way in range(self.associativity):
                if way not in occupied_ways:
                    return way
        node = 0
        way = 0
        span = self.associativity
        while span > 1:
            half = span // 2
            go_right = self._bits[node]
            node = 2 * node + (2 if go_right else 1)
            if go_right:
                way += half
            span = half
        return way

    def reset(self) -> None:
        self._bits = [False] * max(1, self.associativity - 1)


class RandomReplacement(ReplacementPolicy):
    """Random replacement with a seeded generator for reproducibility."""

    def __init__(self, associativity: int, seed: int = 0xC0FFEE) -> None:
        super().__init__(associativity)
        self._rng = random.Random(seed)

    def touch(self, way: int) -> None:
        # Random replacement keeps no recency state.
        return None

    def victim(self, occupied_ways: List[int]) -> int:
        if len(occupied_ways) < self.associativity:
            for way in range(self.associativity):
                if way not in occupied_ways:
                    return way
        return self._rng.choice(occupied_ways)


_POLICIES = {
    "lru": LRUReplacement,
    "plru": PseudoLRUReplacement,
    "random": RandomReplacement,
}


def make_replacement_policy(name: str, associativity: int) -> ReplacementPolicy:
    """Build a replacement policy by name (``"lru"``, ``"plru"``, ``"random"``)."""
    try:
        factory = _POLICIES[name.lower()]
    except KeyError:
        raise CacheError(
            f"unknown replacement policy {name!r}; expected one of {sorted(_POLICIES)}"
        ) from None
    return factory(associativity)
