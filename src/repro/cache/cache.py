"""Set-associative cache tag store.

One :class:`SetAssociativeCache` models one physically-indexed cache (an L1,
one bank of the shared L2, or a private L2 in the APU baseline).  It tracks
which lines are present, their per-line metadata (coherence state, dirty
bit), and implements replacement.  It does **not** decide what happens on a
miss — that is the job of the coherence controllers (CCSVM chip) or the
simple hierarchy model (APU baseline), which is why the interface exposes
explicit ``insert``/``evict`` instead of a monolithic ``access``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.cache.block import CacheBlock
from repro.cache.replacement import ReplacementPolicy, make_replacement_policy
from repro.errors import CacheError
from repro.memory.address import CACHE_LINE_SIZE, is_power_of_two
from repro.sim import columnar
from repro.sim.stats import StatsRegistry

#: One contiguous run of batch operations falling on the same line:
#: ``(first_index, one_past_last_index, set_index, way, block)``.
LineRun = Tuple[int, int, int, int, CacheBlock]


@dataclass(frozen=True)
class CacheConfig:
    """Geometry and timing of one cache."""

    size_bytes: int
    associativity: int
    line_size: int = CACHE_LINE_SIZE
    hit_latency_ps: int = 0
    replacement: str = "lru"
    name: str = "cache"

    def __post_init__(self) -> None:
        if self.size_bytes <= 0 or self.associativity <= 0:
            raise CacheError("cache size and associativity must be positive")
        if not is_power_of_two(self.line_size):
            raise CacheError("line size must be a power of two")
        if self.size_bytes % (self.associativity * self.line_size) != 0:
            raise CacheError(
                f"cache size {self.size_bytes} is not divisible by "
                f"associativity*line_size = {self.associativity * self.line_size}"
            )
        sets = self.size_bytes // (self.associativity * self.line_size)
        if not is_power_of_two(sets):
            raise CacheError(f"number of sets ({sets}) must be a power of two")

    @property
    def num_sets(self) -> int:
        """Number of sets implied by the geometry."""
        return self.size_bytes // (self.associativity * self.line_size)


class SetAssociativeCache:
    """A physically-indexed, physically-tagged set-associative tag store."""

    def __init__(self, config: CacheConfig,
                 stats: Optional[StatsRegistry] = None) -> None:
        self.config = config
        self.name = config.name
        self.stats = stats if stats is not None else StatsRegistry()
        self._num_sets = config.num_sets
        # Per set: way -> block, plus a replacement-policy instance.
        self._sets: List[Dict[int, CacheBlock]] = [dict() for _ in range(self._num_sets)]
        self._policies: List[ReplacementPolicy] = [
            make_replacement_policy(config.replacement, config.associativity)
            for _ in range(self._num_sets)
        ]
        # Reverse index: line address -> (set index, way) for O(1) lookups.
        self._where: Dict[int, Tuple[int, int]] = {}
        # Precomputed bits for the access hot path: building an f-string
        # counter name per lookup is measurable at simulator scale.
        self._line_mask = ~(config.line_size - 1)
        self._line_shift = config.line_size.bit_length() - 1
        self._hits_stat = f"{self.name}.hits"
        self._misses_stat = f"{self.name}.misses"

    # ------------------------------------------------------------------ #
    # Address mapping
    # ------------------------------------------------------------------ #
    def set_index(self, line_address: int) -> int:
        """Return the set index a line maps to."""
        return (line_address // self.config.line_size) % self._num_sets

    def line_address(self, address: int) -> int:
        """Align an arbitrary address down to its containing line."""
        return address & ~(self.config.line_size - 1)

    # ------------------------------------------------------------------ #
    # Lookup / insert / evict
    # ------------------------------------------------------------------ #
    def lookup(self, address: int, update_replacement: bool = True) -> Optional[CacheBlock]:
        """Return the block holding ``address``'s line, if resident."""
        line = address & self._line_mask
        where = self._where.get(line)
        if where is None:
            self.stats.add(self._misses_stat)
            return None
        set_index, way = where
        if update_replacement:
            self._policies[set_index].touch(way)
        self.stats.add(self._hits_stat)
        return self._sets[set_index][way]

    def probe(self, address: int) -> Optional[CacheBlock]:
        """Fast-path lookup: a hit behaves exactly like :meth:`lookup`
        (hit counter + replacement touch); a miss returns ``None`` without
        recording anything, because the caller is expected to retry on the
        general path — whose own :meth:`lookup` records the miss once."""
        where = self._where.get(address & self._line_mask)
        if where is None:
            return None
        set_index, way = where
        self._policies[set_index].touch(way)
        self.stats.add(self._hits_stat)
        return self._sets[set_index][way]

    # ------------------------------------------------------------------ #
    # Columnar probe (batched access engine)
    # ------------------------------------------------------------------ #
    def gather_batch(self, addresses: Sequence[int], lo: int,
                     hi: int) -> Tuple[int, List[LineRun]]:
        """Locate the maximal resident-line prefix of ``addresses[lo:hi]``.

        Pure gather: no replacement touch and no counters — the caller
        inspects the returned runs (e.g. checks coherence permissions),
        decides how much of the prefix it can execute, and commits exactly
        that much via :meth:`commit_batch`.  Stops at the first
        non-resident line; like :meth:`probe`, nothing is recorded for it,
        because the op retries on the scalar path whose own lookup records
        the miss once.
        """
        shift = self._line_shift
        keys = columnar.shift_keys(addresses, lo, hi, shift)
        starts = columnar.run_starts(keys)
        # Native ints once per batch: per-run ndarray indexing and
        # numpy-scalar hashing are several times a dict probe each.
        keys = keys.tolist()
        where = self._where
        sets = self._sets
        runs: List[LineRun] = []
        count = hi - lo
        for index, run_lo in enumerate(starts):
            run_hi = starts[index + 1] if index + 1 < len(starts) else count
            line = keys[run_lo] << shift
            loc = where.get(line)
            if loc is None:
                return lo + run_lo, runs
            set_index, way = loc
            runs.append((lo + run_lo, lo + run_hi, set_index, way,
                         sets[set_index][way]))
        return hi, runs

    def commit_batch(self, runs: Sequence[LineRun], lo: int, stop: int) -> None:
        """Apply replacement touches and hit counters for ops ``[lo, stop)``.

        One touch per line run replaces the scalar path's per-access touch;
        consecutive touches of the same way are idempotent for every
        replacement policy here (LRU recency order, PLRU tree bits, random),
        so the final replacement state is identical.
        """
        if stop <= lo:
            return
        policies = self._policies
        for run_lo, _run_hi, set_index, way, _block in runs:
            if run_lo >= stop:
                break
            policies[set_index].touch(way)
        self.stats.add(self._hits_stat, stop - lo)

    def peek(self, address: int) -> Optional[CacheBlock]:
        """Like :meth:`lookup` but without stats or replacement updates."""
        where = self._where.get(self.line_address(address))
        if where is None:
            return None
        set_index, way = where
        return self._sets[set_index][way]

    def insert(self, address: int, state: Optional[object] = None,
               dirty: bool = False, now_ps: int = 0) -> Tuple[CacheBlock, Optional[CacheBlock]]:
        """Insert ``address``'s line and return ``(new_block, victim)``.

        If the set is full a victim is chosen by the replacement policy and
        returned so the caller can write it back / notify the directory.
        Inserting a line that is already resident is an error — callers must
        use :meth:`lookup` first.
        """
        line = self.line_address(address)
        if line in self._where:
            raise CacheError(f"{self.name}: line {line:#x} inserted twice")
        set_index = self.set_index(line)
        ways = self._sets[set_index]
        policy = self._policies[set_index]

        victim: Optional[CacheBlock] = None
        if len(ways) >= self.config.associativity:
            victim_way = policy.victim(list(ways.keys()))
            victim = ways.pop(victim_way)
            del self._where[victim.line_address]
            self.stats.add(f"{self.name}.evictions")
            way = victim_way
        else:
            way = policy.victim(list(ways.keys()))

        block = CacheBlock(line_address=line, state=state, dirty=dirty,
                           inserted_at_ps=now_ps)
        ways[way] = block
        self._where[line] = (set_index, way)
        policy.touch(way)
        self.stats.add(f"{self.name}.fills")
        return block, victim

    def evict(self, address: int) -> Optional[CacheBlock]:
        """Remove ``address``'s line (if resident) and return its block.

        Used for invalidations and inclusive-L2 back-invalidations.
        """
        line = self.line_address(address)
        where = self._where.pop(line, None)
        if where is None:
            return None
        set_index, way = where
        block = self._sets[set_index].pop(way)
        self.stats.add(f"{self.name}.invalidations")
        return block

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def __contains__(self, address: int) -> bool:
        return self.line_address(address) in self._where

    def __len__(self) -> int:
        return len(self._where)

    def blocks(self) -> Iterator[CacheBlock]:
        """Iterate over every resident block (order unspecified)."""
        for ways in self._sets:
            yield from ways.values()

    @property
    def hit_latency_ps(self) -> int:
        """Configured hit latency in picoseconds."""
        return self.config.hit_latency_ps

    @property
    def capacity_lines(self) -> int:
        """Total number of lines the cache can hold."""
        return self._num_sets * self.config.associativity

    def occupancy(self) -> float:
        """Fraction of the cache currently holding valid lines."""
        return len(self._where) / self.capacity_lines if self.capacity_lines else 0.0

    def flush_all(self) -> List[CacheBlock]:
        """Remove every block and return them (dirty ones need writeback)."""
        blocks = list(self.blocks())
        for ways in self._sets:
            ways.clear()
        self._where.clear()
        self.stats.add(f"{self.name}.flushes")
        return blocks
