"""pthreads execution on the APU's CPU cores.

Figure 7 compares CCSVM/xthreads Barnes-Hut against both a single AMD CPU
core and the pthreads version running on the APU's four CPU cores.  The
pthreads model runs programs in *phases*: a sequential phase runs one
program on the main core; a parallel phase runs one program per thread on
separate cores simultaneously (each with its own private cache hierarchy)
and its duration is the slowest thread's, plus the pthread barrier/join
overhead.  Cross-thread cache coherence effects are not modelled — all
sharing costs are absorbed by the per-phase synchronisation overheads —
which slightly favours the pthreads baseline, i.e. is conservative for the
paper's claim.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.baseline.cpu import BaselineCPUCore, BaselineRunResult
from repro.cores.interpreter import ThreadProgram
from repro.errors import RuntimeModelError
from repro.sim.clock import ns_to_ps
from repro.sim.stats import StatsRegistry


@dataclass(frozen=True)
class PThreadsPhaseResult:
    """Outcome of one parallel phase."""

    time_ps: int
    per_thread_ps: tuple

    @property
    def slowest_thread_ps(self) -> int:
        """Duration of the slowest thread (excluding barrier overhead)."""
        return max(self.per_thread_ps) if self.per_thread_ps else 0


@dataclass
class PThreadsMachine:
    """A pthreads process pinned to the APU's CPU cores."""

    cores: List[BaselineCPUCore]
    spawn_us: float = 12.0
    join_us: float = 6.0
    barrier_us: float = 3.0
    stats: Optional[StatsRegistry] = None
    total_time_ps: int = 0
    _spawned: bool = field(default=False, init=False)

    def __post_init__(self) -> None:
        if not self.cores:
            raise RuntimeModelError("a pthreads machine needs at least one CPU core")
        if self.stats is None:
            self.stats = StatsRegistry()

    @property
    def num_threads(self) -> int:
        """Number of worker threads (one per core)."""
        return len(self.cores)

    # ------------------------------------------------------------------ #
    # Phases
    # ------------------------------------------------------------------ #
    def spawn(self) -> None:
        """Charge pthread_create for every worker thread (once per process)."""
        if self._spawned:
            return
        self.total_time_ps += ns_to_ps(self.spawn_us * 1e3) * max(0, self.num_threads - 1)
        self._spawned = True
        self.stats.add("pthreads.spawns", self.num_threads - 1)

    def run_sequential(self, program: ThreadProgram) -> BaselineRunResult:
        """Run a sequential phase on the main core; add its time."""
        result = self.cores[0].run(program)
        self.total_time_ps += result.time_ps
        self.stats.add("pthreads.sequential_phases")
        return result

    def run_parallel(self, programs: Sequence[ThreadProgram]) -> PThreadsPhaseResult:
        """Run one program per thread in parallel; add the phase time.

        The phase costs the slowest thread plus one barrier (all threads
        synchronise before the next phase starts).
        """
        if len(programs) > len(self.cores):
            raise RuntimeModelError(
                f"{len(programs)} thread programs exceed {len(self.cores)} cores"
            )
        self.spawn()
        per_thread: List[int] = []
        for core, program in zip(self.cores, programs):
            per_thread.append(core.run(program).time_ps)
        barrier_ps = ns_to_ps(self.barrier_us * 1e3)
        phase_ps = (max(per_thread) if per_thread else 0) + barrier_ps
        self.total_time_ps += phase_ps
        self.stats.add("pthreads.parallel_phases")
        return PThreadsPhaseResult(time_ps=phase_ps, per_thread_ps=tuple(per_thread))

    def join(self) -> None:
        """Charge pthread_join for every worker thread."""
        if not self._spawned:
            return
        self.total_time_ps += ns_to_ps(self.join_us * 1e3) * max(0, self.num_threads - 1)
        self.stats.add("pthreads.joins", self.num_threads - 1)

    # ------------------------------------------------------------------ #
    # Results
    # ------------------------------------------------------------------ #
    @property
    def total_time_ns(self) -> float:
        """Accumulated process time in nanoseconds."""
        return self.total_time_ps / 1_000.0
