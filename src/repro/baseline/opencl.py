"""OpenCL-style runtime model for the APU baseline.

The paper's APU comparison point runs OpenCL code whose host side looks like
Figure 3: get platform and device, create a context and command queue, build
the program, create buffers, map them to initialise inputs, set kernel
arguments, enqueue an NDRange, wait for it to finish, and map the output
buffer to read results.  :class:`OpenCLSession` mirrors those calls and
charges each its cost from :class:`~repro.config.OpenCLRuntimeConfig`:

* program **compilation** and context/queue **initialisation** are large
  fixed costs (the paper reports APU results both with and without them, so
  the session tracks them separately);
* every **kernel launch** pays driver overhead, flushes the CPU caches so
  the GPU sees up-to-date data (communication through off-chip DRAM), runs
  the kernel on the GPU model, and pays a completion cost;
* **mapping** buffers for reading/writing moves data through the CPU's
  caches, whose misses hit DRAM.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.baseline.cpu import BaselineCPUCore
from repro.baseline.gpu import RadeonGPUModel
from repro.baseline.memory import FlatMemory
from repro.config import OpenCLRuntimeConfig
from repro.cores.isa import Load, Store, word_addr
from repro.errors import RuntimeModelError
from repro.memory.address import CACHE_LINE_SIZE, WORD_SIZE
from repro.sim.clock import ns_to_ps
from repro.sim.stats import StatsRegistry


@dataclass
class OpenCLBuffer:
    """A ``cl_mem`` object: a region of (host-resident) memory."""

    buffer_id: int
    address: int
    size_bytes: int

    @property
    def words(self) -> int:
        """Capacity in 64-bit words."""
        return self.size_bytes // WORD_SIZE


@dataclass
class OpenCLKernel:
    """A compiled kernel plus its currently bound arguments."""

    name: str
    function: Callable[..., object]
    arguments: Dict[int, object] = field(default_factory=dict)

    def bound_args(self) -> tuple:
        """Arguments in positional order (used when the kernel is enqueued)."""
        return tuple(self.arguments[index] for index in sorted(self.arguments))


class OpenCLSession:
    """One OpenCL context + command queue on the APU.

    All time the session spends is accumulated in :attr:`elapsed_ps`;
    compilation and context initialisation are additionally recorded in
    :attr:`setup_ps` so experiments can report the paper's "runtime without
    compilation and without OpenCL initialization code" variant.
    """

    def __init__(self, config: OpenCLRuntimeConfig, memory: FlatMemory,
                 host_core: BaselineCPUCore, gpu: RadeonGPUModel,
                 stats: Optional[StatsRegistry] = None) -> None:
        self.config = config
        self.memory = memory
        self.host_core = host_core
        self.gpu = gpu
        self.stats = stats if stats is not None else StatsRegistry()
        self.elapsed_ps = 0
        self.setup_ps = 0
        self.breakdown_ps: Dict[str, int] = {}
        self._buffers: List[OpenCLBuffer] = []
        self._initialised = False
        self._program_built = False

    # ------------------------------------------------------------------ #
    # Cost accounting helpers
    # ------------------------------------------------------------------ #
    def _charge(self, phase: str, picoseconds: int, setup: bool = False) -> None:
        self.elapsed_ps += picoseconds
        self.breakdown_ps[phase] = self.breakdown_ps.get(phase, 0) + picoseconds
        if setup:
            self.setup_ps += picoseconds
        self.stats.add(f"opencl.{phase}_ps", picoseconds)

    def _runtime_dram_traffic(self, kilobytes: int) -> None:
        """Account for DRAM traffic of the runtime/driver itself.

        The paper measures the APU's DRAM accesses with hardware performance
        counters over the whole program, which includes the JIT compiler,
        context creation and per-launch driver work — not just the kernel's
        own data.  Half the traffic is counted as reads, half as writes.
        """
        lines = (kilobytes * 1024) // CACHE_LINE_SIZE
        for _ in range(lines // 2):
            self.gpu.dram.read(CACHE_LINE_SIZE)
        for _ in range(lines - lines // 2):
            self.gpu.dram.write(CACHE_LINE_SIZE)
        self.stats.add("opencl.runtime_dram_lines", lines)

    @property
    def elapsed_without_setup_ps(self) -> int:
        """Elapsed time excluding compilation and context initialisation."""
        return self.elapsed_ps - self.setup_ps

    # ------------------------------------------------------------------ #
    # Context / program management (Figure 3, top of main())
    # ------------------------------------------------------------------ #
    def initialise_context(self) -> None:
        """clGetPlatformIDs / clGetDeviceIDs / clCreateContext / queue."""
        if self._initialised:
            return
        self._charge("init", ns_to_ps(self.config.init_time_ms * 1e6), setup=True)
        self._runtime_dram_traffic(self.config.init_dram_kb)
        self._initialised = True
        self.stats.add("opencl.contexts_created")

    def build_program(self, kernel_names: Sequence[str]) -> None:
        """clCreateProgramWithSource + clBuildProgram (the JIT compile)."""
        self.initialise_context()
        if self._program_built:
            return
        self._charge("compile", ns_to_ps(self.config.compile_time_ms * 1e6), setup=True)
        self._runtime_dram_traffic(self.config.compile_dram_kb)
        self._program_built = True
        self.stats.add("opencl.programs_built")
        self.stats.add("opencl.kernels_compiled", len(kernel_names))

    def create_kernel(self, name: str, function: Callable[..., object]) -> OpenCLKernel:
        """clCreateKernel."""
        if not self._program_built:
            raise RuntimeModelError("clCreateKernel called before clBuildProgram")
        return OpenCLKernel(name=name, function=function)

    # ------------------------------------------------------------------ #
    # Buffers (clCreateBuffer / clEnqueueMapBuffer / unmap)
    # ------------------------------------------------------------------ #
    def create_buffer(self, size_bytes: int) -> OpenCLBuffer:
        """clCreateBuffer with CL_MEM_ALLOC_HOST_PTR (host-resident)."""
        self.initialise_context()
        address = self.memory.allocate(size_bytes)
        buffer = OpenCLBuffer(buffer_id=len(self._buffers), address=address,
                              size_bytes=size_bytes)
        self._buffers.append(buffer)
        self._charge("buffer", ns_to_ps(self.config.buffer_create_us * 1e3))
        self.stats.add("opencl.buffers_created")
        return buffer

    def map_buffer_write(self, buffer: OpenCLBuffer, values: Sequence[int],
                         offset_words: int = 0) -> None:
        """Map a buffer and have the host CPU write ``values`` into it.

        The writes run through the host core's cache hierarchy, so the data
        initially lives in the CPU caches — it reaches DRAM when the caches
        are flushed at kernel-launch time (or by capacity evictions).
        """
        self._charge("map", ns_to_ps(self.config.map_unmap_us * 1e3))
        program = _store_program(buffer.address, values, offset_words)
        result = self.host_core.run(program)
        self._charge("host_write", result.time_ps)
        self.stats.add("opencl.words_written", len(values))

    def map_buffer_read(self, buffer: OpenCLBuffer, count_words: int,
                        offset_words: int = 0) -> List[int]:
        """Map a buffer for reading and have the host CPU read it back."""
        self._charge("map", ns_to_ps(self.config.map_unmap_us * 1e3))
        values: List[int] = []
        program = _load_program(buffer.address, count_words, offset_words, values)
        result = self.host_core.run(program)
        self._charge("host_read", result.time_ps)
        self.stats.add("opencl.words_read", count_words)
        return values

    # ------------------------------------------------------------------ #
    # Kernel launch (clSetKernelArg / clEnqueueNDRangeKernel / clFinish)
    # ------------------------------------------------------------------ #
    def set_kernel_arg(self, kernel: OpenCLKernel, index: int, value: object) -> None:
        """clSetKernelArg."""
        kernel.arguments[index] = value

    def enqueue_nd_range(self, kernel: OpenCLKernel, global_size: int,
                         args: Optional[object] = None) -> None:
        """clEnqueueNDRangeKernel followed by clFinish.

        Charges: the driver's launch overhead, a cache flush + DMA setup so
        the GPU observes the CPU's writes (CPU→GPU communication goes
        through off-chip DRAM on the APU), the GPU execution itself, and the
        completion/synchronisation cost.
        """
        if not self._program_built:
            raise RuntimeModelError("kernel enqueued before clBuildProgram")
        self._charge("launch", ns_to_ps(self.config.kernel_launch_us * 1e3))
        self._runtime_dram_traffic(self.config.launch_dram_kb)

        # Make CPU-written data visible to the GPU: flush the host core's
        # caches and pay the DMA/flush bandwidth cost for the dirty data.
        _, dirty_lines = self.host_core.hierarchy.flush()
        flush_bytes = dirty_lines * CACHE_LINE_SIZE
        if self.config.dma_bandwidth_gbps > 0:
            self._charge("dma", ns_to_ps(self.config.dma_setup_us * 1e3
                                         + flush_bytes / self.config.dma_bandwidth_gbps))
        kernel_args = args if args is not None else kernel.bound_args()
        result = self.gpu.execute_kernel(kernel.function, kernel_args,
                                         work_items=range(global_size))
        self._charge("kernel", result.time_ps)
        self._charge("finish", ns_to_ps(self.config.kernel_finish_us * 1e3))
        self.stats.add("opencl.kernel_launches")

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def elapsed_ns(self) -> float:
        """Total elapsed time in nanoseconds."""
        return self.elapsed_ps / 1_000.0


# --------------------------------------------------------------------------- #
# Small host-side programs used for buffer initialisation / readback
# --------------------------------------------------------------------------- #
def _store_program(base: int, values: Sequence[int], offset_words: int):
    def program():
        for index, value in enumerate(values):
            yield Store(word_addr(base, offset_words + index), value)
    return program()


def _load_program(base: int, count: int, offset_words: int, sink: List[int]):
    def program():
        for index in range(count):
            value = yield Load(word_addr(base, offset_words + index))
            sink.append(value)
    return program()
