"""Memory substrate for the APU baseline.

The APU model does not reuse the CCSVM chip's shared-virtual-memory stack,
because the machine it models does not have one: the CPU and GPU have
separate virtual address spaces and communicate through pinned physical
memory (Section 2.3 of the paper).  Instead the baseline uses a single flat
address space (:class:`FlatMemory`) for data, and per-core private cache
hierarchies (:class:`PrivateCacheHierarchy`) for timing and DRAM-access
accounting.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.cache.cache import CacheConfig, SetAssociativeCache
from repro.errors import MemoryError_
from repro.memory.address import CACHE_LINE_SIZE, WORD_SIZE, align_up
from repro.memory.dram import DRAMModel
from repro.sim.stats import StatsRegistry


class FlatMemory:
    """A flat, word-granularity memory with a bump allocator.

    Addresses handed out by :meth:`allocate` start at a non-zero base so a
    zero value never aliases a valid pointer (workloads use 0 as a null
    pointer in linked structures).
    """

    ALLOCATION_BASE = 0x1000

    def __init__(self) -> None:
        self._words: Dict[int, int] = {}
        self._next_address = self.ALLOCATION_BASE

    def allocate(self, size_bytes: int) -> int:
        """Allocate ``size_bytes`` and return the start address (word aligned)."""
        if size_bytes <= 0:
            raise MemoryError_(f"allocation size must be positive, got {size_bytes}")
        address = align_up(self._next_address, WORD_SIZE)
        self._next_address = address + size_bytes
        return address

    def read_word(self, address: int) -> int:
        """Read the 64-bit word at ``address`` (zero if never written)."""
        return self._words.get(address & ~(WORD_SIZE - 1), 0)

    def write_word(self, address: int, value: int) -> None:
        """Write ``value`` to the 64-bit word at ``address``."""
        self._words[address & ~(WORD_SIZE - 1)] = value

    def read_array(self, address: int, count: int) -> List[int]:
        """Read ``count`` consecutive words starting at ``address``."""
        return [self.read_word(address + i * WORD_SIZE) for i in range(count)]

    def write_array(self, address: int, values: Sequence[int]) -> None:
        """Write consecutive words starting at ``address``."""
        for i, value in enumerate(values):
            self.write_word(address + i * WORD_SIZE, value)

    @property
    def bytes_allocated(self) -> int:
        """Total bytes handed out by the allocator so far."""
        return self._next_address - self.ALLOCATION_BASE


class PrivateCacheHierarchy:
    """A non-coherent private cache hierarchy (L1 and optional L2) over DRAM.

    Models one APU CPU core's caches (or the GPU's small cache).  Every
    access returns its latency; misses allocate in every level and dirty
    victims are written back to DRAM, so the DRAM model's counters reflect
    real traffic (the quantity Figure 9 reports for the AMD CPU core).
    """

    def __init__(self, name: str, dram: DRAMModel,
                 l1_size_bytes: int, l1_associativity: int, l1_hit_ps: int,
                 l2_size_bytes: Optional[int] = None,
                 l2_associativity: int = 16, l2_hit_ps: int = 0,
                 stats: Optional[StatsRegistry] = None,
                 line_size: int = CACHE_LINE_SIZE) -> None:
        self.name = name
        self.dram = dram
        self.stats = stats if stats is not None else StatsRegistry()
        self.line_size = line_size
        self.l1 = SetAssociativeCache(
            CacheConfig(size_bytes=l1_size_bytes, associativity=l1_associativity,
                        line_size=line_size, hit_latency_ps=l1_hit_ps,
                        name=f"{name}.l1"),
            stats=self.stats)
        self.l2: Optional[SetAssociativeCache] = None
        if l2_size_bytes:
            self.l2 = SetAssociativeCache(
                CacheConfig(size_bytes=l2_size_bytes, associativity=l2_associativity,
                            line_size=line_size, hit_latency_ps=l2_hit_ps,
                            name=f"{name}.l2"),
                stats=self.stats)

    # ------------------------------------------------------------------ #
    # Access path
    # ------------------------------------------------------------------ #
    def access(self, address: int, is_write: bool) -> int:
        """Access ``address``; return the latency and count DRAM traffic."""
        latency = self.l1.hit_latency_ps
        block = self.l1.lookup(address)
        if block is not None:
            if is_write:
                block.dirty = True
            return latency

        # L1 miss: try the L2, then DRAM.
        line = self.l1.line_address(address)
        filled_dirty = False
        if self.l2 is not None:
            latency += self.l2.hit_latency_ps
            l2_block = self.l2.lookup(line)
            if l2_block is None:
                latency += self.dram.read(self.line_size)
                _, l2_victim = self.l2.insert(line)
                if l2_victim is not None and l2_victim.dirty:
                    self.dram.write(self.line_size)
                    self.stats.add(f"{self.name}.l2_writebacks")
        else:
            latency += self.dram.read(self.line_size)

        block, victim = self.l1.insert(line, dirty=is_write or filled_dirty)
        if is_write:
            block.dirty = True
        if victim is not None and victim.dirty:
            self._writeback(victim.line_address)
        return latency

    def _writeback(self, line: int) -> None:
        if self.l2 is not None:
            l2_block = self.l2.peek(line)
            if l2_block is None:
                l2_block, l2_victim = self.l2.insert(line, dirty=True)
                if l2_victim is not None and l2_victim.dirty:
                    self.dram.write(self.line_size)
                    self.stats.add(f"{self.name}.l2_writebacks")
            l2_block.dirty = True
            self.stats.add(f"{self.name}.l1_writebacks")
        else:
            self.dram.write(self.line_size)
            self.stats.add(f"{self.name}.l1_writebacks")

    def flush(self) -> Tuple[int, int]:
        """Write back every dirty line to DRAM; return ``(lines, dirty_lines)``.

        Used when the OpenCL runtime makes CPU-written buffers visible to
        the GPU: the coherent DMA path flushes the CPU caches so the GPU
        reads up-to-date data from memory.
        """
        flushed = 0
        dirty = 0
        for cache in filter(None, (self.l1, self.l2)):
            for block in cache.flush_all():
                flushed += 1
                if block.dirty:
                    dirty += 1
                    self.dram.write(self.line_size)
        self.stats.add(f"{self.name}.flush_dirty_lines", dirty)
        return flushed, dirty
