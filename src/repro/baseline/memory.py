"""Memory substrate for the APU baseline.

The APU model does not reuse the CCSVM chip's shared-virtual-memory stack,
because the machine it models does not have one: the CPU and GPU have
separate virtual address spaces and communicate through pinned physical
memory (Section 2.3 of the paper).  Instead the baseline uses a single flat
address space (:class:`FlatMemory`) for data, and per-core cache
hierarchies (:class:`PrivateCacheHierarchy`) for timing and DRAM-access
accounting.

Since the ``repro.mem`` refactor the hierarchy itself lives in
:class:`repro.mem.private.PrivateHierarchy` — the same level objects the
CCSVM chip is assembled from — and :class:`PrivateCacheHierarchy` here is
the thin L1-plus-optional-L2 assembly the APU's Table 2 column describes.
Its L2 level may be private (built from the size/associativity arguments)
or a pre-built :class:`~repro.mem.levels.CacheLevel` shared with the
other cores (the ``apu-shared-l2`` shape).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.cache.cache import SetAssociativeCache
from repro.errors import MemoryError_
from repro.mem.levels import CacheLevel, LevelSpec
from repro.mem.private import PrivateHierarchy
from repro.memory.address import CACHE_LINE_SIZE, WORD_SIZE, align_up
from repro.memory.dram import DRAMModel
from repro.sim.stats import StatsRegistry


class FlatMemory:
    """A flat, word-granularity memory with a bump allocator.

    Addresses handed out by :meth:`allocate` start at a non-zero base so a
    zero value never aliases a valid pointer (workloads use 0 as a null
    pointer in linked structures).
    """

    ALLOCATION_BASE = 0x1000

    def __init__(self) -> None:
        self._words: Dict[int, int] = {}
        self._next_address = self.ALLOCATION_BASE

    def allocate(self, size_bytes: int) -> int:
        """Allocate ``size_bytes`` and return the start address (word aligned)."""
        if size_bytes <= 0:
            raise MemoryError_(f"allocation size must be positive, got {size_bytes}")
        address = align_up(self._next_address, WORD_SIZE)
        self._next_address = address + size_bytes
        return address

    def read_word(self, address: int) -> int:
        """Read the 64-bit word at ``address`` (zero if never written)."""
        return self._words.get(address & ~(WORD_SIZE - 1), 0)

    def write_word(self, address: int, value: int) -> None:
        """Write ``value`` to the 64-bit word at ``address``."""
        self._words[address & ~(WORD_SIZE - 1)] = value

    def read_array(self, address: int, count: int) -> List[int]:
        """Read ``count`` consecutive words starting at ``address``."""
        return [self.read_word(address + i * WORD_SIZE) for i in range(count)]

    def write_array(self, address: int, values: Sequence[int]) -> None:
        """Write consecutive words starting at ``address``."""
        for i, value in enumerate(values):
            self.write_word(address + i * WORD_SIZE, value)

    @property
    def bytes_allocated(self) -> int:
        """Total bytes handed out by the allocator so far."""
        return self._next_address - self.ALLOCATION_BASE


class PrivateCacheHierarchy(PrivateHierarchy):
    """One APU core's cache hierarchy (L1 and optional L2) over DRAM.

    Models one APU CPU core's caches (or the GPU's small cache).  Every
    access returns its latency; misses allocate in every level and dirty
    victims are written back down the stack, so the DRAM model's counters
    reflect real traffic (the quantity Figure 9 reports for the AMD CPU
    core).  The access path itself is the generalised
    :class:`~repro.mem.private.PrivateHierarchy`; this class only
    assembles the Table 2 shape — and, when ``shared_l2`` is given,
    stacks the core's private L1 on a pooled L2 level shared with the
    other cores instead of building a private one.
    """

    def __init__(self, name: str, dram: DRAMModel,
                 l1_size_bytes: int, l1_associativity: int, l1_hit_ps: int,
                 l2_size_bytes: Optional[int] = None,
                 l2_associativity: int = 16, l2_hit_ps: int = 0,
                 stats: Optional[StatsRegistry] = None,
                 line_size: int = CACHE_LINE_SIZE,
                 l1_replacement: str = "lru", l2_replacement: str = "lru",
                 shared_l2: Optional[CacheLevel] = None) -> None:
        stats = stats if stats is not None else StatsRegistry()
        levels = [CacheLevel(
            LevelSpec(label="l1", size_bytes=l1_size_bytes,
                      associativity=l1_associativity, hit_latency_ps=l1_hit_ps,
                      line_size=line_size, replacement=l1_replacement),
            name=f"{name}.l1", stats=stats)]
        if shared_l2 is not None:
            levels.append(shared_l2)
        elif l2_size_bytes:
            levels.append(CacheLevel(
                LevelSpec(label="l2", size_bytes=l2_size_bytes,
                          associativity=l2_associativity,
                          hit_latency_ps=l2_hit_ps, line_size=line_size,
                          replacement=l2_replacement),
                name=f"{name}.l2", stats=stats))
        super().__init__(name, dram, levels, stats=stats, line_size=line_size)

    # Legacy accessors: tests and the OpenCL/GPU models address the tag
    # stores directly.
    @property
    def l1(self) -> SetAssociativeCache:
        """The L1 tag store."""
        return self.levels[0].cache

    @property
    def l2(self) -> Optional[SetAssociativeCache]:
        """The L2 tag store (shared or private), if the shape has one."""
        return self.levels[1].cache if len(self.levels) > 1 else None
