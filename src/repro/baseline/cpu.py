"""APU CPU-core execution.

The APU's CPU cores are strong out-of-order cores (max IPC 4, Table 2).
A :class:`BaselineCPUCore` runs one thread program synchronously — there is
no need for the CCSVM engine here because baseline CPU threads never
interleave through shared-memory synchronisation mid-program; multi-threaded
runs are composed of parallel *phases* by :mod:`repro.baseline.pthreads`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.baseline.memory import FlatMemory, PrivateCacheHierarchy
from repro.cores.interpreter import ThreadContext, ThreadProgram, execute_memory_operation
from repro.cores.isa import Compute, Free, Malloc
from repro.errors import KernelProgramError
from repro.mem.batch import (BatchOp, BatchResult, OP_STORE, run_flat_batch,
                             scalar_run_batch, split_ops)
from repro.sim.clock import ClockDomain
from repro.sim.stats import StatsRegistry


@dataclass(frozen=True)
class BaselineRunResult:
    """Outcome of running one program on a baseline core."""

    time_ps: int
    instructions: int

    @property
    def time_ns(self) -> float:
        """Elapsed time in nanoseconds."""
        return self.time_ps / 1_000.0


class BaselineCPUPort:
    """Memory port adapter: flat memory + a private cache hierarchy."""

    def __init__(self, memory: FlatMemory, hierarchy: PrivateCacheHierarchy,
                 batch_enabled: bool = True) -> None:
        self.memory = memory
        self.hierarchy = hierarchy
        self.batch_enabled = batch_enabled
        #: The APU baseline has no SC checker, so nothing reads this; it
        #: exists to satisfy the :class:`~repro.mem.port.MemoryPort`
        #: protocol without per-step ``hasattr`` checks in the cores.
        self.current_time_ps = 0

    def load(self, vaddr: int) -> Tuple[int, int]:
        """Load a word; returns ``(value, latency_ps)``."""
        latency = self.hierarchy.access(vaddr, is_write=False)
        return self.memory.read_word(vaddr), latency

    def store(self, vaddr: int, value: int) -> int:
        """Store a word; returns the latency."""
        latency = self.hierarchy.access(vaddr, is_write=True)
        self.memory.write_word(vaddr, value)
        return latency

    def atomic_add(self, vaddr: int, delta: int) -> Tuple[int, int]:
        """Atomic fetch-and-add (single-threaded semantics)."""
        latency = self.hierarchy.access(vaddr, is_write=True)
        old = self.memory.read_word(vaddr)
        self.memory.write_word(vaddr, old + delta)
        return old, latency

    def atomic_cas(self, vaddr: int, expected: int, new: int) -> Tuple[int, int]:
        """Atomic compare-and-swap (single-threaded semantics)."""
        latency = self.hierarchy.access(vaddr, is_write=True)
        old = self.memory.read_word(vaddr)
        if old == expected:
            self.memory.write_word(vaddr, new)
        return old, latency

    # ------------------------------------------------------------------ #
    # Batched access
    # ------------------------------------------------------------------ #
    def run_batch(self, ops: Sequence[BatchOp]) -> BatchResult:
        """Run a mixed op batch in order; see :mod:`repro.mem.batch`."""
        vaddrs, kinds, vals, vals2 = split_ops(ops)
        if self.batch_enabled:
            return run_flat_batch(self, vaddrs, kinds, vals, vals2)
        return scalar_run_batch(self, vaddrs, kinds, vals, vals2)

    def load_batch(self, vaddrs: Sequence[int]) -> BatchResult:
        """Load a vector of addresses; returns ``(values, latencies)``."""
        if self.batch_enabled:
            return run_flat_batch(self, vaddrs, None, None, None)
        return scalar_run_batch(self, vaddrs, None, None, None)

    def store_batch(self, vaddrs: Sequence[int],
                    values: Sequence[int]) -> List[int]:
        """Store a vector of values; returns the per-op latencies."""
        kinds = [OP_STORE] * len(vaddrs)
        if self.batch_enabled:
            return run_flat_batch(self, vaddrs, kinds, values, None)[1]
        return scalar_run_batch(self, vaddrs, kinds, values, None)[1]


class BaselineCPUCore:
    """One APU CPU core running thread programs to completion."""

    def __init__(self, name: str, clock: ClockDomain, cycles_per_instruction: float,
                 memory: FlatMemory, hierarchy: PrivateCacheHierarchy,
                 stats: Optional[StatsRegistry] = None,
                 malloc_ns: float = 120.0) -> None:
        self.name = name
        self.clock = clock
        self.cycles_per_instruction = cycles_per_instruction
        self.memory = memory
        self.hierarchy = hierarchy
        self.port = BaselineCPUPort(memory, hierarchy)
        self.stats = stats if stats is not None else StatsRegistry()
        self._issue_ps = clock.cycles_to_ps(cycles_per_instruction)
        self._malloc_ps = int(malloc_ns * 1_000)

    def run(self, program: ThreadProgram) -> BaselineRunResult:
        """Execute ``program`` to completion and return its time."""
        context = ThreadContext(tid=0, program=program)
        elapsed = 0
        instructions = 0
        while True:
            operation = context.next_operation()
            if operation is None:
                break
            instructions += 1
            elapsed += self._issue_ps

            if isinstance(operation, Compute):
                elapsed += self._issue_ps * max(0, operation.amount - 1)
                context.complete(operation, _outcome())
                continue
            if isinstance(operation, Malloc):
                address = self.memory.allocate(operation.size)
                elapsed += self._malloc_ps
                context.complete(operation, _outcome(value=address))
                self.stats.add(f"{self.name}.mallocs")
                continue
            if isinstance(operation, Free):
                context.complete(operation, _outcome())
                continue

            memory_outcome = execute_memory_operation(operation, self.port,
                                                      spin_poll_ps=self._issue_ps)
            if memory_outcome is None:
                raise KernelProgramError(
                    f"baseline CPU core cannot execute operation {operation!r}"
                )
            if memory_outcome.retry:
                raise KernelProgramError(
                    "a single-threaded baseline program spun on a WaitValue that "
                    "can never be satisfied"
                )
            if memory_outcome.ops > 1:
                # A vector operation is N instructions; one issue slot was
                # already charged above, so add the remaining N-1.
                extra = memory_outcome.ops - 1
                instructions += extra
                elapsed += self._issue_ps * extra
            elapsed += memory_outcome.latency_ps
            context.complete(operation, memory_outcome)

        self.stats.add(f"{self.name}.instructions", instructions)
        return BaselineRunResult(time_ps=elapsed, instructions=instructions)


def _outcome(value: object = None):
    from repro.cores.interpreter import OpOutcome

    return OpOutcome(latency_ps=0, value=value)
