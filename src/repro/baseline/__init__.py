"""The loosely-coupled baseline: an AMD Llano-like APU running OpenCL.

The paper compares its simulated CCSVM chip against real AMD A8-3850
hardware running OpenCL (Section 5.1).  Real hardware is not available to a
reproduction, so this package provides a calibrated model with the same cost
*structure*:

* out-of-order CPU cores (max IPC 4) with private L1 + 1 MiB L2 caches,
  whose misses go to 72 ns DDR3 (:mod:`repro.baseline.cpu`);
* a Radeon-like GPU — 5 SIMD units x 16 VLIW lanes at 600 MHz — that
  executes the same kernel programs through a small GPU cache backed by
  off-chip DRAM (:mod:`repro.baseline.gpu`);
* an OpenCL-style runtime with compilation, context initialisation, buffer
  management, DMA between the CPU and GPU address spaces and per-launch
  driver overhead (:mod:`repro.baseline.opencl`);
* a pthreads runtime for multi-threaded CPU-only runs
  (:mod:`repro.baseline.pthreads`).

Absolute numbers are not expected to match the paper's hardware
measurements; the cost structure (fixed compile/init cost, per-launch
overhead, communication through off-chip DRAM, slow synchronisation) is
what the experiments rely on, and it is preserved.
"""

from repro.baseline.memory import FlatMemory, PrivateCacheHierarchy
from repro.baseline.cpu import BaselineCPUCore, BaselineRunResult
from repro.baseline.gpu import GPUKernelResult, RadeonGPUModel
from repro.baseline.apu import AMDAPU
from repro.baseline.opencl import OpenCLBuffer, OpenCLKernel, OpenCLSession
from repro.baseline.pthreads import PThreadsMachine, PThreadsPhaseResult

__all__ = [
    "AMDAPU",
    "BaselineCPUCore",
    "BaselineRunResult",
    "FlatMemory",
    "GPUKernelResult",
    "OpenCLBuffer",
    "OpenCLKernel",
    "OpenCLSession",
    "PThreadsMachine",
    "PThreadsPhaseResult",
    "PrivateCacheHierarchy",
    "RadeonGPUModel",
]
