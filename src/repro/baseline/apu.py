"""The assembled AMD Llano-like APU machine.

:class:`AMDAPU` wires together the baseline substrates — flat memory, DDR3
DRAM model, four out-of-order CPU cores each with a private L1 + 1 MiB L2,
and the Radeon-like GPU — and hands out the runtimes that execute workloads
on them: plain single-core runs, an OpenCL session, or a pthreads machine.
One ``AMDAPU`` instance corresponds to one measured run of the real
hardware; experiments build a fresh instance per data point so DRAM-access
counters are per-run, exactly like reading the hardware performance counters
before and after a run (Section 5.1).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.baseline.cpu import BaselineCPUCore, BaselineRunResult
from repro.baseline.gpu import RadeonGPUModel
from repro.baseline.memory import FlatMemory, PrivateCacheHierarchy
from repro.baseline.opencl import OpenCLSession
from repro.baseline.pthreads import PThreadsMachine
from repro.config import APUSystemConfig, amd_apu_system
from repro.cores.interpreter import ThreadProgram
from repro.mem.assemble import build_apu_shared_l2
from repro.memory.dram import DRAMModel
from repro.sim.clock import ClockDomain, ns_to_ps
from repro.sim.stats import StatsRegistry


class AMDAPU:
    """The loosely-coupled CPU+GPU baseline machine."""

    def __init__(self, config: Optional[APUSystemConfig] = None) -> None:
        self.config = config if config is not None else amd_apu_system()
        self.stats = StatsRegistry()
        self.memory = FlatMemory()
        self.dram = DRAMModel(self.config.dram.latency_ns, stats=self.stats,
                              name="dram")
        self.cpu_clock = ClockDomain.from_ghz("apu_cpu", self.config.cpu.frequency_ghz)

        # Hierarchy shape: private per-core L2s (Table 2), or one pooled
        # level every core stacks its L1 on (the apu-shared-l2 preset).
        shared_l2 = build_apu_shared_l2(self.config, stats=self.stats)
        self.cpu_cores: List[BaselineCPUCore] = []
        for index in range(self.config.cpu.count):
            hierarchy = PrivateCacheHierarchy(
                name=f"apu_cpu{index}",
                dram=self.dram,
                l1_size_bytes=self.config.cpu.l1_size_bytes,
                l1_associativity=self.config.cpu.l1_associativity,
                l1_hit_ps=ns_to_ps(self.config.cpu.l1_hit_ns),
                l2_size_bytes=self.config.cpu.l2_size_bytes,
                l2_associativity=self.config.cpu.l2_associativity,
                l2_hit_ps=ns_to_ps(self.config.cpu.l2_hit_ns),
                l1_replacement=self.config.cpu.l1_replacement,
                l2_replacement=self.config.cpu.l2_replacement,
                shared_l2=shared_l2,
                stats=self.stats)
            core = BaselineCPUCore(
                name=f"apu_cpu{index}", clock=self.cpu_clock,
                cycles_per_instruction=self.config.cpu.cycles_per_instruction,
                memory=self.memory, hierarchy=hierarchy, stats=self.stats)
            self.cpu_cores.append(core)

        self.gpu = RadeonGPUModel(self.config.gpu, self.memory, self.dram,
                                  stats=self.stats,
                                  memory_bandwidth_gbps=self.config.opencl.dma_bandwidth_gbps)

    # ------------------------------------------------------------------ #
    # Runtimes
    # ------------------------------------------------------------------ #
    def run_on_cpu(self, program: ThreadProgram, core_index: int = 0) -> BaselineRunResult:
        """Run a program on one CPU core (the paper's "AMD CPU" baseline)."""
        return self.cpu_cores[core_index].run(program)

    def opencl_session(self) -> OpenCLSession:
        """Create an OpenCL context/queue bound to CPU core 0 and the GPU."""
        return OpenCLSession(self.config.opencl, self.memory, self.cpu_cores[0],
                             self.gpu, stats=self.stats)

    def pthreads(self, num_threads: Optional[int] = None) -> PThreadsMachine:
        """Create a pthreads process across ``num_threads`` CPU cores."""
        count = num_threads if num_threads is not None else len(self.cpu_cores)
        if count > len(self.cpu_cores):
            count = len(self.cpu_cores)
        return PThreadsMachine(cores=self.cpu_cores[:count],
                               spawn_us=self.config.pthread_spawn_us,
                               join_us=self.config.pthread_join_us,
                               barrier_us=self.config.pthread_barrier_us,
                               stats=self.stats)

    # ------------------------------------------------------------------ #
    # Memory helpers (functional, no timing) for workload setup/readback
    # ------------------------------------------------------------------ #
    def allocate(self, size_bytes: int) -> int:
        """Allocate flat memory (setup helper; charges no time)."""
        return self.memory.allocate(size_bytes)

    def write_array(self, address: int, values: Sequence[int]) -> None:
        """Write words into memory without charging time (test setup)."""
        self.memory.write_array(address, values)

    def read_array(self, address: int, count: int) -> List[int]:
        """Read words from memory without charging time (result checking)."""
        return self.memory.read_array(address, count)

    # ------------------------------------------------------------------ #
    # Counters
    # ------------------------------------------------------------------ #
    @property
    def dram_accesses(self) -> int:
        """Off-chip DRAM accesses so far (the Figure 9 metric)."""
        return self.dram.total_accesses
