"""Radeon-like GPU execution model for the APU baseline.

The Llano GPU has 5 SIMD processing units of 16 VLIW Radeon cores each at
600 MHz (Table 2).  The model executes every work item's kernel program
functionally against the APU's flat memory and accounts for its off-chip
traffic in one of two modes:

* **uncached** (the default, and what the paper's OpenCL path implies): the
  kernels operate on zero-copy host-resident buffers that the GPU must not
  cache (Section 2.3 — the Fusion Control Link is only coherent "assuming
  the GPU does not cache this memory space"), so every access crosses the
  unified north bridge to DRAM.  The GPU's memory coalescer merges accesses
  from the same wavefront that fall in the same 64-byte line, which is why
  the APU's GPU generates far fewer DRAM transactions than its CPU would
  for the same strided access pattern (Section 5.1).
* **cached** (an ablation): accesses go through a small GPU cache backed by
  DRAM, approximating a hypothetical design that lets the GPU cache shared
  buffers without coherence.

Timing is a throughput model appropriate for a massively threaded device:
the kernel takes the larger of its compute-limited time and its
memory-bandwidth-limited time, plus a small per-wavefront scheduling cost.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, List, Optional, Sequence, Set

from repro.baseline.memory import FlatMemory, PrivateCacheHierarchy
from repro.config import APUGPUConfig
from repro.cores.interpreter import ThreadContext, execute_memory_operation
from repro.cores.isa import (
    AtomicAdd,
    AtomicCAS,
    AtomicDec,
    AtomicInc,
    Compute,
    Load,
    Malloc,
    Store,
)
from repro.errors import KernelProgramError
from repro.memory.address import CACHE_LINE_SIZE
from repro.memory.dram import DRAMModel
from repro.sim.clock import ClockDomain, ns_to_ps
from repro.sim.stats import StatsRegistry

#: Work items per hardware wavefront (AMD wavefronts are 64 wide).
WAVEFRONT_SIZE = 64


@dataclass(frozen=True)
class GPUKernelResult:
    """Outcome of one kernel launch on the GPU model."""

    time_ps: int
    work_items: int
    compute_operations: int
    memory_operations: int
    dram_reads: int
    dram_writes: int

    @property
    def time_ns(self) -> float:
        """Kernel execution time in nanoseconds."""
        return self.time_ps / 1_000.0

    @property
    def dram_transactions(self) -> int:
        """Total DRAM transactions the launch generated."""
        return self.dram_reads + self.dram_writes


class _CachedPort:
    """Memory port for the cached ablation mode."""

    def __init__(self, memory: FlatMemory, hierarchy: PrivateCacheHierarchy) -> None:
        self.memory = memory
        self.hierarchy = hierarchy

    def load(self, vaddr: int):
        latency = self.hierarchy.access(vaddr, is_write=False)
        return self.memory.read_word(vaddr), latency

    def store(self, vaddr: int, value: int) -> int:
        latency = self.hierarchy.access(vaddr, is_write=True)
        self.memory.write_word(vaddr, value)
        return latency

    def atomic_add(self, vaddr: int, delta: int):
        latency = self.hierarchy.access(vaddr, is_write=True)
        old = self.memory.read_word(vaddr)
        self.memory.write_word(vaddr, old + delta)
        return old, latency

    def atomic_cas(self, vaddr: int, expected: int, new: int):
        latency = self.hierarchy.access(vaddr, is_write=True)
        old = self.memory.read_word(vaddr)
        if old == expected:
            self.memory.write_word(vaddr, new)
        return old, latency


class _UncachedPort:
    """Memory port for the uncached (zero-copy buffer) mode.

    Accesses are applied to memory immediately; the coalescer collects the
    lines each wavefront touches and the GPU model converts them into DRAM
    transactions when the wavefront completes.
    """

    def __init__(self, memory: FlatMemory) -> None:
        self.memory = memory
        self.read_lines: Set[int] = set()
        self.written_lines: Set[int] = set()

    def _line(self, vaddr: int) -> int:
        return vaddr & ~(CACHE_LINE_SIZE - 1)

    def load(self, vaddr: int):
        self.read_lines.add(self._line(vaddr))
        return self.memory.read_word(vaddr), 0

    def store(self, vaddr: int, value: int) -> int:
        self.written_lines.add(self._line(vaddr))
        self.memory.write_word(vaddr, value)
        return 0

    def atomic_add(self, vaddr: int, delta: int):
        line = self._line(vaddr)
        self.read_lines.add(line)
        self.written_lines.add(line)
        old = self.memory.read_word(vaddr)
        self.memory.write_word(vaddr, old + delta)
        return old, 0

    def atomic_cas(self, vaddr: int, expected: int, new: int):
        line = self._line(vaddr)
        self.read_lines.add(line)
        self.written_lines.add(line)
        old = self.memory.read_word(vaddr)
        if old == expected:
            self.memory.write_word(vaddr, new)
        return old, 0

    def drain(self) -> tuple:
        """Return and clear the coalesced (read_lines, written_lines) sets."""
        reads, writes = self.read_lines, self.written_lines
        self.read_lines, self.written_lines = set(), set()
        return reads, writes


class RadeonGPUModel:
    """Executes OpenCL-style kernels with VLIW throughput timing."""

    def __init__(self, config: APUGPUConfig, memory: FlatMemory, dram: DRAMModel,
                 stats: Optional[StatsRegistry] = None,
                 cache_buffer_accesses: bool = False,
                 gpu_cache_bytes: int = 128 * 1024,
                 memory_bandwidth_gbps: float = 12.0,
                 wavefront_overhead_ns: float = 50.0) -> None:
        self.config = config
        self.memory = memory
        self.dram = dram
        self.stats = stats if stats is not None else StatsRegistry()
        self.clock = ClockDomain.from_mhz("apu_gpu", config.frequency_mhz)
        self.cache_buffer_accesses = cache_buffer_accesses
        self.memory_bandwidth_gbps = memory_bandwidth_gbps
        self.wavefront_overhead_ps = ns_to_ps(wavefront_overhead_ns)
        self._cache = PrivateCacheHierarchy(
            name="apu_gpu_cache", dram=dram,
            l1_size_bytes=gpu_cache_bytes, l1_associativity=8,
            l1_hit_ps=self.clock.period_ps, stats=self.stats)

    # ------------------------------------------------------------------ #
    # Kernel execution
    # ------------------------------------------------------------------ #
    def execute_kernel(self, kernel: Callable[..., object], args: object,
                       work_items: Iterable[int]) -> GPUKernelResult:
        """Run ``kernel(work_item_id, args)`` for every listed work item.

        The kernel must be a generator of plain memory/compute operations —
        the GPU cannot spawn tasks, wait on condition variables or call
        ``mttop_malloc`` (that is precisely the gap between OpenCL on the
        APU and xthreads on the CCSVM chip).
        """
        items: List[int] = list(work_items)
        reads_before = self.dram.stats.get(f"{self.dram.name}.reads")
        writes_before = self.dram.stats.get(f"{self.dram.name}.writes")

        compute_operations = 0
        memory_operations = 0
        for start in range(0, len(items), WAVEFRONT_SIZE):
            wavefront = items[start:start + WAVEFRONT_SIZE]
            counted = self._execute_wavefront(kernel, args, wavefront)
            compute_operations += counted[0]
            memory_operations += counted[1]

        dram_reads = self.dram.stats.get(f"{self.dram.name}.reads") - reads_before
        dram_writes = self.dram.stats.get(f"{self.dram.name}.writes") - writes_before
        time_ps = self._kernel_time_ps(len(items), compute_operations,
                                       dram_reads + dram_writes)
        self.stats.add("apu_gpu.kernels")
        self.stats.add("apu_gpu.work_items", len(items))
        self.stats.add("apu_gpu.compute_ops", compute_operations)
        self.stats.add("apu_gpu.memory_ops", memory_operations)
        return GPUKernelResult(time_ps=time_ps, work_items=len(items),
                               compute_operations=compute_operations,
                               memory_operations=memory_operations,
                               dram_reads=dram_reads, dram_writes=dram_writes)

    def _execute_wavefront(self, kernel, args, wavefront: Sequence[int]) -> tuple:
        if self.cache_buffer_accesses:
            port = _CachedPort(self.memory, self._cache)
        else:
            port = _UncachedPort(self.memory)

        compute_operations = 0
        memory_operations = 0
        for work_item in wavefront:
            context = ThreadContext(tid=work_item, program=kernel(work_item, args))
            while True:
                operation = context.next_operation()
                if operation is None:
                    break
                if isinstance(operation, Compute):
                    compute_operations += max(1, operation.amount)
                    context.complete(operation, _zero_outcome())
                    continue
                if isinstance(operation, Malloc):
                    raise KernelProgramError(
                        "OpenCL kernels cannot dynamically allocate memory on the "
                        "APU baseline (no mttop_malloc equivalent)"
                    )
                if not isinstance(operation, (Load, Store, AtomicAdd, AtomicCAS,
                                              AtomicInc, AtomicDec)):
                    raise KernelProgramError(
                        f"GPU model cannot execute operation {operation!r}"
                    )
                outcome = execute_memory_operation(operation, port, spin_poll_ps=0)
                if outcome is None or outcome.retry:
                    raise KernelProgramError(
                        f"GPU model cannot execute operation {operation!r}"
                    )
                compute_operations += 1
                memory_operations += 1
                context.complete(operation, outcome)

        if isinstance(port, _UncachedPort):
            read_lines, written_lines = port.drain()
            for _ in read_lines:
                self.dram.read(CACHE_LINE_SIZE)
            for _ in written_lines:
                self.dram.write(CACHE_LINE_SIZE)
            self.stats.add("apu_gpu.coalesced_read_lines", len(read_lines))
            self.stats.add("apu_gpu.coalesced_written_lines", len(written_lines))
        return compute_operations, memory_operations

    # ------------------------------------------------------------------ #
    # Timing
    # ------------------------------------------------------------------ #
    def _kernel_time_ps(self, work_items: int, compute_operations: int,
                        dram_transactions: int) -> int:
        # Each of the 80 VLIW lanes retires one VLIW instruction per cycle,
        # packing `vliw_utilization` (1-4) scalar operations into it, so the
        # GPU's throughput is 1x-4x that of the simulated MTTOP (Table 2).
        throughput_ops_per_cycle = max(1.0, self.config.lanes * self.config.vliw_utilization)
        compute_cycles = compute_operations / throughput_ops_per_cycle
        compute_ps = self.clock.cycles_to_ps(compute_cycles)

        bytes_moved = dram_transactions * CACHE_LINE_SIZE
        memory_ps = ns_to_ps(bytes_moved / self.memory_bandwidth_gbps) \
            if self.memory_bandwidth_gbps > 0 else 0

        wavefronts = (work_items + WAVEFRONT_SIZE - 1) // WAVEFRONT_SIZE
        overhead_ps = wavefronts * self.wavefront_overhead_ps
        return max(compute_ps, memory_ps) + overhead_ps

    def reset_cache(self) -> None:
        """Drop the GPU cache contents (between independent kernel launches)."""
        self._cache.l1.flush_all()


def _zero_outcome():
    from repro.cores.interpreter import OpOutcome

    return OpOutcome(latency_ps=0)
