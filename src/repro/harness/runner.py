"""Sweep execution over pluggable backends, with a durable result store.

:class:`SweepRunner` executes the :class:`~repro.harness.spec.SweepPoint` s
of a sweep through an :class:`~repro.harness.backends.ExecutionBackend` —
in-process, across a ``multiprocessing`` pool, or streamed over TCP to
``repro worker`` processes on other hosts; every point is an independent
full-chip simulation, so the sweep parallelises embarrassingly — and merges
the per-point stats into one :class:`~repro.sim.stats.StatsRegistry`.
Completed points are persisted to a :class:`~repro.store.ResultStore`
(content-addressed objects + per-spec index, see :mod:`repro.store`),
keyed by a hash of the spec name, point function and full configuration
and stamped with a typed :class:`~repro.store.Provenance` record, so
re-running a sweep only simulates points whose configuration changed —
on this host or on any host the store was ``repro cache push``-ed to.
Store reads and writes happen here, on the coordinator side, never in
backend workers — remote workers do not need (or race on) the store.

Row order is always the declaration order of the points, independent of
backend or worker count, so parallel and distributed runs render
byte-identical tables to sequential ones.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.harness.backends import (
    ExecutionBackend,
    PointFailure,
    ProcessPoolBackend,
    SerialBackend,
)
from repro.harness.spec import (
    HarnessError,
    PointResult,
    SweepPoint,
    SweepSpec,
    default_combine,
    point_func_ref,
)
from repro.sim.stats import StatsRegistry
from repro.store import (
    CacheSpecInfo,
    FileStore,
    Provenance,
    ResultStore,
    StoreEntry,
    canonical_repr,
    kwargs_digest,
    point_cache_key,
)

__all__ = [
    "CACHE_DIR_ENV",
    "CacheSpecInfo",
    "DEFAULT_CACHE_DIR",
    "SweepOutcome",
    "SweepRunner",
    "cache_clear",
    "cache_info",
    "canonical_repr",
    "default_cache_dir",
    "point_cache_key",
    "point_seed",
]

#: Environment variable naming the default cache directory for the CLI.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"
DEFAULT_CACHE_DIR = ".repro-cache"


def default_cache_dir() -> str:
    """The cache directory the CLI uses unless told otherwise."""
    return os.environ.get(CACHE_DIR_ENV, DEFAULT_CACHE_DIR)


def point_seed(point: SweepPoint) -> Optional[int]:
    """The workload input seed a point carries, if any (for provenance)."""
    seed = point.kwargs.get("seed")
    if isinstance(seed, int) and not isinstance(seed, bool):
        return seed
    return None


def cache_info(cache_dir: str) -> List[CacheSpecInfo]:
    """Per-sweep entry counts and sizes under ``cache_dir`` (sorted by spec).

    Opening the store migrates a legacy flat cache in place; a directory
    that does not exist is simply reported empty (and not created).
    """
    return FileStore(cache_dir).info().specs


def cache_clear(cache_dir: str, specs: Optional[List[str]] = None) -> int:
    """Delete cached point entries; returns how many entries were removed.

    With ``specs`` only those sweeps' index entries are pruned, otherwise
    every entry is.  Objects left unreferenced and stale tmp files are
    collected too; quarantined files and anything foreign are left alone.
    """
    if not os.path.isdir(cache_dir):
        return 0
    return FileStore(cache_dir).clear(specs=specs)


@dataclass
class SweepOutcome:
    """Everything one sweep run produced."""

    spec: str
    result: object               #: combined rows (list) or panels (dict)
    stats: StatsRegistry         #: merged counters from every point
    points_total: int
    points_from_cache: int
    points_uncacheable: int = 0  #: results JSON cannot round-trip losslessly

    @property
    def rows(self) -> List[Dict[str, object]]:
        """The flat row list (single-panel sweeps only)."""
        if not isinstance(self.result, list):
            raise TypeError(f"sweep {self.spec} has multiple panels; use .result")
        return self.result


class SweepRunner:
    """Executes sweep points, optionally in parallel and with a result store.

    Parameters
    ----------
    jobs:
        Worker process count.  ``1`` (default) runs in-process, which is
        what unit tests want; experiment CLIs pass ``--jobs N``.  Ignored
        when an explicit ``backend`` is given.
    cache_dir:
        Directory for the on-disk result store.  ``None`` disables
        persistence entirely (again the library/test default; the CLI
        turns it on).  Shorthand for ``store=FileStore(cache_dir)``.
    backend:
        An :class:`~repro.harness.backends.ExecutionBackend` to execute
        points with.  Defaults to
        :class:`~repro.harness.backends.SerialBackend` for ``jobs=1`` and
        :class:`~repro.harness.backends.ProcessPoolBackend` otherwise, so
        existing ``SweepRunner(jobs=N)`` callers keep their behaviour.
    store:
        An explicit :class:`~repro.store.ResultStore`; takes precedence
        over ``cache_dir``.
    """

    def __init__(self, jobs: int = 1, cache_dir: Optional[str] = None,
                 backend: Optional[ExecutionBackend] = None,
                 store: Optional[ResultStore] = None) -> None:
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.jobs = jobs
        self.cache_dir = cache_dir
        if store is None and cache_dir is not None:
            store = FileStore(cache_dir)
        self.store = store
        if backend is None:
            backend = ProcessPoolBackend(jobs) if jobs > 1 else SerialBackend()
        self.backend = backend

    # ------------------------------------------------------------------ #
    # Store access
    # ------------------------------------------------------------------ #
    def _cache_load(self, point: SweepPoint) -> Optional[PointResult]:
        if self.store is None:
            return None
        entry = self.store.load(point.spec, point_cache_key(point))
        if entry is None:
            return None
        return PointResult(rows=entry.rows, stats=entry.stats)

    def _cache_store(self, point: SweepPoint, result: PointResult,
                     worker: Optional[str] = None,
                     duration_s: Optional[float] = None) -> bool:
        """Persist one completed point; ``False`` when it is uncacheable."""
        if self.store is None:
            return True
        provenance = Provenance.collect(
            spec=point.spec, point_id=point.point_id,
            func=point_func_ref(point),
            kwargs_digest=kwargs_digest(point.kwargs),
            seed=point_seed(point), backend=self.backend.name,
            worker=worker, duration_s=duration_s)
        entry = StoreEntry(point_id=point.point_id, rows=result.rows,
                           stats=result.stats, provenance=provenance)
        try:
            stored = self.store.store(point.spec, point_cache_key(point),
                                      entry)
        except OSError:
            return True  # a full/read-only disk degrades to no caching
        return stored is not None

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #
    def run_points(self, points: List[SweepPoint],
                   spec_name: str = "adhoc") -> SweepOutcome:
        """Execute ``points`` (store-aware, possibly in parallel)."""
        results: List[Optional[PointResult]] = [self._cache_load(p) for p in points]
        cached = sum(1 for r in results if r is not None)
        pending = [(i, p) for i, p in enumerate(points) if results[i] is None]
        uncacheable = 0

        if pending:
            pending_points = [p for _, p in pending]
            # Consume the backend's completion stream: each result is
            # stored the moment it arrives, so a sweep interrupted (or
            # cancelled) partway only re-simulates what is actually
            # missing — failing the sweep at the end cannot lose the
            # points that did complete.
            failure: Optional[HarnessError] = None
            seen: "set[int]" = set()
            started = time.monotonic()
            for offset, result in self.backend.run_iter(pending_points):
                if not isinstance(offset, int) or not 0 <= offset < len(pending) \
                        or offset in seen:
                    raise HarnessError(
                        f"{self.backend.name} backend yielded "
                        f"{'duplicate' if offset in seen else 'invalid'} "
                        f"point index {offset!r}")
                seen.add(offset)
                index, point = pending[offset]
                if isinstance(result, PointFailure):
                    failure = failure or HarnessError(
                        f"sweep point {result.spec}:{result.point_id} failed "
                        f"on the {self.backend.name} backend: {result.error}")
                    continue
                if not isinstance(result, PointResult):
                    failure = failure or HarnessError(
                        f"{self.backend.name} backend returned "
                        f"{type(result).__name__} for point "
                        f"{point.spec}:{point.point_id}; expected PointResult")
                    continue
                results[index] = result
                if not self._cache_store(
                        point, result,
                        worker=self._point_worker(offset),
                        duration_s=round(time.monotonic() - started, 6)):
                    uncacheable += 1
            if len(seen) != len(pending):
                if getattr(self.backend, "cancelled", False):
                    raise HarnessError(
                        f"sweep {spec_name} cancelled after {len(seen)} of "
                        f"{len(pending)} pending points (completed points "
                        f"are cached)")
                raise HarnessError(
                    f"{self.backend.name} backend returned {len(seen)} "
                    f"results for {len(pending)} points")
            if failure is not None:
                raise failure

        stats = StatsRegistry()
        groups: Dict[str, List[Dict[str, object]]] = {}
        for point, result in zip(points, results):
            groups.setdefault(point.group, []).extend(result.rows)
            for name, value in result.stats.items():
                stats.add(name, value)
            stats.add("harness.points")
            stats.add("harness.rows", len(result.rows))
        stats.add("harness.points_from_cache", cached)
        if uncacheable:
            # A point whose result JSON cannot round-trip losslessly is
            # recomputed every run; surface that instead of silently
            # burning the simulation time forever (`--stats` shows it).
            stats.add("harness.points_uncacheable", uncacheable)

        return SweepOutcome(spec=spec_name, result=default_combine(groups),
                            stats=stats, points_total=len(points),
                            points_from_cache=cached,
                            points_uncacheable=uncacheable)

    def _point_worker(self, offset: int) -> Optional[str]:
        """The worker label a backend attributed to a pending point.

        Backends that fan points out to named workers (distributed,
        service) expose ``last_point_workers`` — a dict from the
        ``run_iter`` index to the worker's label — which provenance
        records.  Local backends simply have no entry.
        """
        workers = getattr(self.backend, "last_point_workers", None)
        if isinstance(workers, dict):
            label = workers.get(offset)
            if isinstance(label, str):
                return label
        return None

    def run_spec(self, spec: SweepSpec, full: bool = False,
                 **overrides: object) -> SweepOutcome:
        """Expand ``spec`` into points, execute them, and combine the rows."""
        points = spec.build_points(full=full, **overrides)
        return self.run_points(points, spec_name=spec.name)

    def run(self, spec_name: str, full: bool = False,
            **overrides: object) -> SweepOutcome:
        """Execute a registered sweep by name."""
        from repro.harness.spec import get_spec

        return self.run_spec(get_spec(spec_name), full=full, **overrides)
