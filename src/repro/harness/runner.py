"""Parallel sweep execution with per-point disk caching.

:class:`SweepRunner` executes the :class:`~repro.harness.spec.SweepPoint` s
of a sweep, optionally fanning them out over a ``multiprocessing`` pool —
every point is an independent full-chip simulation, so the sweep
parallelises embarrassingly — and merges the per-point stats into one
:class:`~repro.sim.stats.StatsRegistry`.  Completed points can be cached to
disk keyed by a hash of the spec name, point function and its full
configuration, so re-running a sweep only simulates points whose
configuration changed.

Row order is always the declaration order of the points, independent of
``jobs``, so parallel runs render byte-identical tables to sequential ones.
"""

from __future__ import annotations

import hashlib
import json
import multiprocessing
import os
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.harness.spec import (
    PointResult,
    SweepPoint,
    SweepSpec,
    default_combine,
    execute_point,
)
from repro.sim.stats import StatsRegistry

#: Environment variable naming the default cache directory for the CLI.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"
DEFAULT_CACHE_DIR = ".repro-cache"


def default_cache_dir() -> str:
    """The cache directory the CLI uses unless told otherwise."""
    return os.environ.get(CACHE_DIR_ENV, DEFAULT_CACHE_DIR)


def point_cache_key(point: SweepPoint) -> str:
    """A stable hash of everything that determines a point's result.

    The key covers the spec name, the point function's identity and the
    ``repr`` of its keyword arguments — configuration dataclasses have
    deterministic reprs, so any parameter change (sizes, cache geometry,
    seeds, ...) changes the key.
    """
    from repro import __version__

    func = point.func
    payload = "\x1f".join((
        __version__,
        point.spec,
        point.point_id,
        f"{func.__module__}.{getattr(func, '__qualname__', func.__name__)}",
        repr(sorted(point.kwargs.items())),
    ))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


@dataclass
class SweepOutcome:
    """Everything one sweep run produced."""

    spec: str
    result: object               #: combined rows (list) or panels (dict)
    stats: StatsRegistry         #: merged counters from every point
    points_total: int
    points_from_cache: int

    @property
    def rows(self) -> List[Dict[str, object]]:
        """The flat row list (single-panel sweeps only)."""
        if not isinstance(self.result, list):
            raise TypeError(f"sweep {self.spec} has multiple panels; use .result")
        return self.result


class SweepRunner:
    """Executes sweep points, optionally in parallel and with a disk cache.

    Parameters
    ----------
    jobs:
        Worker process count.  ``1`` (default) runs in-process, which is
        what unit tests want; experiment CLIs pass ``--jobs N``.
    cache_dir:
        Directory for per-point result JSON.  ``None`` disables caching
        entirely (again the library/test default; the CLI turns it on).
    """

    def __init__(self, jobs: int = 1, cache_dir: Optional[str] = None) -> None:
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.jobs = jobs
        self.cache_dir = cache_dir

    # ------------------------------------------------------------------ #
    # Cache
    # ------------------------------------------------------------------ #
    def _cache_path(self, point: SweepPoint) -> Optional[str]:
        if self.cache_dir is None:
            return None
        return os.path.join(self.cache_dir, point.spec,
                            point_cache_key(point) + ".json")

    def _cache_load(self, point: SweepPoint) -> Optional[PointResult]:
        path = self._cache_path(point)
        if path is None or not os.path.exists(path):
            return None
        try:
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
            return PointResult(rows=payload["rows"], stats=payload.get("stats", {}))
        except (OSError, ValueError, KeyError):
            return None  # treat a corrupt entry as a miss and recompute

    def _cache_store(self, point: SweepPoint, result: PointResult) -> None:
        path = self._cache_path(point)
        if path is None:
            return
        try:
            os.makedirs(os.path.dirname(path), exist_ok=True)
            tmp = path + ".tmp"
            with open(tmp, "w", encoding="utf-8") as handle:
                json.dump({"point_id": point.point_id, "rows": result.rows,
                           "stats": result.stats}, handle)
            os.replace(tmp, path)
        except (OSError, TypeError):
            pass  # a point with unserialisable rows simply isn't cached

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #
    def run_points(self, points: List[SweepPoint],
                   spec_name: str = "adhoc") -> SweepOutcome:
        """Execute ``points`` (cache-aware, possibly in parallel)."""
        results: List[Optional[PointResult]] = [self._cache_load(p) for p in points]
        cached = sum(1 for r in results if r is not None)
        pending = [(i, p) for i, p in enumerate(points) if results[i] is None]

        if pending:
            if self.jobs > 1 and len(pending) > 1:
                fresh = self._execute_parallel([p for _, p in pending])
            else:
                fresh = [execute_point(p) for _, p in pending]
            for (index, point), result in zip(pending, fresh):
                results[index] = result
                self._cache_store(point, result)

        stats = StatsRegistry()
        groups: Dict[str, List[Dict[str, object]]] = {}
        for point, result in zip(points, results):
            groups.setdefault(point.group, []).extend(result.rows)
            for name, value in result.stats.items():
                stats.add(name, value)
            stats.add("harness.points")
            stats.add("harness.rows", len(result.rows))
        stats.add("harness.points_from_cache", cached)

        return SweepOutcome(spec=spec_name, result=default_combine(groups),
                            stats=stats, points_total=len(points),
                            points_from_cache=cached)

    def _execute_parallel(self, points: List[SweepPoint]) -> List[PointResult]:
        methods = multiprocessing.get_all_start_methods()
        context = multiprocessing.get_context(
            "fork" if "fork" in methods else None)
        workers = min(self.jobs, len(points))
        with context.Pool(processes=workers) as pool:
            return pool.map(execute_point, points)

    def run_spec(self, spec: SweepSpec, full: bool = False,
                 **overrides: object) -> SweepOutcome:
        """Expand ``spec`` into points, execute them, and combine the rows."""
        points = spec.build_points(full=full, **overrides)
        return self.run_points(points, spec_name=spec.name)

    def run(self, spec_name: str, full: bool = False,
            **overrides: object) -> SweepOutcome:
        """Execute a registered sweep by name."""
        from repro.harness.spec import get_spec

        return self.run_spec(get_spec(spec_name), full=full, **overrides)
