"""Sweep execution over pluggable backends, with per-point disk caching.

:class:`SweepRunner` executes the :class:`~repro.harness.spec.SweepPoint` s
of a sweep through an :class:`~repro.harness.backends.ExecutionBackend` —
in-process, across a ``multiprocessing`` pool, or streamed over TCP to
``repro worker`` processes on other hosts; every point is an independent
full-chip simulation, so the sweep parallelises embarrassingly — and merges
the per-point stats into one :class:`~repro.sim.stats.StatsRegistry`.
Completed points can be cached to disk keyed by a hash of the spec name,
point function and its full configuration, so re-running a sweep only
simulates points whose configuration changed.  Cache reads and writes
happen here, on the coordinator side, never in backend workers — remote
workers do not need (or race on) ``.repro-cache/``.

Row order is always the declaration order of the points, independent of
backend or worker count, so parallel and distributed runs render
byte-identical tables to sequential ones.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.harness.backends import (
    ExecutionBackend,
    PointFailure,
    ProcessPoolBackend,
    SerialBackend,
)
from repro.harness.spec import (
    HarnessError,
    PointResult,
    SweepPoint,
    SweepSpec,
    default_combine,
    point_func_ref,
)
from repro.sim.stats import StatsRegistry

#: Environment variable naming the default cache directory for the CLI.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"
DEFAULT_CACHE_DIR = ".repro-cache"


def default_cache_dir() -> str:
    """The cache directory the CLI uses unless told otherwise."""
    return os.environ.get(CACHE_DIR_ENV, DEFAULT_CACHE_DIR)


def canonical_repr(value: object) -> str:
    """A content-based serialization that is stable across processes.

    ``repr`` alone is not canonical for every configuration value: sets
    iterate in hash order (which ``PYTHONHASHSEED`` perturbs between
    processes for strings) and dicts iterate in insertion order, so two
    equal configurations could serialize differently and miss each other's
    cache entries.  Sets are therefore emitted in sorted element order,
    dict items in sorted key order, and dataclasses are recursed into so
    the same rules apply to nested fields.  Distinct container types keep
    distinct markers so ``[1, 2]``, ``(1, 2)`` and ``{1, 2}`` never
    collide.
    """
    if isinstance(value, dict):
        items = sorted(((canonical_repr(k), canonical_repr(v))
                        for k, v in value.items()), key=lambda kv: kv[0])
        return "{" + ",".join(f"{k}:{v}" for k, v in items) + "}"
    if isinstance(value, frozenset):
        return "frozenset{" + ",".join(sorted(map(canonical_repr, value))) + "}"
    if isinstance(value, set):
        return "set{" + ",".join(sorted(map(canonical_repr, value))) + "}"
    if isinstance(value, list):
        return "[" + ",".join(map(canonical_repr, value)) + "]"
    if isinstance(value, tuple):
        return "(" + ",".join(map(canonical_repr, value)) + ")"
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        fields = ",".join(
            f"{field.name}={canonical_repr(getattr(value, field.name))}"
            for field in dataclasses.fields(value))
        return f"{type(value).__qualname__}({fields})"
    return repr(value)


def point_cache_key(point: SweepPoint) -> str:
    """A stable hash of everything that determines a point's result.

    The key covers the spec name, the point function's ``module:qualname``
    *reference* (:func:`~repro.harness.spec.point_func_ref` — identical
    whether the point carries the name or the callable) and the
    :func:`canonical_repr` of its keyword arguments, so any parameter
    change (sizes, cache geometry, seeds, ...) changes the key while equal
    configurations hash identically in every process — even for kwargs
    containing sets or dicts, whose plain ``repr`` depends on hash seed or
    insertion order.
    """
    from repro import __version__

    payload = "\x1f".join((
        __version__,
        point.spec,
        point.point_id,
        point_func_ref(point),
        canonical_repr(point.kwargs),
    ))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


@dataclass
class CacheSpecInfo:
    """Cache usage of one sweep's subdirectory."""

    spec: str
    entries: int
    bytes: int


def cache_info(cache_dir: str) -> List[CacheSpecInfo]:
    """Per-sweep entry counts and sizes under ``cache_dir`` (sorted by spec)."""
    if not os.path.isdir(cache_dir):
        return []
    infos = []
    for spec in sorted(os.listdir(cache_dir)):
        spec_dir = os.path.join(cache_dir, spec)
        if not os.path.isdir(spec_dir):
            continue
        entries = [name for name in os.listdir(spec_dir)
                   if name.endswith(".json")]
        size = sum(os.path.getsize(os.path.join(spec_dir, name))
                   for name in entries)
        infos.append(CacheSpecInfo(spec=spec, entries=len(entries), bytes=size))
    return infos


def cache_clear(cache_dir: str, specs: Optional[List[str]] = None) -> int:
    """Delete cached point entries; returns how many entries were removed.

    With ``specs`` only those sweeps' subdirectories are pruned, otherwise
    the whole cache is.  Only the harness's own ``<spec>/<hash>.json``
    layout is touched — anything else in the directory is left alone.
    """
    if not os.path.isdir(cache_dir):
        return 0
    removed = 0
    for spec in sorted(os.listdir(cache_dir)):
        spec_dir = os.path.join(cache_dir, spec)
        if not os.path.isdir(spec_dir) or (specs and spec not in specs):
            continue
        for name in os.listdir(spec_dir):
            if name.endswith(".json") or name.endswith(".json.tmp"):
                try:
                    os.remove(os.path.join(spec_dir, name))
                except OSError:
                    continue
                if name.endswith(".json"):
                    removed += 1
        try:
            os.rmdir(spec_dir)
        except OSError:
            pass  # leftover foreign files keep the directory alive
    return removed


@dataclass
class SweepOutcome:
    """Everything one sweep run produced."""

    spec: str
    result: object               #: combined rows (list) or panels (dict)
    stats: StatsRegistry         #: merged counters from every point
    points_total: int
    points_from_cache: int

    @property
    def rows(self) -> List[Dict[str, object]]:
        """The flat row list (single-panel sweeps only)."""
        if not isinstance(self.result, list):
            raise TypeError(f"sweep {self.spec} has multiple panels; use .result")
        return self.result


class SweepRunner:
    """Executes sweep points, optionally in parallel and with a disk cache.

    Parameters
    ----------
    jobs:
        Worker process count.  ``1`` (default) runs in-process, which is
        what unit tests want; experiment CLIs pass ``--jobs N``.  Ignored
        when an explicit ``backend`` is given.
    cache_dir:
        Directory for per-point result JSON.  ``None`` disables caching
        entirely (again the library/test default; the CLI turns it on).
    backend:
        An :class:`~repro.harness.backends.ExecutionBackend` to execute
        points with.  Defaults to
        :class:`~repro.harness.backends.SerialBackend` for ``jobs=1`` and
        :class:`~repro.harness.backends.ProcessPoolBackend` otherwise, so
        existing ``SweepRunner(jobs=N)`` callers keep their behaviour.
    """

    def __init__(self, jobs: int = 1, cache_dir: Optional[str] = None,
                 backend: Optional[ExecutionBackend] = None) -> None:
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.jobs = jobs
        self.cache_dir = cache_dir
        if backend is None:
            backend = ProcessPoolBackend(jobs) if jobs > 1 else SerialBackend()
        self.backend = backend

    # ------------------------------------------------------------------ #
    # Cache
    # ------------------------------------------------------------------ #
    def _cache_path(self, point: SweepPoint) -> Optional[str]:
        if self.cache_dir is None:
            return None
        return os.path.join(self.cache_dir, point.spec,
                            point_cache_key(point) + ".json")

    def _cache_load(self, point: SweepPoint) -> Optional[PointResult]:
        path = self._cache_path(point)
        if path is None or not os.path.exists(path):
            return None
        try:
            with open(path, encoding="utf-8") as handle:
                payload = json.load(handle)
            rows = payload["rows"]
            stats = payload.get("stats", {})
            if not isinstance(rows, list) or not isinstance(stats, dict):
                return None
            return PointResult(rows=rows, stats=stats)
        except (OSError, ValueError, KeyError, TypeError, AttributeError):
            return None  # treat a corrupt entry as a miss and recompute

    def _cache_store(self, point: SweepPoint, result: PointResult) -> None:
        path = self._cache_path(point)
        if path is None:
            return
        try:
            payload = {"point_id": point.point_id, "rows": result.rows,
                       "stats": result.stats}
            text = json.dumps(payload)
            reloaded = json.loads(text)
            if reloaded["rows"] != result.rows or \
                    reloaded["stats"] != result.stats:
                # JSON would distort the result on reload (tuples become
                # lists, int keys become strings, ...): caching it would
                # make a warm run render differently from a cold one, so
                # such points are simply recomputed every run.
                return
            os.makedirs(os.path.dirname(path), exist_ok=True)
            tmp = path + ".tmp"
            with open(tmp, "w", encoding="utf-8") as handle:
                handle.write(text)
            os.replace(tmp, path)
        except (OSError, TypeError, ValueError):
            pass  # a point with unserialisable rows simply isn't cached

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #
    def run_points(self, points: List[SweepPoint],
                   spec_name: str = "adhoc") -> SweepOutcome:
        """Execute ``points`` (cache-aware, possibly in parallel)."""
        results: List[Optional[PointResult]] = [self._cache_load(p) for p in points]
        cached = sum(1 for r in results if r is not None)
        pending = [(i, p) for i, p in enumerate(points) if results[i] is None]

        if pending:
            pending_points = [p for _, p in pending]
            # Consume the backend's completion stream: each result is
            # cached the moment it arrives, so a sweep interrupted (or
            # cancelled) partway only re-simulates what is actually
            # missing — failing the sweep at the end cannot lose the
            # points that did complete.
            failure: Optional[HarnessError] = None
            seen: "set[int]" = set()
            for offset, result in self.backend.run_iter(pending_points):
                if not isinstance(offset, int) or not 0 <= offset < len(pending) \
                        or offset in seen:
                    raise HarnessError(
                        f"{self.backend.name} backend yielded "
                        f"{'duplicate' if offset in seen else 'invalid'} "
                        f"point index {offset!r}")
                seen.add(offset)
                index, point = pending[offset]
                if isinstance(result, PointFailure):
                    failure = failure or HarnessError(
                        f"sweep point {result.spec}:{result.point_id} failed "
                        f"on the {self.backend.name} backend: {result.error}")
                    continue
                if not isinstance(result, PointResult):
                    failure = failure or HarnessError(
                        f"{self.backend.name} backend returned "
                        f"{type(result).__name__} for point "
                        f"{point.spec}:{point.point_id}; expected PointResult")
                    continue
                results[index] = result
                self._cache_store(point, result)
            if len(seen) != len(pending):
                if getattr(self.backend, "cancelled", False):
                    raise HarnessError(
                        f"sweep {spec_name} cancelled after {len(seen)} of "
                        f"{len(pending)} pending points (completed points "
                        f"are cached)")
                raise HarnessError(
                    f"{self.backend.name} backend returned {len(seen)} "
                    f"results for {len(pending)} points")
            if failure is not None:
                raise failure

        stats = StatsRegistry()
        groups: Dict[str, List[Dict[str, object]]] = {}
        for point, result in zip(points, results):
            groups.setdefault(point.group, []).extend(result.rows)
            for name, value in result.stats.items():
                stats.add(name, value)
            stats.add("harness.points")
            stats.add("harness.rows", len(result.rows))
        stats.add("harness.points_from_cache", cached)

        return SweepOutcome(spec=spec_name, result=default_combine(groups),
                            stats=stats, points_total=len(points),
                            points_from_cache=cached)

    def run_spec(self, spec: SweepSpec, full: bool = False,
                 **overrides: object) -> SweepOutcome:
        """Expand ``spec`` into points, execute them, and combine the rows."""
        points = spec.build_points(full=full, **overrides)
        return self.run_points(points, spec_name=spec.name)

    def run(self, spec_name: str, full: bool = False,
            **overrides: object) -> SweepOutcome:
        """Execute a registered sweep by name."""
        from repro.harness.spec import get_spec

        return self.run_spec(get_spec(spec_name), full=full, **overrides)
